"""The delta-maintained pair table.

The batch :class:`~repro.metablocking.graph.PairTable` aggregates every
implied comparison of a finished block collection in one pass.  This
table maintains the same per-pair statistics — packed ``a << 32 | b``
keys, common-block counts — plus the global factors the six weighting
schemes consume (placements, active block count, edge count, node
degrees), by folding in **only the delta pairs a new entity generates**.

ARCS needs care: a block's reciprocal-cardinality contribution changes
retroactively each time that block grows, so eager per-pair ARCS
maintenance would cost O(pairs-in-block) per insert.  Instead the ARCS
sum is evaluated **lazily per pair** from the live index — the shared
keys in sorted order, each contributing ``cells / cardinality`` exactly
as the batch enumeration accumulates them — which keeps inserts O(delta)
and still reproduces the batch float sums bit-identically.

All six schemes are therefore evaluable for any single pair in
O(keys-of-the-smaller-endpoint), with **no global rebuild**: exactly
what query-time resolution needs.
"""

from __future__ import annotations

import math

from repro.model.interner import PAIR_MASK, PAIR_SHIFT, pack_pair
from repro.stream.index import DeltaConsumer, IncrementalBlockIndex

#: the weighting-scheme names the table can evaluate
SCHEME_NAMES = ("CBS", "ECBS", "JS", "EJS", "ARCS", "X2")


class PairStatsView:
    """Scheme evaluation over maintained per-pair + global statistics.

    The six weighting schemes are pure functions of ``(common, arcs)``
    plus a handful of global factors; this mixin holds those expressions
    once so every incrementally-maintained statistics table — the raw
    :class:`DeltaPairTable` and the processed-view
    :class:`~repro.stream.processed_view.SurvivorPairTable` — evaluates
    them identically.  Subclasses provide:

    * :meth:`common_of` / :meth:`arcs_of` — per-pair statistics;
    * ``placements`` (entity id → block placements), ``degrees``
      (entity id → distinct partners), ``active_blocks`` and
      ``edge_count`` — the global factors;
    * :meth:`interner` — the URI ↔ id mapping behind :meth:`weight`.

    The expressions mirror the reference
    :meth:`~repro.metablocking.weighting.WeightingScheme.weight`
    implementations term for term (float products associate
    left-to-right with the lexicographically smaller URI first), so the
    results equal what a freshly built batch graph over the subclass's
    block universe would assign.
    """

    __slots__ = ()

    # -- subclass contract ---------------------------------------------------

    placements: dict[int, int]
    degrees: dict[int, int]
    active_blocks: int
    edge_count: int

    def common_of(self, id_a: int, id_b: int) -> int:
        """Common-block count of the pair (0 when never co-blocked)."""
        raise NotImplementedError

    def arcs_of(self, id_a: int, id_b: int) -> float:
        """Lazy ARCS sum of the pair, bit-identical to the batch path."""
        raise NotImplementedError

    def interner(self):
        """The URI ↔ dense-id mapping of the underlying store."""
        raise NotImplementedError

    # -- scheme evaluation ---------------------------------------------------

    def stats_of(self, id_a: int, id_b: int) -> tuple[int, float]:
        """(common, arcs) of the pair — the weighting schemes' inputs."""
        return self.common_of(id_a, id_b), self.arcs_of(id_a, id_b)

    def weight(self, scheme_name: str, uri_a: str, uri_b: str) -> float:
        """Edge weight of a pair under *scheme_name*, batch-identical.

        Raises:
            KeyError: for unknown scheme or unknown URIs.
        """
        interner = self.interner()
        if uri_b < uri_a:
            uri_a, uri_b = uri_b, uri_a
        return self.weight_ids(
            scheme_name, interner.id_of(uri_a), interner.id_of(uri_b)
        )

    def weight_ids(self, scheme_name: str, id_a: int, id_b: int) -> float:
        """Like :meth:`weight` over ids; ``id_a`` must be the endpoint
        whose URI sorts first (the bit-identity argument order)."""
        name = scheme_name.upper()
        common = self.common_of(id_a, id_b)
        if name == "CBS":
            return float(common)
        if name == "ARCS":
            return self.arcs_of(id_a, id_b)
        placements = self.placements
        if name == "ECBS":
            total = max(self.active_blocks, 1)
            idf_a = math.log((total + 1) / placements.get(id_a, 1))
            idf_b = math.log((total + 1) / placements.get(id_b, 1))
            return common * idf_a * idf_b
        if name == "JS":
            return self._js(id_a, id_b, common)
        if name == "EJS":
            js = self._js(id_a, id_b, common)
            edge_count = max(self.edge_count, 1)
            deg_a = self.degrees.get(id_a) or 1
            deg_b = self.degrees.get(id_b) or 1
            idf_a = math.log((edge_count + 1) / deg_a)
            idf_b = math.log((edge_count + 1) / deg_b)
            return js * idf_a * idf_b
        if name == "X2":
            return self._chi_square(id_a, id_b, common)
        raise KeyError(
            f"unknown weighting scheme {scheme_name!r}; choose from {SCHEME_NAMES}"
        )

    def _js(self, id_a: int, id_b: int, common: int) -> float:
        union = (
            self.placements.get(id_a, 0) + self.placements.get(id_b, 0) - common
        )
        if union <= 0:
            return 0.0
        return common / union

    def _chi_square(self, id_a: int, id_b: int, common: int) -> float:
        # Mirrors ChiSquare._statistic's accumulation cell by cell.
        total = max(self.active_blocks, 1)
        in_a = self.placements.get(id_a, 0)
        in_b = self.placements.get(id_b, 0)
        observed = [
            [common, in_a - common],
            [in_b - common, total - in_a - in_b + common],
        ]
        row_sums = [in_a, total - in_a]
        col_sums = [in_b, total - in_b]
        statistic = 0.0
        for i in range(2):
            for j in range(2):
                expected = row_sums[i] * col_sums[j] / total
                if expected > 0:
                    deviation = observed[i][j] - expected
                    statistic += deviation * deviation / expected
        return statistic

    def as_reference_stats(self) -> dict[tuple[str, str], tuple[int, float]]:
        """URI-keyed (common, arcs) map, comparable to the batch oracle.

        Matches ``BlockingGraph(blocks, ...)._pair_statistics()`` over
        the subclass's block universe — entry for entry.  Meant for the
        equivalence suite and for audits; cost is O(pairs).
        """
        uris = self.interner().uri_table()
        out: dict[tuple[str, str], tuple[int, float]] = {}
        for key, count in self._common_items():
            id_a, id_b = key >> PAIR_SHIFT, key & PAIR_MASK
            uri_a, uri_b = uris[id_a], uris[id_b]
            if uri_b < uri_a:
                uri_a, uri_b = uri_b, uri_a
            out[(uri_a, uri_b)] = (count, self.arcs_of(id_a, id_b))
        return out

    def _common_items(self):
        """Iterate ``(packed pair, common)`` entries with ``common > 0``."""
        raise NotImplementedError


class DeltaPairTable(PairStatsView, DeltaConsumer):
    """Packed-pair statistics maintained under inserts and deletes.

    Every removal hook is the exact negation of its insert counterpart
    (1→0 transitions unwind edges, degrees and placement counts), so
    the table always equals a fresh build over the live corpus.

    Args:
        index: the incremental block index to attach to.  Attach before
            the first insert — deltas are not replayed.
    """

    __slots__ = (
        "index",
        "common",
        "placements",
        "degrees",
        "active_blocks",
        "total_assignments",
        "entities_placed",
        "edge_count",
    )

    def __init__(self, index: IncrementalBlockIndex) -> None:
        self.index = index
        #: packed pair → number of common blocks (counting repeated cells)
        self.common: dict[int, int] = {}
        #: entity id → placements in comparison-bearing blocks
        self.placements: dict[int, int] = {}
        #: entity id → distinct comparison partners (EJS degrees)
        self.degrees: dict[int, int] = {}
        #: number of comparison-bearing blocks
        self.active_blocks = 0
        #: total placements (the CEP/CNP budget numerator)
        self.total_assignments = 0
        #: entities with at least one placement
        self.entities_placed = 0
        #: number of distinct pairs (the blocking graph's edge count)
        self.edge_count = 0
        index.attach(self)

    # -- delta hooks ---------------------------------------------------------

    def on_cell(self, id_a: int, id_b: int) -> None:
        key = pack_pair(id_a, id_b)
        count = self.common.get(key, 0)
        if count == 0:
            self.edge_count += 1
            self.degrees[id_a] = self.degrees.get(id_a, 0) + 1
            self.degrees[id_b] = self.degrees.get(id_b, 0) + 1
        self.common[key] = count + 1

    def on_placement(self, entity_id: int) -> None:
        count = self.placements.get(entity_id, 0)
        if count == 0:
            self.entities_placed += 1
        self.placements[entity_id] = count + 1
        self.total_assignments += 1

    def on_block_activated(self, key: str) -> None:
        self.active_blocks += 1

    def on_cell_removed(self, id_a: int, id_b: int) -> None:
        key = pack_pair(id_a, id_b)
        count = self.common[key] - 1
        if count == 0:
            del self.common[key]
            self.edge_count -= 1
            for entity_id in (id_a, id_b):
                remaining = self.degrees[entity_id] - 1
                if remaining:
                    self.degrees[entity_id] = remaining
                else:
                    del self.degrees[entity_id]
        else:
            self.common[key] = count

    def on_placement_removed(self, entity_id: int) -> None:
        count = self.placements[entity_id] - 1
        self.total_assignments -= 1
        if count == 0:
            del self.placements[entity_id]
            self.entities_placed -= 1
        else:
            self.placements[entity_id] = count

    def on_block_deactivated(self, key: str) -> None:
        self.active_blocks -= 1

    # -- statistics ----------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct pairs tracked."""
        return len(self.common)

    def interner(self):
        """The store's URI ↔ dense-id mapping."""
        return self.index.store.interner

    def _common_items(self):
        return self.common.items()

    def common_of(self, id_a: int, id_b: int) -> int:
        """Common-block count of the pair (0 when never co-blocked)."""
        if id_a == id_b:
            return 0
        return self.common.get(pack_pair(id_a, id_b), 0)

    def arcs_of(self, id_a: int, id_b: int) -> float:
        """Lazy ARCS sum of the pair, bit-identical to the batch path.

        The batch reference walks blocks in sorted-key order and adds
        ``1 / cardinality`` once per comparison cell; this walks the
        pair's shared keys in the same order, reading each block's
        *current* cardinality — identical terms, identical order,
        identical floats.
        """
        if id_a == id_b:
            return 0.0
        index = self.index
        keys_a = index.keys_of(id_a)
        keys_b = index.keys_of(id_b)
        if len(keys_b) < len(keys_a):
            keys_a, keys_b = keys_b, keys_a
        shared = [key for key in keys_a if key in keys_b]
        if not shared:
            return 0.0
        shared.sort()
        arcs = 0.0
        for key in shared:
            cells = index.cells_between(key, id_a, id_b)
            if not cells:
                continue
            cardinality = index.cardinality_of(key)
            if not cardinality:
                continue
            contribution = 1.0 / cardinality
            for _ in range(cells):
                arcs += contribution
        return arcs
