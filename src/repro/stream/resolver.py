"""Query-time entity resolution against the live streaming state.

:class:`StreamResolver` is the serving layer: descriptions arrive (one
at a time or in micro-batches) and queries resolve an incoming
description against everything ingested so far — candidate generation
from the incremental block index, meta-blocking weights from the delta
pair table, prioritization through the existing
:class:`~repro.core.scheduler.ComparisonScheduler`, and decisions from
the existing :class:`~repro.matching.matcher.ThresholdMatcher` over the
streaming similarity index.  Every query returns per-phase latency so
the workload driver can report where time goes.

The resolver also exposes the batch bridge: :meth:`graph` /
:meth:`pruned_edges` run the standard meta-blocking machinery over a
snapshot of the streamed state, producing results bit-identical to the
batch pipeline on the same corpus.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field

from repro.blocking.base import Blocker
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.core.benefit import BenefitModel, QuantityBenefit
from repro.core.engine import ResolutionContext
from repro.core.scheduler import ComparisonScheduler
from repro.matching.matcher import MatchGraph, Matcher, ThresholdMatcher
from repro.metablocking.graph import BlockingGraph, WeightedEdge
from repro.metablocking.pruning import make_pruner
from repro.metablocking.weighting import make_scheme
from repro.model.description import EntityDescription
from repro.obs import DISABLED, Observability
from repro.stream.durability import (
    Durability,
    OsFiles,
    RecoveryReport,
    recover as recover_state,
)
from repro.stream.index import IncrementalBlockIndex
from repro.stream.pairs import DeltaPairTable
from repro.stream.processed_view import IncrementalProcessedView, SurvivorPairTable
from repro.stream.similarity import StreamingSimilarityIndex
from repro.stream.store import StreamingEntityStore


@dataclass(frozen=True)
class StreamMatch:
    """One positive decision returned by a query."""

    uri: str
    similarity: float
    weight: float


# ---------------------------------------------------------------------------
# The three query phases, as reusable functions.
#
# The sharded serving tier (:mod:`repro.serving`) executes the same
# query pipeline with the phases split across processes: shards weigh
# their owned candidates, the router prunes the merged neighbourhood
# and runs the match phase.  Sharing these functions — not copies of
# them — is what makes the merged results bit-identical to this
# resolver by construction.
# ---------------------------------------------------------------------------


def weigh_candidates(
    pair_table,
    uris: list[str],
    uri_q: str,
    entity_id: int,
    candidate_ids,
    scheme: str,
) -> dict[int, float]:
    """Scheme weights of the (query, candidate) pairs, batch-ordered.

    The pair's endpoints are ordered by URI (lexicographically smaller
    first) before :meth:`~repro.stream.pairs.PairStatsView.weight_ids`,
    the float-association order the batch graph uses.
    """
    weights: dict[int, float] = {}
    for candidate_id in candidate_ids:
        uri_c = uris[candidate_id]
        if uri_c < uri_q:
            weight = pair_table.weight_ids(scheme, candidate_id, entity_id)
        else:
            weight = pair_table.weight_ids(scheme, entity_id, candidate_id)
        weights[candidate_id] = weight
    return weights


def prune_neighbourhood(
    weights: dict[int, float],
    pruner: str,
    uris: list[str],
    entities_placed: int,
    total_assignments: int,
) -> list[tuple[int, float]]:
    """Node-centric pruning of one query neighbourhood.

    Deterministic order everywhere: weight descending, partner URI
    ascending — the ordering the batch pruners use.  The CNP budget
    derives from *entities_placed* / *total_assignments* (the pair
    table's global placement aggregates), matching batch CNP whose k
    comes from the processed collection.
    """
    if not weights:
        return []
    items = list(weights.items())
    name = pruner.lower()
    if name in ("none", "all", ""):
        return sorted(items, key=lambda iw: (-iw[1], uris[iw[0]]))
    if name in ("wnp", "wep"):
        mean = sum(weights.values()) / len(weights)
        kept = [iw for iw in items if iw[1] >= mean]
        return sorted(kept, key=lambda iw: (-iw[1], uris[iw[0]]))
    if name in ("cnp", "cep"):
        entities = max(entities_placed, 1)
        average = total_assignments / entities
        k = max(1, math.ceil(average) - 1)
        return heapq.nsmallest(k, items, key=lambda iw: (-iw[1], uris[iw[0]]))
    raise KeyError(
        f"unknown stream pruner {pruner!r}; choose CNP, WNP or none"
    )


def run_match_phase(
    uri_q: str,
    survivors: list[tuple[int, float]],
    weights: dict[int, float],
    budget: int | None,
    context: ResolutionContext,
    matcher: Matcher,
    benefit: BenefitModel,
    store: StreamingEntityStore,
) -> tuple[list[StreamMatch], int, int, int]:
    """Schedule, compare and decide the pruned survivors.

    Returns ``(matches, scheduled, comparisons, skipped_decided)`` —
    exactly the match section of a single-store
    :meth:`StreamResolver.resolve`, operating on whichever *context*
    and *matcher* the caller serves decisions from.
    """
    uris = store.interner.uri_table()
    scheduler = ComparisonScheduler(benefit, context)
    for candidate_id, weight in survivors:
        scheduler.schedule(uri_q, uris[candidate_id], weight)
    scheduled = len(scheduler)
    ordered: list[tuple[str, str]] = []
    weight_of: dict[tuple[str, str], float] = {}
    limit = len(scheduler) if budget is None else max(budget, 0)
    skipped = 0
    match_graph = context.match_graph
    while scheduler and len(ordered) < limit:
        pair, _priority = scheduler.pop()
        if pair in match_graph:
            skipped += 1
            continue
        ordered.append(pair)
        weight_of[pair] = scheduler.base_weight(pair[0], pair[1])
    decisions = matcher.decide_many(ordered)
    matches: list[StreamMatch] = []
    for decision in decisions:
        match_graph.record(decision)
        if decision.is_match:
            other = (
                decision.right if decision.left == uri_q else decision.left
            )
            matches.append(
                StreamMatch(
                    other, decision.similarity, weight_of[decision.pair]
                )
            )
    # Matches decided by earlier queries are still matches: a repeat
    # lookup must report them, not silently skip them as "already
    # decided".  They follow the fresh decisions, sorted by URI.
    newly_matched = {match.uri for match in matches}
    for partner in sorted(match_graph.partners(uri_q) - newly_matched):
        if store.get(partner) is None:
            continue  # partner retracted since the decision
        known = match_graph.decision_for(uri_q, partner)
        assert known is not None
        matches.append(StreamMatch(partner, known.similarity, weights.get(
            store.interner.get(partner), 0.0
        )))
    return matches, scheduled, len(ordered), skipped


@dataclass
class StreamQueryResult:
    """Outcome of resolving one description, with latency accounting."""

    uri: str
    matches: list[StreamMatch]
    candidates: int
    scheduled: int
    comparisons: int
    skipped_decided: int
    #: per-phase wall-clock seconds: ingest/candidates/weigh/match/total
    latency: dict[str, float] = field(default_factory=dict)

    def matched_uris(self) -> list[str]:
        """URIs decided as matches, best first."""
        return [match.uri for match in self.matches]


class _StreamContext(ResolutionContext):
    """A resolution context registered incrementally, never by scan."""

    def __init__(self, store: StreamingEntityStore) -> None:
        # Deliberately does NOT call super().__init__: the batch context
        # scans every collection up front, which is exactly the O(corpus)
        # cost a per-insert path cannot afford.
        self.collections = store.collections
        self.match_graph = MatchGraph()
        self._home = {}
        store.subscribe(self._register, replay=True)

    def _register(self, description, source, entity_id, was_present) -> None:
        self._home.setdefault(description.uri, self.collections[source])


class StreamResolver:
    """Streaming ER façade: ingest + query over one live store.

    Args:
        store: existing store to serve, or None to create one
            (*clean_clean* picks one or two sources then).
        blocker: key extractor for the incremental index.
        clean_clean: with no *store*, build a two-source store.
        threshold: match threshold of the default cosine matcher.
        matcher: override the decision matcher (must handle the
            streaming similarity index's URIs).
        benefit: scheduler benefit model (default: quantity).
        max_key_cardinality: per-query purging stand-in — candidate keys
            whose current block implies more comparisons are skipped.
        key_ratio: per-query filtering stand-in — only this fraction of
            the query entity's most selective keys generate candidates.
        processed_view: serve candidates and weights from an
            :class:`~repro.stream.processed_view.IncrementalProcessedView`
            — the incrementally-maintained purge/filter survivors —
            instead of the raw index (the per-query stand-in caps above
            are then ignored).  Queries auto-reconcile the view when its
            staleness bound is reached, with the reconcile time reported
            separately from serve time in the latency split.
        purging / filtering: the processed view's operators (defaults
            match the batch pipeline).
        reconcile_every: the view's reconcile cadence in inserts
            (None = adaptive; see ``IncrementalProcessedView``).
        durability: crash safety — a
            :class:`~repro.stream.durability.Durability` controller, or
            a directory path (a default controller is created there).
            Every insert/delete is then write-ahead logged before it is
            applied, and :meth:`recover` can rebuild this resolver's
            state after a crash.
        obs: an :class:`~repro.obs.Observability` handle — every
            insert/delete/query then emits spans (queries one child
            span per phase) and per-phase latency histograms, and the
            handle is propagated into the processed view and the
            durability layer.  Default: the disabled no-op handle.
    """

    def __init__(
        self,
        store: StreamingEntityStore | None = None,
        blocker: Blocker | None = None,
        clean_clean: bool = False,
        threshold: float = 0.4,
        matcher: Matcher | None = None,
        benefit: BenefitModel | None = None,
        max_key_cardinality: int | None = None,
        key_ratio: float | None = None,
        processed_view: bool = False,
        purging: BlockPurging | None = None,
        filtering: BlockFiltering | None = None,
        reconcile_every: int | None = None,
        durability: Durability | str | None = None,
        obs: Observability | None = None,
        _components: tuple | None = None,
    ) -> None:
        self.obs = obs if obs is not None else DISABLED
        if store is None:
            sources = ("kb1", "kb2") if clean_clean else ("stream",)
            store = StreamingEntityStore(sources=sources)
        self.store = store
        if _components is not None:
            # Recovery path: the derived structures were rebuilt (and
            # already subscribed to the store) by the durability layer.
            self.index, self.pairs, self.view, self.view_pairs = _components
            if self.view is not None:
                self.view.obs = self.obs
        else:
            self.index = IncrementalBlockIndex(store, blocker)
            self.pairs = DeltaPairTable(self.index)
            self.view = None
            self.view_pairs = None
            if processed_view:
                self.view = IncrementalProcessedView(
                    self.index, purging, filtering, reconcile_every=reconcile_every
                )
                self.view.obs = self.obs
                self.view_pairs = SurvivorPairTable(self.view)
            # A pre-populated store is replayed into every derived
            # structure (after the pair table and view attached, so no
            # delta is lost); on an empty store these are no-ops.
            self.index.replay_store()
        self.similarity = StreamingSimilarityIndex(store)
        self.context = _StreamContext(store)
        self.matcher = matcher or ThresholdMatcher(
            self.similarity, threshold=threshold, measure="cosine"
        )
        self.matcher.bind(self.context)
        self.benefit = benefit or QuantityBenefit()
        self.max_key_cardinality = max_key_cardinality
        self.key_ratio = key_ratio
        #: how the state was rebuilt, when this resolver came from
        #: :meth:`recover` (None for a fresh resolver)
        self.recovery: RecoveryReport | None = None
        self.durability: Durability | None = None
        if durability is not None:
            if isinstance(durability, str):
                durability = Durability(durability)
            durability.obs = self.obs
            durability.bind(
                store, self.index, self.pairs, self.view, self.view_pairs
            )
            self.durability = durability

    # -- ingestion -----------------------------------------------------------

    def ingest(self, description: EntityDescription, source: int = 0) -> int:
        """Ingest one description; returns its entity id."""
        if not self.obs.enabled:
            return self.store.insert(description, source)
        with self.obs.span("stream.insert", source=source) as span:
            entity_id = self.store.insert(description, source)
            span.set(entity_id=entity_id)
        return entity_id

    def ingest_batch(self, descriptions, source: int = 0) -> list[int]:
        """Ingest a micro-batch of descriptions."""
        if not self.obs.enabled:
            return self.store.insert_batch(descriptions, source)
        with self.obs.span("stream.insert_batch", source=source) as span:
            ids = self.store.insert_batch(descriptions, source)
            span.set(count=len(ids))
        return ids

    def delete(self, uri: str) -> bool:
        """Retract *uri* from the live corpus; True when it was held.

        The retraction flows through the whole delta chain — posting
        lists, pair statistics, similarity state and (when active) the
        processed view's survivors — so subsequent queries neither see
        the entity as a candidate nor weigh against its blocks.  Match
        decisions already recorded against it are suppressed from query
        results while it is absent (see :meth:`resolve`).
        """
        if not self.obs.enabled:
            return self.store.delete(uri)
        with self.obs.span("stream.delete") as span:
            present = self.store.delete(uri)
            span.set(present=present)
        return present

    @property
    def match_graph(self) -> MatchGraph:
        """Decisions accumulated across every query on this resolver."""
        return self.context.match_graph

    # -- query-time resolution -----------------------------------------------

    def resolve(
        self,
        description: EntityDescription,
        source: int = 0,
        scheme: str = "ARCS",
        pruner: str = "CNP",
        budget: int | None = None,
        ingest: bool = True,
    ) -> StreamQueryResult:
        """Resolve one incoming description against the ingested corpus.

        Args:
            description: the incoming entity.
            source: its KB ordinal (clean-clean stores compare only
                across sources).
            scheme: weighting scheme scoring the candidate pairs (any of
                the six batch schemes).
            pruner: local pruning of the candidate neighbourhood —
                ``"CNP"`` (top-k, k derived like batch CNP), ``"WNP"``
                (neighbourhood-mean threshold, like batch WNP/WEP) or
                ``"none"``.
            budget: cap on comparisons actually executed (None: all
                survivors).
            ingest: insert the description first (the default); with
                ``False`` the description must already be in the store.

        Returns:
            The query result with matches (weight-ordered execution,
            similarity recorded) and per-phase latency.
        """
        with self.obs.span("stream.query", source=source) as query_span:
            result = self._resolve(
                description, source, scheme, pruner, budget, ingest
            )
            query_span.set(
                candidates=result.candidates,
                comparisons=result.comparisons,
                matches=len(result.matches),
            )
        return result

    def _resolve(
        self,
        description: EntityDescription,
        source: int,
        scheme: str,
        pruner: str,
        budget: int | None,
        ingest: bool,
    ) -> StreamQueryResult:
        obs = self.obs
        t_total = time.perf_counter()
        latency: dict[str, float] = {}

        with obs.timed(
            "stream.query.ingest", metric="repro.stream.query.ingest.seconds"
        ) as timer:
            if ingest:
                entity_id = self.store.insert(description, source)
            else:
                entity_id = self.store.interner.id_of(description.uri)
        latency["ingest_s"] = timer.duration_s

        # Reconcile-vs-serve split: the view's periodic exact repair is
        # accounted separately, so the workload driver can report where
        # processed-view time goes (amortized repair vs per-query serve).
        latency["reconcile_s"] = 0.0
        if self.view is not None and self.view.due:
            with obs.span("stream.query.reconcile") as timer:
                if self.durability is not None:
                    self.durability.log_reconcile()
                self.view.reconcile()
                if self.durability is not None:
                    self.durability.maybe_snapshot()
            latency["reconcile_s"] = timer.duration_s

        with obs.timed(
            "stream.query.candidates",
            metric="repro.stream.query.candidates.seconds",
        ) as timer:
            if self.view is not None:
                candidate_ids = self.view.partners_of(entity_id)
            else:
                candidate_ids = self.index.partners_of(
                    entity_id, self.max_key_cardinality, self.key_ratio
                )
        latency["candidates_s"] = timer.duration_s

        uris = self.store.interner.uri_table()
        uri_q = description.uri

        with obs.timed(
            "stream.query.weigh", metric="repro.stream.query.weigh.seconds"
        ) as timer:
            pair_table = (
                self.view_pairs if self.view_pairs is not None else self.pairs
            )
            weights = weigh_candidates(
                pair_table, uris, uri_q, entity_id, candidate_ids, scheme
            )
            survivors = self._prune_local(weights, pruner, uris)
        latency["weigh_s"] = timer.duration_s

        with obs.timed(
            "stream.query.match", metric="repro.stream.query.match.seconds"
        ) as timer:
            matches, scheduled, comparisons, skipped = run_match_phase(
                uri_q,
                survivors,
                weights,
                budget,
                self.context,
                self.matcher,
                self.benefit,
                self.store,
            )
        latency["match_s"] = timer.duration_s
        latency["total_s"] = time.perf_counter() - t_total
        latency["serve_s"] = latency["total_s"] - latency["reconcile_s"]

        return StreamQueryResult(
            uri=uri_q,
            matches=matches,
            candidates=len(candidate_ids),
            scheduled=scheduled,
            comparisons=comparisons,
            skipped_decided=skipped,
            latency=latency,
        )

    def _prune_local(
        self, weights: dict[int, float], pruner: str, uris: list[str]
    ) -> list[tuple[int, float]]:
        """Node-centric pruning of the query neighbourhood.

        With the processed view active, the CNP budget derives from
        the survivor placements — matching batch CNP, whose k comes
        from the processed collection.
        """
        table = self.view_pairs if self.view_pairs is not None else self.pairs
        return prune_neighbourhood(
            weights, pruner, uris, table.entities_placed, table.total_assignments
        )

    # -- durability ----------------------------------------------------------

    def close(self) -> None:
        """Sync and close the attached durability controller, if any.

        The clean-shutdown path: after this, :meth:`recover` rebuilds
        the exact current state with zero lost events.
        """
        if self.durability is not None:
            self.durability.close()

    @classmethod
    def recover(
        cls,
        directory: str,
        blocker: Blocker | None = None,
        files: OsFiles | None = None,
        from_scratch: bool = False,
        resume: bool = False,
        fsync_every: int = 1,
        snapshot_every: int | None = None,
        **serving_kwargs,
    ) -> "StreamResolver":
        """Rebuild a resolver from a durability directory after a crash.

        Restores the newest valid snapshot and replays the WAL suffix
        (see :func:`repro.stream.durability.recover`), then wires the
        serving layer — similarity, context, matcher — from the live
        store, which rebuilds them to scores identical to the
        uninterrupted run.  The match-decision graph is *not* recovered
        (a documented limitation: decisions are serving artifacts, not
        store state).

        Args:
            directory: the durability directory of the crashed run.
            blocker: must match the original run's blocker (key
                extraction is not serialized).
            files: file layer override (fault-injection seam).
            from_scratch: ignore snapshots; replay the whole WAL.
            resume: re-attach a durability controller on the same
                directory so the recovered resolver keeps logging where
                the crashed process stopped.
            fsync_every / snapshot_every: the resumed controller's knobs
                (ignored without *resume*).
            serving_kwargs: forwarded to the constructor (threshold,
                matcher, benefit, ...).

        Raises:
            FileNotFoundError: when the directory has no usable WAL.
        """
        result = recover_state(
            directory,
            blocker=blocker,
            files=files,
            from_scratch=from_scratch,
            obs=serving_kwargs.get("obs"),
        )
        controller = None
        if resume:
            controller = Durability(
                directory,
                fsync_every=fsync_every,
                snapshot_every=snapshot_every,
                files=files,
            )
        resolver = cls(
            store=result.store,
            blocker=blocker,
            durability=controller,
            _components=(
                result.index,
                result.pairs,
                result.view,
                result.view_pairs,
            ),
            **serving_kwargs,
        )
        resolver.recovery = result.report
        return resolver

    # -- the batch bridge ----------------------------------------------------

    def graph(
        self,
        scheme: str = "ARCS",
        processed: bool = True,
        purging: BlockPurging | None = None,
        filtering: BlockFiltering | None = None,
    ) -> BlockingGraph:
        """Standard blocking graph over the streamed state.

        Built from the (processed) snapshot, so weights, pair table and
        anything derived are bit-identical to the batch pipeline over
        the same corpus.
        """
        blocks = (
            self.index.snapshot_processed(purging, filtering)
            if processed
            else self.index.snapshot()
        )
        return BlockingGraph(blocks, make_scheme(scheme))

    def pruned_edges(
        self, scheme: str = "ARCS", pruner: str = "CNP", processed: bool = True
    ) -> list[WeightedEdge]:
        """Batch-identical pruned edge list over the streamed state."""
        return make_pruner(pruner).prune(self.graph(scheme, processed=processed))
