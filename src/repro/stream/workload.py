"""dbworkload-style arrival + query scenario replay.

A workload is a deterministic event sequence — ``insert`` events carry
new descriptions, ``query`` events resolve a description against the
state built so far.  Three canonical arrival shapes are generated from
any (kb1, kb2) corpus pair:

* **uniform** — inserts and queries interleaved at a fixed ratio, the
  steady-state serving regime;
* **bursty** — alternating insert bursts and query bursts, the
  ingestion-heavy regime (bulk loads followed by read traffic);
* **skewed** — inserts uniform, queries Zipf-skewed toward early
  (popular) entities, the celebrity-lookup regime.
* **churn** — inserts with periodic retraction of a random live
  entity, the membership-turnover regime deletion support unlocks;
* **erasure** — full ingest followed by a seeded erasure sweep (a
  GDPR-style right-to-be-forgotten pass), queries continuing against
  the shrinking live set.

``delete`` events carry the description to retract; the driver routes
them through :meth:`~repro.stream.resolver.StreamResolver.delete`, so
the whole delta chain (postings, pair statistics, processed view,
similarity) sheds the entity.

The :class:`WorkloadDriver` replays events against a
:class:`~repro.stream.resolver.StreamResolver`, recording per-event
wall-clock latency, and :class:`WorkloadStats` aggregates throughput,
percentiles and the **per-insert latency trajectory** (mean per stream
quartile) — the flatness evidence that inserts stay O(delta) as the
store grows.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.stream.resolver import StreamQueryResult, StreamResolver
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class WorkloadEvent:
    """One scripted event: ``insert``, ``query`` or ``delete``."""

    kind: str
    description: EntityDescription
    source: int = 0


class _SignalWitness:
    """Records which termination signal fired inside the guarded block."""

    __slots__ = ("name",)

    def __init__(self) -> None:
        self.name: str | None = None


@contextmanager
def graceful_sigterm():
    """Make SIGTERM behave like SIGINT inside the ``with`` block.

    Orchestrators (systemd, Kubernetes, CI runners) stop processes with
    SIGTERM, which by default kills the replay mid-write — losing the
    partial statistics and, worse, leaving the WAL without its final
    flush.  Inside this context the signal raises ``KeyboardInterrupt``
    in the main thread instead, so the driver unwinds through its
    interrupt path exactly like a Ctrl-C: partial stats returned,
    telemetry flushed, durability closed cleanly.

    Yields a witness whose ``name`` is ``"SIGTERM"`` when that signal
    fired (callers map it to the conventional exit code 143 vs 130).
    No-op outside the main thread, where signal handlers cannot be
    installed.
    """
    witness = _SignalWitness()

    def _on_sigterm(_signum, _frame):
        witness.name = "SIGTERM"
        raise KeyboardInterrupt()

    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread
        yield witness
        return
    try:
        yield witness
    finally:
        signal.signal(signal.SIGTERM, previous)


def _interleaved(
    kb1: EntityCollection, kb2: EntityCollection | None
) -> list[tuple[EntityDescription, int]]:
    """Arrival pool: both KBs' descriptions, round-robin interleaved."""
    first = [(description, 0) for description in kb1]
    second = [(description, 1) for description in kb2] if kb2 is not None else []
    out: list[tuple[EntityDescription, int]] = []
    for i in range(max(len(first), len(second))):
        if i < len(first):
            out.append(first[i])
        if i < len(second):
            out.append(second[i])
    return out


def uniform_workload(
    kb1: EntityCollection,
    kb2: EntityCollection | None = None,
    query_every: int = 4,
    seed: int = 17,
) -> list[WorkloadEvent]:
    """Steady interleave: one query after every *query_every* inserts.

    Queries re-resolve a uniformly random already-inserted description.
    """
    if query_every < 1:
        raise ValueError("query_every must be >= 1")
    rng = deterministic_rng(seed, "uniform-workload")
    events: list[WorkloadEvent] = []
    inserted: list[tuple[EntityDescription, int]] = []
    for position, (description, source) in enumerate(_interleaved(kb1, kb2), 1):
        events.append(WorkloadEvent("insert", description, source))
        inserted.append((description, source))
        if position % query_every == 0:
            target, target_source = rng.choice(inserted)
            events.append(WorkloadEvent("query", target, target_source))
    return events


def bursty_workload(
    kb1: EntityCollection,
    kb2: EntityCollection | None = None,
    burst_size: int = 25,
    queries_per_burst: int = 8,
    seed: int = 17,
) -> list[WorkloadEvent]:
    """Insert bursts followed by query bursts (bulk-load regime)."""
    if burst_size < 1 or queries_per_burst < 0:
        raise ValueError("burst_size must be >= 1, queries_per_burst >= 0")
    rng = deterministic_rng(seed, "bursty-workload")
    events: list[WorkloadEvent] = []
    inserted: list[tuple[EntityDescription, int]] = []
    pool = _interleaved(kb1, kb2)
    for start in range(0, len(pool), burst_size):
        burst = pool[start : start + burst_size]
        for description, source in burst:
            events.append(WorkloadEvent("insert", description, source))
            inserted.append((description, source))
        for _ in range(queries_per_burst):
            target, target_source = rng.choice(inserted)
            events.append(WorkloadEvent("query", target, target_source))
    return events


def skewed_workload(
    kb1: EntityCollection,
    kb2: EntityCollection | None = None,
    query_every: int = 4,
    zipf_exponent: float = 1.2,
    seed: int = 17,
) -> list[WorkloadEvent]:
    """Uniform inserts, Zipf-skewed queries toward early arrivals.

    Rank r (1 = first inserted) is drawn with probability ∝ r^-s — the
    heavy-hitter lookup pattern of real serving traffic.
    """
    if query_every < 1:
        raise ValueError("query_every must be >= 1")
    if zipf_exponent <= 0:
        raise ValueError("zipf_exponent must be positive")
    rng = deterministic_rng(seed, "skewed-workload")
    events: list[WorkloadEvent] = []
    inserted: list[tuple[EntityDescription, int]] = []
    # Cumulative Zipf weights grown one rank per insert: generation stays
    # O(n log n) overall (bisect per draw) instead of rebuilding the
    # whole weight list per query.
    cumulative: list[float] = []
    for position, (description, source) in enumerate(_interleaved(kb1, kb2), 1):
        events.append(WorkloadEvent("insert", description, source))
        inserted.append((description, source))
        weight = 1.0 / (len(inserted) ** zipf_exponent)
        cumulative.append((cumulative[-1] if cumulative else 0.0) + weight)
        if position % query_every == 0:
            target, target_source = rng.choices(
                inserted, cum_weights=cumulative, k=1
            )[0]
            events.append(WorkloadEvent("query", target, target_source))
    return events


def churn_workload(
    kb1: EntityCollection,
    kb2: EntityCollection | None = None,
    query_every: int = 4,
    delete_every: int = 7,
    seed: int = 17,
) -> list[WorkloadEvent]:
    """Inserts with periodic retraction of a random live entity.

    Every *delete_every*-th insert retracts a uniformly random entity
    that is still live; queries (one per *query_every* inserts) target
    live entities only, so the scenario exercises turnover without
    depending on re-insert semantics.
    """
    if query_every < 1 or delete_every < 1:
        raise ValueError("query_every and delete_every must be >= 1")
    rng = deterministic_rng(seed, "churn-workload")
    events: list[WorkloadEvent] = []
    live: list[tuple[EntityDescription, int]] = []
    for position, (description, source) in enumerate(_interleaved(kb1, kb2), 1):
        events.append(WorkloadEvent("insert", description, source))
        live.append((description, source))
        if position % delete_every == 0 and len(live) > 1:
            target, target_source = live.pop(rng.randrange(len(live)))
            events.append(WorkloadEvent("delete", target, target_source))
        if position % query_every == 0 and live:
            target, target_source = rng.choice(live)
            events.append(WorkloadEvent("query", target, target_source))
    return events


def erasure_workload(
    kb1: EntityCollection,
    kb2: EntityCollection | None = None,
    erase_fraction: float = 0.25,
    query_every: int = 4,
    seed: int = 17,
) -> list[WorkloadEvent]:
    """Full ingest, then a seeded erasure sweep (GDPR-style).

    The whole corpus arrives first under steady query traffic; then
    *erase_fraction* of the entities are retracted in seeded random
    order, with queries continuing against the shrinking live set —
    the workload behind the "deleted entities never resurface" gate.
    """
    if not 0.0 <= erase_fraction <= 1.0:
        raise ValueError("erase_fraction must be in [0, 1]")
    if query_every < 1:
        raise ValueError("query_every must be >= 1")
    rng = deterministic_rng(seed, "erasure-workload")
    events: list[WorkloadEvent] = []
    live: list[tuple[EntityDescription, int]] = []
    for position, (description, source) in enumerate(_interleaved(kb1, kb2), 1):
        events.append(WorkloadEvent("insert", description, source))
        live.append((description, source))
        if position % query_every == 0:
            target, target_source = rng.choice(live)
            events.append(WorkloadEvent("query", target, target_source))
    erase_count = int(len(live) * erase_fraction)
    for step in range(1, erase_count + 1):
        target, target_source = live.pop(rng.randrange(len(live)))
        events.append(WorkloadEvent("delete", target, target_source))
        if step % query_every == 0 and live:
            target, target_source = rng.choice(live)
            events.append(WorkloadEvent("query", target, target_source))
    return events


SCENARIOS = {
    "uniform": uniform_workload,
    "bursty": bursty_workload,
    "skewed": skewed_workload,
    "churn": churn_workload,
    "erasure": erasure_workload,
}


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(fraction * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def _count_property(attr: str):
    """A Counter-backed int field that still supports ``stats.x += 1``."""

    def getter(self):
        return getattr(self, attr).value

    def setter(self, value):
        getattr(self, attr).value = value

    return property(getter, setter)


class WorkloadStats:
    """Aggregated replay measurements, backed by metric primitives.

    Counts live in :class:`~repro.obs.metrics.Counter` objects and
    latency series in :class:`~repro.obs.metrics.Histogram` objects
    (raw observations retained); the legacy fields — ``inserts``,
    ``insert_latencies_s``, ``reconcile_s``, ... — are live views of
    the same state.  :meth:`bind` registers the *same objects* in a
    :class:`~repro.obs.metrics.MetricsRegistry`, so the numbers in the
    legacy summary rows and in an exported ``metrics.txt`` are
    identical by construction, not by synchronization.
    """

    def __init__(self, scenario: str) -> None:
        self.scenario = scenario
        self._inserts = Counter()
        self._queries = Counter()
        self._deletes = Counter()
        self._matches_found = Counter()
        self._comparisons = Counter()
        self.elapsed_s = 0.0
        #: True when the replay was cut short (SIGINT / KeyboardInterrupt);
        #: the stats then cover the prefix actually executed
        self.interrupted = False
        #: which signal cut the replay short ("SIGINT"/"SIGTERM"), when
        #: the runner routed it through :func:`graceful_sigterm`
        self.interrupt_signal: str | None = None
        #: per-event wall-clock histograms (``.values`` is the raw series)
        self.insert_hist = Histogram()
        self.query_hist = Histogram()
        self.delete_hist = Histogram()
        #: processed-view accounting (empty when the resolver serves
        #: raw): reconcile-triggering queries and the reconcile-vs-serve
        #: split of the view's query-time cost
        self.reconcile_hist = Histogram()
        self.serve_hist = Histogram()

    inserts = _count_property("_inserts")
    queries = _count_property("_queries")
    deletes = _count_property("_deletes")
    matches_found = _count_property("_matches_found")
    comparisons = _count_property("_comparisons")

    @property
    def insert_latencies_s(self) -> list[float]:
        """Raw insert latency series (the histogram's live value list)."""
        return self.insert_hist.values

    @property
    def query_latencies_s(self) -> list[float]:
        return self.query_hist.values

    @property
    def delete_latencies_s(self) -> list[float]:
        return self.delete_hist.values

    @property
    def reconciles(self) -> int:
        """Queries that triggered an exact view reconciliation."""
        return self.reconcile_hist.count

    @property
    def reconcile_s(self) -> float:
        """Total wall seconds spent reconciling the processed view."""
        return self.reconcile_hist.sum

    @property
    def serve_s(self) -> float:
        """Total serve-side query seconds (reconcile time excluded)."""
        return self.serve_hist.sum

    def bind(self, registry: MetricsRegistry) -> None:
        """Register the backing metric objects under their public names.

        The registry shares the live objects — the replay keeps
        updating them, the exposition reads them — which is what makes
        the ``metrics.txt`` figures equal the legacy stats rows
        bit for bit.
        """
        registry.register("repro.stream.insert.count", self._inserts)
        registry.register("repro.stream.query.count", self._queries)
        registry.register("repro.stream.delete.count", self._deletes)
        registry.register("repro.stream.matches.count", self._matches_found)
        registry.register("repro.stream.comparisons.count", self._comparisons)
        registry.register("repro.stream.insert.seconds", self.insert_hist)
        registry.register("repro.stream.query.seconds", self.query_hist)
        registry.register("repro.stream.delete.seconds", self.delete_hist)
        registry.register("repro.stream.view.reconcile.total.seconds",
                          self.reconcile_hist)
        registry.register("repro.stream.serve.seconds", self.serve_hist)

    @property
    def events(self) -> int:
        """Total events replayed."""
        return self.inserts + self.queries + self.deletes

    @property
    def throughput_eps(self) -> float:
        """Events per second over the whole replay."""
        return self.events / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_summary(self, kind: str = "insert") -> dict[str, float]:
        """mean/p50/p95/p99/max (seconds) for ``insert``/``query``/``delete``."""
        if kind == "insert":
            hist = self.insert_hist
        elif kind == "delete":
            hist = self.delete_hist
        else:
            hist = self.query_hist
        return hist.summary()

    def insert_latency_by_quartile(self) -> list[float]:
        """Mean insert latency per stream quartile (the flatness series).

        A flat series is the amortized-O(delta) signature; an O(corpus)
        insert path would grow linearly across quartiles.
        """
        values = self.insert_latencies_s
        if not values:
            return [0.0, 0.0, 0.0, 0.0]
        quarter = max(1, len(values) // 4)
        out = []
        for start in range(0, 4 * quarter, quarter):
            chunk = values[start : start + quarter]
            out.append(sum(chunk) / len(chunk) if chunk else 0.0)
        return out

    def summary_rows(self) -> list[dict[str, str]]:
        """Report-ready rows for ``format_table``."""
        insert = self.latency_summary("insert")
        query = self.latency_summary("query")
        quartiles = self.insert_latency_by_quartile()
        return [
            {"metric": "events", "value": str(self.events)},
            {"metric": "inserts", "value": str(self.inserts)},
            {"metric": "queries", "value": str(self.queries)},
        ] + (
            [{"metric": "deletes", "value": str(self.deletes)}]
            if self.deletes
            else []
        ) + (
            [{"metric": "interrupted",
              "value": (
                  f"yes ({self.interrupt_signal}, partial replay)"
                  if self.interrupt_signal
                  else "yes (partial replay)"
              )}]
            if self.interrupted
            else []
        ) + [
            {"metric": "matches found", "value": str(self.matches_found)},
            {"metric": "comparisons", "value": str(self.comparisons)},
            {"metric": "throughput (events/s)", "value": f"{self.throughput_eps:.0f}"},
            {"metric": "insert mean / p95 (ms)",
             "value": f"{insert['mean'] * 1e3:.3f} / {insert['p95'] * 1e3:.3f}"},
            {"metric": "query mean / p95 (ms)",
             "value": f"{query['mean'] * 1e3:.3f} / {query['p95'] * 1e3:.3f}"},
            {"metric": "insert mean by quartile (ms)",
             "value": " ".join(f"{q * 1e3:.3f}" for q in quartiles)},
        ] + (
            [
                {"metric": "view reconciles (queries)",
                 "value": str(self.reconciles)},
                {"metric": "view reconcile / serve total (ms)",
                 "value": f"{self.reconcile_s * 1e3:.3f} / {self.serve_s * 1e3:.3f}"},
            ]
            if self.reconciles or self.reconcile_s
            else []
        )


class WorkloadDriver:
    """Replays a workload against one resolver, timing every event."""

    def __init__(self, resolver: StreamResolver | None = None) -> None:
        self.resolver = resolver or StreamResolver(clean_clean=True)

    def run(
        self,
        events: list[WorkloadEvent],
        scenario: str = "custom",
        scheme: str = "ARCS",
        pruner: str = "CNP",
        budget: int | None = None,
        on_query=None,
    ) -> WorkloadStats:
        """Replay *events*; returns the aggregated statistics.

        Args:
            events: the scripted sequence.
            scenario: label recorded in the stats.
            scheme / pruner / budget: forwarded to every query's
                :meth:`~repro.stream.resolver.StreamResolver.resolve`.
            on_query: optional callback receiving each
                :class:`~repro.stream.resolver.StreamQueryResult`.

        A ``KeyboardInterrupt`` (SIGINT) mid-replay does not discard the
        run: the stats of the prefix executed so far are returned with
        :attr:`WorkloadStats.interrupted` set, so the caller can still
        report and shut the durability layer down cleanly.
        """
        resolver = self.resolver
        stats = WorkloadStats(scenario=scenario)
        if resolver.obs.enabled:
            # Expose the replay's backing metrics through the resolver's
            # registry: the same live objects feed the legacy summary
            # rows and the metrics.txt exposition.
            stats.bind(resolver.obs.registry)
        t_start = time.perf_counter()
        try:
            for event in events:
                if event.kind == "insert":
                    t0 = time.perf_counter()
                    resolver.ingest(event.description, event.source)
                    stats.insert_hist.observe(time.perf_counter() - t0)
                    stats.inserts += 1
                elif event.kind == "query":
                    t0 = time.perf_counter()
                    result: StreamQueryResult = resolver.resolve(
                        event.description,
                        source=event.source,
                        scheme=scheme,
                        pruner=pruner,
                        budget=budget,
                        ingest=True,
                    )
                    stats.query_hist.observe(time.perf_counter() - t0)
                    stats.queries += 1
                    stats.matches_found += len(result.matches)
                    stats.comparisons += result.comparisons
                    reconcile_s = result.latency.get("reconcile_s", 0.0)
                    # Zero observations are skipped, not recorded: the
                    # histogram count doubles as the reconcile counter,
                    # and adding 0.0 would not change the sum anyway.
                    if reconcile_s > 0.0:
                        stats.reconcile_hist.observe(reconcile_s)
                    stats.serve_hist.observe(result.latency.get(
                        "serve_s", result.latency.get("total_s", 0.0)
                    ))
                    if on_query is not None:
                        on_query(result)
                elif event.kind == "delete":
                    t0 = time.perf_counter()
                    resolver.delete(event.description.uri)
                    stats.delete_hist.observe(time.perf_counter() - t0)
                    stats.deletes += 1
                else:
                    raise ValueError(f"unknown event kind {event.kind!r}")
        except KeyboardInterrupt:
            stats.interrupted = True
        stats.elapsed_s = time.perf_counter() - t_start
        return stats
