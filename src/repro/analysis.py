"""LOD-cloud shape analysis.

The paper's motivation rests on measurable properties of the Web of data:
sparse interlinking at the periphery, proprietary vocabularies, and the
highly-vs-somehow-similar dichotomy of matching descriptions.  This module
computes those indicators for arbitrary collection pairs, so a user can
diagnose *which regime their own data is in* — and therefore whether the
update phase and URI-aware blocking will pay off — before configuring the
pipeline.  E9 is built on these measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.datasets.gold import GoldStandard
from repro.matching.similarity import SimilarityIndex
from repro.model.collection import EntityCollection
from repro.model.tokenizer import Tokenizer


@dataclass(frozen=True)
class VocabularyOverlap:
    """How much two KBs share their schema vocabulary."""

    properties_1: int
    properties_2: int
    shared_properties: int

    @property
    def jaccard(self) -> float:
        """Jaccard of the two property sets."""
        union = self.properties_1 + self.properties_2 - self.shared_properties
        return self.shared_properties / union if union else 0.0

    @property
    def proprietary_fraction(self) -> float:
        """Fraction of properties used by exactly one KB (the paper quotes
        58.24% for the LOD cloud's vocabularies)."""
        union = self.properties_1 + self.properties_2 - self.shared_properties
        if union == 0:
            return 0.0
        return (union - self.shared_properties) / union


@dataclass(frozen=True)
class SimilarityRegime:
    """Token-overlap profile of a set of description pairs."""

    pair_count: int
    mean_jaccard: float
    min_jaccard: float
    low_evidence_pairs: int
    low_evidence_threshold: int

    @property
    def low_evidence_fraction(self) -> float:
        """Share of pairs with at most the threshold's common tokens —
        the "somehow similar" population."""
        return self.low_evidence_pairs / self.pair_count if self.pair_count else 0.0

    @property
    def regime(self) -> str:
        """Coarse classification: ``"center"`` or ``"periphery"``.

        Uses the working rule derived from the paper's dichotomy: a
        workload whose matches average ≥ 0.5 token Jaccard and almost
        never drop to low evidence behaves like the LOD centre.
        """
        if self.mean_jaccard >= 0.5 and self.low_evidence_fraction <= 0.05:
            return "center"
        return "periphery"


def vocabulary_overlap(
    kb1: EntityCollection, kb2: EntityCollection
) -> VocabularyOverlap:
    """Property-set overlap of two KBs."""
    props1 = {prop for d in kb1 for prop in d.properties()}
    props2 = {prop for d in kb2 for prop in d.properties()}
    return VocabularyOverlap(
        properties_1=len(props1),
        properties_2=len(props2),
        shared_properties=len(props1 & props2),
    )


def similarity_regime(
    collections: Iterable[EntityCollection],
    pairs: Iterable[tuple[str, str]],
    tokenizer: Tokenizer | None = None,
    low_evidence_threshold: int = 2,
) -> SimilarityRegime:
    """Token-overlap profile of the given description *pairs*.

    Args:
        collections: the KBs covering every URI in *pairs*.
        pairs: the pairs to profile (typically the gold matches).
        tokenizer: token extractor (defaults to the blocking tokenizer).
        low_evidence_threshold: a pair is low-evidence when it shares at
            most this many distinct tokens.

    Raises:
        ValueError: if *pairs* is empty.
    """
    index = SimilarityIndex(collections, tokenizer=tokenizer)
    overlaps: list[float] = []
    low = 0
    for left, right in pairs:
        overlaps.append(index.jaccard(left, right))
        if len(index.common_tokens(left, right)) <= low_evidence_threshold:
            low += 1
    if not overlaps:
        raise ValueError("similarity_regime requires at least one pair")
    return SimilarityRegime(
        pair_count=len(overlaps),
        mean_jaccard=sum(overlaps) / len(overlaps),
        min_jaccard=min(overlaps),
        low_evidence_pairs=low,
        low_evidence_threshold=low_evidence_threshold,
    )


def match_regime(
    kb1: EntityCollection,
    kb2: EntityCollection,
    gold: GoldStandard,
    tokenizer: Tokenizer | None = None,
) -> SimilarityRegime:
    """Convenience: the similarity regime of a task's gold matches."""
    return similarity_regime([kb1, kb2], sorted(gold.matches), tokenizer)


def interlinking_density(collection: EntityCollection) -> float:
    """Relationship edges per description — the sparsity indicator that
    separates the LOD centre (densely interlinked) from its periphery."""
    size = len(collection)
    if size == 0:
        return 0.0
    return collection.statistics().relationship_count / size
