"""Command-line interface to the MinoanER platform.

Every resolution subcommand is a thin shell over the declarative
facade (:mod:`repro.api`): flags assemble a
:class:`~repro.api.spec.PipelineSpec`, :meth:`~repro.api.runner.
Pipeline.run` executes it, and the tables render the unified
:class:`~repro.api.runner.RunReport`.  Component names (blockers,
weighting schemes, pruners, benefit models, scenarios) are resolved
dynamically from the :data:`~repro.api.registry.registry`, so plugins
registered before ``main()`` appear in ``--help`` and error messages
automatically.

Subcommands::

    python -m repro stats      KB.nt [KB2.nt]        # shape diagnosis
    python -m repro block      --kb1 A.nt --kb2 B.nt [--gold G.csv]
    python -m repro resolve    --kb1 A.nt [--kb2 B.nt] [--gold G.csv]
                               [--budget N] [--benefit MODEL] [--out M.csv]
    python -m repro run        --spec SPEC.json [--kb1 A.nt ...]
                               [--backend sequential|mapreduce|stream|sql]
                               [--engine sqlite|duckdb] [--db-path FILE]
    python -m repro sql        explain --spec SPEC.json [--kb1 A.nt ...]
    python -m repro stream     --kb1 A.nt [--kb2 B.nt]
                               [--scenario uniform|bursty|skewed]
                               [--processed-view]
                               [--reconcile-interval adaptive|K[,K2,...]]
    python -m repro mapreduce  --kb1 A.nt [--kb2 B.nt] [--workers 1 2 4]
                               [--executor serial|process|both]
                               [--formulation int|string|both]
    python -m repro workflow   blocking|metablocking|progressive|budgets ...
    python -m repro components [--kind KIND]         # registry listing
    python -m repro synthesize --entities N --profile center|periphery
                               --out-dir DIR
    python -m repro obs        report DIR            # render telemetry

``run``, ``stream`` and ``mapreduce`` accept ``--trace-dir DIR`` /
``--metrics`` to capture span traces (``DIR/trace.jsonl``) and the
metric exposition (``DIR/metrics.txt``); ``repro obs report DIR``
renders the per-stage time-attribution tree and histogram tables.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from typing import Sequence

from repro.analysis import interlinking_density, match_regime, vocabulary_overlap
from repro.api import Pipeline, PipelineSpec, registry
from repro.api.spec import BACKEND_KINDS, SQL_ENGINES
from repro.datasets.gold import GoldStandard, load_gold_csv, save_gold_csv
from repro.datasets.synthetic import (
    CENTER_PROFILE,
    PERIPHERY_PROFILE,
    SyntheticConfig,
    synthesize_pair,
)
from repro.evaluation.metrics import evaluate_blocks
from repro.evaluation.reporting import format_table
from repro.model.collection import EntityCollection
from repro.rdf.loader import load_collection
from repro.rdf.ntriples import Triple, serialize_ntriples


def _positive_int(value: str) -> int:
    """Argparse type: an integer >= 1 (worker counts)."""
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (run/stream/mapreduce)."""
    parser.add_argument(
        "--trace-dir", metavar="DIR",
        help="enable observability and write DIR/trace.jsonl (span "
        "trace) plus DIR/metrics.txt (metric exposition); render with "
        "`repro obs report DIR`",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable observability and print the metric exposition "
        "after the run (combines with --trace-dir)",
    )


def _make_obs(args: argparse.Namespace):
    """--trace-dir/--metrics → an :class:`Observability`, else None."""
    if not (args.trace_dir or args.metrics):
        return None
    from repro.obs import Observability

    return Observability(directory=args.trace_dir)


def _finish_obs(obs, args: argparse.Namespace) -> None:
    """Final telemetry export: close sinks, honour --metrics."""
    if obs is None:
        return
    obs.close()
    if args.metrics:
        print()
        print(obs.metrics_text().rstrip())
    if args.trace_dir:
        print(f"\ntelemetry written to {args.trace_dir} ({obs.span_count} spans)")


def _add_component_flags(parser: argparse.ArgumentParser) -> None:
    """The shared weighting/pruning flags, choices from the registry."""
    parser.add_argument(
        "--weighting", choices=registry.names("weighting"), default="ARCS",
        help="meta-blocking weighting scheme",
    )
    parser.add_argument(
        "--pruning", choices=registry.names("pruner"), default="CNP",
        help="meta-blocking pruning scheme",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MinoanER: progressive entity resolution in the Web of Data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="collection statistics and LOD-regime analysis")
    stats.add_argument("kb1", help="first KB (.nt or .ttl)")
    stats.add_argument("kb2", nargs="?", help="optional second KB")
    stats.add_argument("--gold", help="gold CSV (enables match-regime analysis)")

    block = sub.add_parser("block", help="run and evaluate the blocking stage")
    block.add_argument("--kb1", required=True)
    block.add_argument("--kb2")
    block.add_argument("--gold", help="gold CSV for PC/PQ/RR")
    block.add_argument(
        "--method", choices=registry.names("blocker"), default="token",
        help="blocking method",
    )

    resolve = sub.add_parser("resolve", help="run the full MinoanER pipeline")
    resolve.add_argument("--kb1", required=True)
    resolve.add_argument("--kb2")
    resolve.add_argument("--gold", help="gold CSV (evaluation only)")
    resolve.add_argument("--budget", type=int, help="comparison budget (default unlimited)")
    resolve.add_argument(
        "--benefit", choices=registry.names("benefit"), default="quantity",
        help="benefit model targeted by scheduling",
    )
    _add_component_flags(resolve)
    resolve.add_argument("--threshold", type=float, default=0.4, help="match threshold")
    resolve.add_argument(
        "--no-update", action="store_true", help="disable the update phase"
    )
    resolve.add_argument("--out", help="write matched pairs to this CSV")

    run = sub.add_parser(
        "run", help="execute a declarative PipelineSpec JSON on any backend"
    )
    run.add_argument("--spec", required=True, help="PipelineSpec JSON file")
    run.add_argument("--kb1", help="override the spec's data node")
    run.add_argument("--kb2")
    run.add_argument("--gold")
    run.add_argument(
        "--backend", metavar="KIND",
        help="override the spec's backend kind "
        f"({'|'.join(BACKEND_KINDS)})",
    )
    run.add_argument(
        "--engine", metavar="ENGINE",
        help="sql backend only: override the relational engine "
        f"({'|'.join(SQL_ENGINES)})",
    )
    run.add_argument(
        "--db-path", metavar="FILE",
        help="sql backend only: database file (default in-memory); "
        "a disk path runs the pipeline out of core",
    )
    run.add_argument("--out", help="write matched pairs to this CSV")
    _add_obs_flags(run)

    sql = sub.add_parser(
        "sql", help="inspect the relational (SQL-compiled) backend"
    )
    sql_sub = sql.add_subparsers(dest="sql_command", required=True)
    explain = sql_sub.add_parser(
        "explain",
        help="compile a spec to SQL and print the per-stage query plans",
    )
    explain.add_argument("--spec", required=True, help="PipelineSpec JSON file")
    explain.add_argument("--kb1", help="override the spec's data node")
    explain.add_argument("--kb2")
    explain.add_argument(
        "--engine", metavar="ENGINE",
        help=f"override the spec's sql engine ({'|'.join(SQL_ENGINES)})",
    )

    components = sub.add_parser(
        "components", help="list every registered component and its parameters"
    )
    components.add_argument(
        "--kind", choices=tuple(registry.kinds()) + ("backends",),
        help="restrict to one component kind (or the backends section)",
    )

    workflow = sub.add_parser(
        "workflow", help="run a canned experiment workflow on your data"
    )
    workflow.add_argument(
        "name",
        choices=("blocking", "metablocking", "progressive", "budgets"),
        help="which workflow to run",
    )
    workflow.add_argument("--kb1", required=True)
    workflow.add_argument("--kb2")
    workflow.add_argument("--gold", required=True)
    # Defaults are None so flags given to a workflow that ignores them
    # are rejected instead of silently dropped (see _WORKFLOW_FLAGS).
    workflow.add_argument(
        "--budget", type=int, default=None,
        help="budget for the progressive workflow (default 1000)",
    )
    workflow.add_argument(
        "--budgets", type=int, nargs="+", default=None,
        help="budgets for the budget-sweep workflow (default 100 500 1000)",
    )
    workflow.add_argument(
        "--threshold", type=float, default=None,
        help="match threshold for progressive/budgets (default 0.4, "
        "matching `repro resolve`)",
    )
    workflow.add_argument(
        "--seed", type=int, default=None,
        help="random-baseline seed for the progressive workflow (default 7)",
    )

    stream = sub.add_parser(
        "stream", help="replay a streaming arrival+query workload"
    )
    stream.add_argument(
        "--kb1", help="required except in recover-only mode (--recover-dir alone)"
    )
    stream.add_argument("--kb2")
    stream.add_argument(
        "--scenario", choices=registry.names("scenario"), default="uniform",
        help="arrival/query shape replayed against the streaming resolver",
    )
    stream.add_argument(
        "--weighting", choices=registry.names("weighting"), default="ARCS",
        help="weighting scheme scoring query candidates",
    )
    stream.add_argument(
        "--pruning", choices=registry.names("pruner") + ["none"], default="CNP",
        help="local pruning of each query's candidate neighbourhood "
        "(reciprocal variants degrade to their base algorithm per query)",
    )
    stream.add_argument("--threshold", type=float, default=0.4, help="match threshold")
    stream.add_argument("--budget", type=int, help="per-query comparison cap")
    stream.add_argument("--seed", type=int, default=17)
    stream.add_argument(
        "--processed-view", action="store_true",
        help="serve queries from the incrementally-maintained processed "
        "(purged+filtered) view instead of the raw index",
    )
    stream.add_argument(
        "--reconcile-interval", default=None,
        help="processed-view reconcile cadence in inserts: 'adaptive' "
        "(the default), an integer, or a comma-separated sweep (each "
        "value replays the workload against a fresh resolver); implies "
        "--processed-view",
    )
    stream.add_argument(
        "--durability-dir",
        help="write-ahead log + snapshot directory: the replay becomes "
        "crash-recoverable (see --recover-dir)",
    )
    stream.add_argument(
        "--snapshot-every", type=_positive_int, default=200,
        help="snapshot cadence in WAL records (default 200; used with "
        "--durability-dir or --crash-at)",
    )
    stream.add_argument(
        "--fsync-every", type=_positive_int, default=1,
        help="WAL fsync batching: sync every N appends (default 1 = "
        "durable per event)",
    )
    stream.add_argument(
        "--crash-at", type=_positive_int, metavar="N",
        help="fault-injection harness: replay the first N events durably "
        "into --recover-dir, die without closing the WAL, then recover "
        "and verify the state equals an uninterrupted replay",
    )
    stream.add_argument(
        "--recover-dir",
        help="durability directory to recover from; with --crash-at it "
        "hosts the crash harness, alone it prints the recovered state "
        "summary (no --kb1 needed)",
    )
    _add_obs_flags(stream)

    serve = sub.add_parser(
        "serve",
        help="drive a sharded serving tier under open-loop load with "
        "optional injected faults",
    )
    serve.add_argument("--kb1", required=True)
    serve.add_argument("--kb2")
    serve.add_argument(
        "--shards", type=_positive_int, default=2,
        help="worker process count == candidate partition count",
    )
    serve.add_argument(
        "--scenario", choices=registry.names("scenario"), default="uniform",
        help="arrival/query shape driven through the tier",
    )
    serve.add_argument(
        "--weighting", choices=registry.names("weighting"), default="ARCS",
    )
    serve.add_argument(
        "--pruning", choices=registry.names("pruner") + ["none"], default="CNP",
    )
    serve.add_argument("--threshold", type=float, default=0.4)
    serve.add_argument("--budget", type=int, help="per-query comparison cap")
    serve.add_argument("--seed", type=int, default=17)
    serve.add_argument(
        "--rate", type=float, default=200.0,
        help="open-loop arrival rate in events/s (latency is measured "
        "from the scheduled arrival — coordinated-omission corrected)",
    )
    serve.add_argument(
        "--ramp", type=float, default=0.0,
        help="ramp-up seconds: the rate grows linearly to --rate",
    )
    serve.add_argument(
        "--max-events", type=_positive_int, default=None,
        help="truncate the scenario to its first N events",
    )
    serve.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="declarative fault, repeatable: kill:1@t=5, kill:1@e=120, "
        "stall:0@t=2:dur=0.8, freeze:0@t=3, torn:1@spawn:budget=4096",
    )
    serve.add_argument(
        "--durability-root",
        help="per-shard WAL/snapshot directories under this root: "
        "respawned shards recover from disk before the re-drive",
    )
    serve.add_argument(
        "--no-failover", action="store_true",
        help="do not reroute a dead shard's partitions (degraded study)",
    )
    serve.add_argument(
        "--no-respawn", action="store_true",
        help="leave dead shards dead (degraded study)",
    )
    serve.add_argument(
        "--heartbeat-deadline", type=float, default=1.0,
        help="seconds of heartbeat silence before a shard is declared "
        "stuck and respawned",
    )
    serve.add_argument(
        "--verify", type=int, default=25, metavar="N",
        help="after the run, check N sampled queries for bit-identity "
        "against a replayed single-store oracle (0 = skip)",
    )
    _add_obs_flags(serve)

    mapreduce = sub.add_parser(
        "mapreduce", help="parallel meta-blocking worker/executor sweep"
    )
    mapreduce.add_argument("--kb1", required=True)
    mapreduce.add_argument("--kb2")
    _add_component_flags(mapreduce)
    mapreduce.add_argument(
        "--workers", type=_positive_int, nargs="+", default=[1, 2, 4],
        help="worker counts to sweep (each >= 1)",
    )
    mapreduce.add_argument(
        "--executor", choices=("serial", "process", "both"), default="both",
        help="serial simulates the cluster; process measures real speedup",
    )
    mapreduce.add_argument(
        "--formulation", choices=("int", "string", "both"), default="int",
        help="int-ID record batches vs the string-tuple reference jobs",
    )
    _add_obs_flags(mapreduce)

    obs = sub.add_parser(
        "obs", help="inspect telemetry directories written by --trace-dir"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="per-stage time-attribution tree + histogram/counter tables",
    )
    obs_report.add_argument(
        "directory", help="telemetry directory (holds trace.jsonl)"
    )

    synthesize = sub.add_parser("synthesize", help="generate a synthetic workload")
    synthesize.add_argument("--entities", type=int, default=300)
    synthesize.add_argument("--overlap", type=float, default=0.7)
    synthesize.add_argument(
        "--regime", choices=("center", "periphery"), default="center",
        help="similarity regime of the generated pair",
    )
    synthesize.add_argument("--seed", type=int, default=42)
    synthesize.add_argument("--out-dir", required=True)

    return parser


# -- command implementations -------------------------------------------------


def _load(path: str) -> EntityCollection:
    return load_collection(path)


def _maybe_gold(path: str | None) -> GoldStandard | None:
    return load_gold_csv(path) if path else None


def _print_report(report, out_path: str | None = None) -> None:
    """The unified RunReport rendering shared by resolve/run."""
    print(
        format_table(
            [dict(stage=k, value=v) for k, v in report.summary().items()],
            title="Pipeline summary",
            first_column="stage",
        )
    )
    if report.match_quality is not None:
        print()
        print(format_table([report.match_quality.as_row()], title="Matching quality"))
    if report.workload is not None:
        print()
        print(
            format_table(
                report.workload.summary_rows(),
                title=f"Streaming replay: {report.backend.get('scenario', '?')}",
                first_column="metric",
            )
        )
    if out_path:
        with open(out_path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["uri1", "uri2"])
            for left, right in sorted(report.matched_pairs()):
                writer.writerow([left, right])
        print(f"\nmatches written to {out_path}")


def cmd_stats(args: argparse.Namespace) -> int:
    kb1 = _load(args.kb1)
    rows = [dict(metric=k, value=v) for k, v in kb1.statistics().as_rows()]
    rows.append(dict(metric="interlinking density", value=f"{interlinking_density(kb1):.3f}"))
    print(format_table(rows, title=f"Statistics: {kb1.name}", first_column="metric"))
    if args.kb2:
        kb2 = _load(args.kb2)
        rows = [dict(metric=k, value=v) for k, v in kb2.statistics().as_rows()]
        rows.append(
            dict(metric="interlinking density", value=f"{interlinking_density(kb2):.3f}")
        )
        print()
        print(format_table(rows, title=f"Statistics: {kb2.name}", first_column="metric"))
        overlap = vocabulary_overlap(kb1, kb2)
        print()
        print(
            format_table(
                [
                    dict(metric="shared properties", value=str(overlap.shared_properties)),
                    dict(metric="vocabulary Jaccard", value=f"{overlap.jaccard:.3f}"),
                    dict(
                        metric="proprietary fraction",
                        value=f"{overlap.proprietary_fraction:.3f}",
                    ),
                ],
                title="Vocabulary overlap",
                first_column="metric",
            )
        )
        if args.gold:
            gold = load_gold_csv(args.gold)
            regime = match_regime(kb1, kb2, gold)
            print()
            print(
                format_table(
                    [
                        dict(metric="gold matches", value=str(regime.pair_count)),
                        dict(metric="mean match Jaccard", value=f"{regime.mean_jaccard:.3f}"),
                        dict(
                            metric="low-evidence matches",
                            value=f"{regime.low_evidence_pairs}/{regime.pair_count}",
                        ),
                        dict(metric="regime", value=regime.regime),
                    ],
                    title="Match-similarity regime",
                    first_column="metric",
                )
            )
    return 0


def cmd_block(args: argparse.Namespace) -> int:
    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    blocker = registry.create("blocker", args.method)
    blocks = blocker.build(kb1, kb2)
    gold = _maybe_gold(args.gold)
    if gold is not None:
        quality = evaluate_blocks(
            blocks, gold, len(kb1), len(kb2) if kb2 is not None else None
        )
        row = {"method": blocker.name}
        row.update(quality.as_row())
        print(format_table([row], title="Blocking quality", first_column="method"))
    else:
        print(
            format_table(
                [
                    {
                        "method": blocker.name,
                        "blocks": str(len(blocks)),
                        "comparisons": str(blocks.total_comparisons()),
                        "entities": str(blocks.entity_count()),
                    }
                ],
                title="Blocking summary",
                first_column="method",
            )
        )
    return 0


def _spec_from_resolve_args(args: argparse.Namespace) -> PipelineSpec:
    """Flags → PipelineSpec for the sequential resolve subcommand."""
    return PipelineSpec.from_dict(
        {
            "weighting": args.weighting,
            "pruning": args.pruning,
            "matching": {
                "matcher": {
                    "name": "threshold",
                    "params": {"threshold": args.threshold},
                },
                "budget": args.budget,
                "benefit": args.benefit,
                "update_phase": not args.no_update,
            },
        }
    )


def cmd_resolve(args: argparse.Namespace) -> int:
    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    gold = _maybe_gold(args.gold)
    report = Pipeline.run(_spec_from_resolve_args(args), kb1, kb2, gold=gold)
    _print_report(report, args.out)
    return 0


def _backend_overrides(args: argparse.Namespace) -> dict | None:
    """--backend/--engine/--db-path → ``with_backend`` changes.

    Unknown names are reported here (exit 2, valid list) instead of
    argparse's usage error, mirroring the unknown-component style.
    """
    if getattr(args, "backend", None) and args.backend not in BACKEND_KINDS:
        print(
            f"unknown backend {args.backend!r}; "
            f"choose from: {', '.join(BACKEND_KINDS)}"
        )
        return None
    if getattr(args, "engine", None) and args.engine not in SQL_ENGINES:
        print(
            f"unknown sql engine {args.engine!r}; "
            f"choose from: {', '.join(SQL_ENGINES)}"
        )
        return None
    overrides = {}
    if getattr(args, "backend", None):
        overrides["kind"] = args.backend
    if getattr(args, "engine", None):
        overrides["engine"] = args.engine
    if getattr(args, "db_path", None):
        overrides["db_path"] = args.db_path
    return overrides


def cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.api import SpecError

    overrides = _backend_overrides(args)
    if overrides is None:
        return 2
    try:
        spec = PipelineSpec.load(args.spec)
        if overrides:
            spec = spec.with_backend(**overrides)
    except FileNotFoundError:
        print(f"spec file not found: {args.spec}")
        return 2
    except json.JSONDecodeError as exc:
        print(f"spec file {args.spec} is not valid JSON: {exc}")
        return 2
    except SpecError as exc:
        print(f"invalid spec {args.spec}: {exc}")
        return 2
    kb1 = _load(args.kb1) if args.kb1 else None
    kb2 = _load(args.kb2) if args.kb2 else None
    gold = _maybe_gold(args.gold)
    obs = _make_obs(args)
    try:
        report = Pipeline.run(spec, kb1, kb2, gold=gold, obs=obs)
    except SpecError as exc:
        print(f"cannot run spec: {exc}")
        return 2
    print(f"spec {os.path.basename(args.spec)} → cache key {report.spec_key[:16]}…\n")
    _print_report(report, args.out)
    _finish_obs(obs, args)
    return 0


#: the execution backends with their BackendSpec knobs — not registry
#: components (they have no factory), so ``components`` lists them as
#: their own section
_BACKEND_ROWS = [
    {
        "backend": "sequential",
        "spec knobs": "—",
        "description": "in-process batch pipeline (the reference path)",
    },
    {
        "backend": "mapreduce",
        "spec knobs": "workers, executor, formulation",
        "description": "parallel meta-blocking via MapReduce jobs",
    },
    {
        "backend": "stream",
        "spec knobs": "scenario, processed_view, reconcile_every, seed, "
        "query_budget, query_pruner, durability_dir, snapshot_every",
        "description": "workload replay through the streaming resolver",
    },
    {
        "backend": "sql",
        "spec knobs": "engine, db_path, workers",
        "description": "pipeline compiled to SQL (sqlite or DuckDB), "
        "optionally out of core via db_path",
    },
]


def cmd_components(args: argparse.Namespace) -> int:
    if args.kind != "backends":
        rows = registry.describe(args.kind)
        print(
            format_table(
                rows,
                title="Registered components"
                + (f": {args.kind}" if args.kind else ""),
                first_column="kind",
            )
        )
    if args.kind in (None, "backends"):
        if args.kind is None:
            print()
        print(
            format_table(
                _BACKEND_ROWS,
                title="Execution backends (PipelineSpec `backend` node)",
                first_column="backend",
            )
        )
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    """`repro sql explain`: print the compiled plans, stage by stage."""
    import json

    from repro.api import SpecError
    from repro.sqlbackend import SqlBackendError, SqlMetaBlocker

    overrides = _backend_overrides(args)
    if overrides is None:
        return 2
    overrides["kind"] = "sql"
    try:
        spec = PipelineSpec.load(args.spec).with_backend(**overrides)
    except FileNotFoundError:
        print(f"spec file not found: {args.spec}")
        return 2
    except json.JSONDecodeError as exc:
        print(f"spec file {args.spec} is not valid JSON: {exc}")
        return 2
    except SpecError as exc:
        print(f"invalid spec {args.spec}: {exc}")
        return 2
    kb1 = _load(args.kb1) if args.kb1 else None
    kb2 = _load(args.kb2) if args.kb2 else None
    if kb1 is None:
        if spec.data is None:
            print("no input data: pass --kb1 or give the spec a data node")
            return 2
        kb1, kb2, _ = spec.data.resolve()
    backend = spec.backend
    pipeline = Pipeline(spec)
    blocks = pipeline.blocker.build(kb1, kb2)
    try:
        with SqlMetaBlocker(
            engine=backend.engine,
            db_path=backend.db_path,
            workers=backend.workers,
        ) as blocker:
            blocker.prepare(blocks, pipeline.purging, pipeline.filtering)
            blocker.weight(pipeline.scheme)
            blocker.prune(pipeline.pruner)
            plans = blocker.plans
            stats = dict(blocker.stats)
    except SqlBackendError as exc:
        print(f"cannot compile spec to SQL: {exc}")
        return 2
    print(
        f"spec {os.path.basename(args.spec)} on engine {backend.engine}: "
        f"{stats.get('blocks', 0)} blocks, {stats.get('placements', 0)} "
        f"placements, {stats.get('pairs', 0)} pairs"
    )
    for stage, entries in plans.items():
        print(f"\n== stage: {stage} ({len(entries)} statement(s)) ==")
        for sql_text, plan_lines in entries:
            summary = " ".join(sql_text.split())
            if len(summary) > 100:
                summary = summary[:97] + "..."
            print(f"\n  {summary}")
            for line in plan_lines:
                print(f"    | {line}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    profile = CENTER_PROFILE if args.regime == "center" else PERIPHERY_PROFILE
    config = SyntheticConfig(
        entities=args.entities, overlap=args.overlap, seed=args.seed, profile=profile
    )
    dataset = synthesize_pair(config)
    os.makedirs(args.out_dir, exist_ok=True)

    def write_kb(collection: EntityCollection, filename: str) -> str:
        triples = [
            Triple(d.uri, prop, value, is_literal=not value.startswith("http"))
            for d in collection
            for prop, value in d.pairs()
        ]
        path = os.path.join(args.out_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_ntriples(triples))
        return path

    paths = [
        write_kb(dataset.kb1, "kb1.nt"),
        write_kb(dataset.kb2, "kb2.nt"),
    ]
    gold_path = os.path.join(args.out_dir, "gold.csv")
    save_gold_csv(dataset.gold, gold_path)
    paths.append(gold_path)
    print(
        format_table(
            [
                dict(artifact=os.path.basename(p), path=p)
                for p in paths
            ],
            title=(
                f"Synthesized {args.regime} workload: "
                f"{len(dataset.kb1)}+{len(dataset.kb2)} descriptions, "
                f"{len(dataset.gold.matches)} matches"
            ),
            first_column="artifact",
        )
    )
    return 0


def _stream_recover_only(args: argparse.Namespace) -> int:
    """Rebuild + summarize the state in ``--recover-dir``."""
    from repro.stream.durability import recover

    try:
        result = recover(args.recover_dir)
    except FileNotFoundError as error:
        print(error)
        return 1
    report = result.report
    rows = [
        {"metric": "live descriptions", "value": str(len(result.store))},
        {"metric": "blocking keys", "value": str(len(result.index))},
        {"metric": "pairs tracked", "value": str(len(result.pairs))},
        {"metric": "WAL records", "value": str(report.wal_records)},
        {"metric": "snapshot LSN", "value": str(report.snapshot_lsn)},
        {"metric": "events replayed", "value": str(report.replayed_events)},
    ]
    if result.view is not None:
        rows.append(
            {"metric": "view threshold", "value": str(result.view.threshold)}
        )
    print(
        format_table(
            rows,
            title=f"Recovered streaming state: {args.recover_dir}",
            first_column="metric",
        )
    )
    return 0


def _stream_crash_harness(args: argparse.Namespace, kb1, kb2) -> int:
    """Kill a durable replay at event N; verify recovery equivalence."""
    from repro.stream.durability import Durability, capture_state, recover
    from repro.stream.resolver import StreamResolver
    from repro.stream.workload import WorkloadDriver

    directory = args.recover_dir
    use_view = args.processed_view or args.reconcile_interval is not None
    pruner = args.pruning
    if pruner.lower().startswith("reciprocal"):
        pruner = pruner[len("Reciprocal"):]

    generator = registry.factory("scenario", args.scenario)
    events = generator(kb1, kb2, seed=args.seed)
    prefix = events[: min(args.crash_at, len(events))]

    def replay(durability=None) -> StreamResolver:
        resolver = StreamResolver(
            clean_clean=kb2 is not None,
            threshold=args.threshold,
            processed_view=use_view,
            durability=durability,
        )
        WorkloadDriver(resolver).run(
            prefix,
            scenario=args.scenario,
            scheme=args.weighting,
            pruner=pruner,
            budget=args.budget,
        )
        return resolver

    durable = replay(
        Durability(
            directory,
            fsync_every=args.fsync_every,
            snapshot_every=args.snapshot_every,
        )
    )
    assert durable.durability is not None
    durable.durability.abandon()  # die without the clean-shutdown sync

    recovered = recover(directory)
    reference = replay()
    equivalent = capture_state(
        recovered.store,
        recovered.index,
        recovered.pairs,
        recovered.view,
        recovered.view_pairs,
    ) == capture_state(
        reference.store,
        reference.index,
        reference.pairs,
        reference.view,
        reference.view_pairs,
    )
    report = recovered.report
    print(
        format_table(
            [
                {"metric": "events replayed before crash", "value": str(len(prefix))},
                {"metric": "WAL records", "value": str(report.wal_records)},
                {"metric": "snapshot LSN", "value": str(report.snapshot_lsn)},
                {"metric": "events replayed at recovery",
                 "value": str(report.replayed_events)},
            ],
            title=f"Crash harness: {args.scenario} @ event {len(prefix)}",
            first_column="metric",
        )
    )
    print(f"recovery equivalence: {'OK' if equivalent else 'FAIL'}")
    return 0 if equivalent else 1


def cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream.workload import graceful_sigterm

    if args.crash_at is not None and not args.recover_dir:
        print("--crash-at requires --recover-dir (the durability directory)")
        return 1
    if (args.trace_dir or args.metrics) and args.crash_at is not None:
        print("--trace-dir/--metrics need a live replay; the crash harness "
              "replays twice and would interleave their telemetry")
        return 1
    if not args.kb1:
        if args.recover_dir and args.crash_at is None:
            return _stream_recover_only(args)
        print("--kb1 is required (except with --recover-dir alone)")
        return 1

    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None

    if args.crash_at is not None:
        return _stream_crash_harness(args, kb1, kb2)

    use_view = args.processed_view or args.reconcile_interval is not None
    intervals: list[int | None] = [None]
    if use_view:
        intervals = []
        for token in (args.reconcile_interval or "adaptive").split(","):
            token = token.strip()
            if not token or token == "adaptive":
                intervals.append(None)
                continue
            try:
                parsed = int(token)
            except ValueError:
                print(
                    f"invalid reconcile interval {token!r}: expected "
                    "'adaptive' or an integer >= 1"
                )
                return 1
            if parsed < 1:
                print(f"reconcile interval must be >= 1, got {parsed}")
                return 1
            intervals.append(parsed)

    if args.durability_dir and len(intervals) > 1:
        print("--durability-dir cannot be combined with a reconcile-interval "
              "sweep: each replay would overwrite the same WAL")
        return 1
    if (args.trace_dir or args.metrics) and len(intervals) > 1:
        print("--trace-dir/--metrics cannot be combined with a reconcile-"
              "interval sweep: the replays would interleave one telemetry "
              "stream")
        return 1

    base = PipelineSpec.from_dict(
        {
            "weighting": args.weighting,
            "matching": {
                "matcher": {
                    "name": "threshold",
                    "params": {"threshold": args.threshold},
                },
            },
            "backend": {
                "kind": "stream",
                "scenario": args.scenario,
                "seed": args.seed,
                "query_budget": args.budget,
                "query_pruner": args.pruning,
                "processed_view": use_view,
                "durability_dir": args.durability_dir,
                "snapshot_every": (
                    args.snapshot_every if args.durability_dir else None
                ),
            },
        }
    )
    obs = _make_obs(args)
    interrupted = False
    term_signal = None
    # SIGTERM (systemd stop, Kubernetes eviction, CI cancellation) takes
    # the same graceful path as Ctrl-C: the driver returns the partial
    # stats, the WAL is closed cleanly, and the exit code says which
    # signal it was (143 vs 130).
    with graceful_sigterm() as term:
        for interval in intervals:
            spec = base.with_backend(reconcile_every=interval)
            # Replay-only execution: the workload statistics are the
            # subcommand's product; the batch bridge + matching stages
            # are `repro run --backend stream`'s job.
            report = Pipeline(spec, obs=obs).execute(
                kb1, kb2, stream_bridge=False
            )
            stats = report.workload
            if stats.interrupted and term.name:
                stats.interrupt_signal = term.name
            title = (
                f"Streaming workload: {args.scenario} "
                f"({args.weighting}/{args.pruning})"
            )
            if use_view:
                label = "adaptive" if interval is None else str(interval)
                title += f" — processed view, reconcile interval {label}"
            print(
                format_table(
                    stats.summary_rows(),
                    title=title,
                    first_column="metric",
                )
            )
            if stats.interrupted:
                # Signal mid-replay: the table above covers the executed
                # prefix and the WAL was closed cleanly by the runner.
                interrupted = True
                term_signal = term.name
                break
    # The runner already flushed the telemetry snapshot before closing
    # the WAL, so an interrupted replay reaches this close with its
    # trace and metrics safely on disk.
    _finish_obs(obs, args)
    if interrupted:
        return 143 if term_signal == "SIGTERM" else 130
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import Router, verify_equivalence
    from repro.serving.harness import parse_fault, run_open_loop, spawn_budgets

    try:
        faults = [parse_fault(spec) for spec in args.fault]
    except ValueError as error:
        print(error)
        return 1
    for fault in faults:
        if not 0 <= fault.shard < args.shards:
            print(f"fault {fault.spec()} targets shard {fault.shard}, "
                  f"but the tier has shards 0..{args.shards - 1}")
            return 1
    if any(f.kind == "torn" for f in faults) and not args.durability_root:
        print("torn faults need --durability-root (they tear the WAL)")
        return 1

    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    generator = registry.factory("scenario", args.scenario)
    events = generator(kb1, kb2, seed=args.seed)
    if args.max_events is not None:
        events = events[: args.max_events]

    obs = _make_obs(args)
    router = Router(
        args.shards,
        clean_clean=kb2 is not None,
        threshold=args.threshold,
        scheme=args.weighting,
        pruner=args.pruning,
        budget=args.budget,
        durability_root=args.durability_root,
        failover=not args.no_failover,
        auto_respawn=not args.no_respawn,
        heartbeat_deadline_s=args.heartbeat_deadline,
        crash_budgets=spawn_budgets(faults),
        obs=obs,
        seed=args.seed,
    )
    try:
        report = run_open_loop(
            router, events, rate_eps=args.rate, ramp_s=args.ramp,
            faults=faults,
        )
        print(
            format_table(
                report.period_rows(),
                title=(
                    f"Open-loop load: {args.scenario} @ {args.rate:g} ev/s "
                    f"over {args.shards} shards "
                    f"(achieved {report.achieved_eps:.0f} ev/s)"
                ),
                first_column="period",
            )
        )
        for spec, at in report.fault_log:
            print(f"fault fired: {spec} at t={at:.2f}s")
        for shard_id, event, at in router.supervisor.events:
            rel = at - report.start_monotonic
            print(f"shard {shard_id}: {event} at t={rel:.2f}s")
        print(
            format_table(
                router.stats.summary_rows(),
                title="Serving tier statistics",
                first_column="metric",
            )
        )

        # "After recovery" starts at the last respawned shard's go-live;
        # with no deaths the whole run counts.
        recovered_at = max(
            (at - report.start_monotonic
             for _, event, at in router.supervisor.events if event == "live"),
            default=0.0,
        )
        degraded_after = report.degraded_after(recovered_at)
        print(f"degraded queries: {degraded_after} after recovery "
              f"({report.degraded_queries} total)")

        ok = True
        if args.verify > 0:
            sample = [
                (event.description, event.source)
                for event in events
                if event.kind == "query"
            ][: args.verify] or [
                (event.description, event.source)
                for event in events
                if event.kind == "insert"
            ][: args.verify]
            verdict = verify_equivalence(router, sample)
            print(f"recovery equivalence: {'OK' if verdict.ok else 'FAIL'} "
                  f"({verdict.checked} queries checked)")
            for mismatch in verdict.mismatches[:5]:
                print(f"  mismatch: {mismatch}")
            ok = verdict.ok
    finally:
        router.close()
    _finish_obs(obs, args)
    return 0 if ok else 1


def cmd_mapreduce(args: argparse.Namespace) -> int:
    from repro.mapreduce import ProcessExecutor

    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None

    executors = (
        ["serial", "process"] if args.executor == "both" else [args.executor]
    )
    if "process" in executors and not ProcessExecutor.available():
        print("process executor unavailable on this platform; using serial only")
        executors = [e for e in executors if e != "process"]
        if not executors:
            return 1
    formulations = (
        ["string", "int"] if args.formulation == "both" else [args.formulation]
    )
    if "int" in formulations:
        try:
            import numpy  # noqa: F401
        except ImportError:
            print("numpy unavailable: the int-ID formulation is disabled")
            formulations = [f for f in formulations if f != "int"]
            if not formulations:
                return 1

    base = PipelineSpec.from_dict(
        {
            "weighting": args.weighting,
            "pruning": args.pruning,
            "backend": {"kind": "mapreduce"},
        }
    )
    rows = []
    base_wall: dict[tuple[str, str], float] = {}
    obs = _make_obs(args)
    # Blocking is identical across cells: build once, reuse per cell so
    # the sweep times only the meta-blocking stage.
    _, processed_blocks = Pipeline(base, obs=obs).block(kb1, kb2)
    for formulation in formulations:
        for executor in executors:
            for workers in args.workers:
                spec = base.with_backend(
                    workers=workers, executor=executor, formulation=formulation
                )
                report = Pipeline(spec, obs=obs).execute(
                    kb1, kb2, match=False, processed_blocks=processed_blocks
                )
                elapsed = report.phase_seconds["metablock_s"]
                metrics = report.job_metrics
                group = (formulation, executor)
                base_wall.setdefault(group, elapsed)
                rows.append(
                    {
                        "formulation": formulation,
                        "executor": executor,
                        "workers": str(workers),
                        "wall ms": f"{elapsed * 1e3:.1f}",
                        "speedup": f"{base_wall[group] / elapsed:.2f}x",
                        "critical path": str(
                            sum(m.critical_path_cost for m in metrics)
                        ),
                        "shuffle records": str(
                            sum(m.shuffle_records for m in metrics)
                        ),
                        "shuffle KiB": f"{sum(m.shuffle_bytes for m in metrics) / 1024:.0f}",
                        "edges": str(len(report.edges)),
                    }
                )
    print(
        format_table(
            rows,
            title=(
                f"MapReduce meta-blocking sweep "
                f"({args.weighting}/{args.pruning}, "
                f"{len(processed_blocks) if processed_blocks is not None else 0} blocks)"
            ),
            first_column="formulation",
        )
    )
    print(
        "\nspeedup is measured wall clock vs the first worker count of the "
        "same (formulation, executor); serial wall time simulates, the "
        "process executor actually parallelizes."
    )
    _finish_obs(obs, args)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import TraceSchemaError
    from repro.obs.report import render_report

    try:
        print(render_report(args.directory))
    except FileNotFoundError as error:
        print(error)
        return 1
    except TraceSchemaError as error:
        print(f"malformed trace in {args.directory}: {error}")
        return 1
    return 0


#: which optional flags each workflow actually consumes — anything else
#: explicitly supplied is an error, not a silent no-op
_WORKFLOW_FLAGS = {
    "blocking": frozenset(),
    "metablocking": frozenset(),
    "progressive": frozenset({"budget", "threshold", "seed"}),
    "budgets": frozenset({"budgets", "threshold"}),
}


def cmd_workflow(args: argparse.Namespace) -> int:
    from repro.core.evidence_matcher import NeighborAwareMatcher
    from repro.matching.matcher import ThresholdMatcher
    from repro.matching.similarity import SimilarityIndex
    from repro.workflows import (
        compare_blocking_methods,
        compare_progressive_strategies,
        sweep_budgets,
        sweep_metablocking,
    )

    used = _WORKFLOW_FLAGS[args.name]
    for flag in ("budget", "budgets", "threshold", "seed"):
        if getattr(args, flag) is not None and flag not in used:
            applies_to = sorted(
                name for name, flags in _WORKFLOW_FLAGS.items() if flag in flags
            )
            hint = f" (it applies to: {', '.join(applies_to)})" if applies_to else ""
            print(f"--{flag} is not used by the {args.name!r} workflow{hint}")
            return 2
    budget = args.budget if args.budget is not None else 1000
    budgets = args.budgets if args.budgets is not None else [100, 500, 1000]
    threshold = args.threshold if args.threshold is not None else 0.4
    seed = args.seed if args.seed is not None else 7

    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    gold = load_gold_csv(args.gold)
    if args.name == "blocking":
        report = compare_blocking_methods(kb1, kb2, gold)
        first = "method"
    elif args.name == "metablocking":
        report = sweep_metablocking(kb1, kb2, gold)
        first = "weighting"
    elif args.name == "progressive":
        collections = [kb1] if kb2 is None else [kb1, kb2]
        index = SimilarityIndex(collections)
        matcher = NeighborAwareMatcher(
            ThresholdMatcher(index, threshold=threshold)
        )
        report = compare_progressive_strategies(
            kb1, kb2, gold, matcher, budget=budget, seed=seed
        )
        first = "strategy"
    else:
        report = sweep_budgets(
            kb1, kb2, gold, budgets=budgets,
            spec=PipelineSpec.from_dict(
                {
                    "matching": {
                        "matcher": {
                            "name": "threshold",
                            "params": {"threshold": threshold},
                        }
                    }
                }
            ),
        )
        first = "budget"
    print(format_table(report.rows, title=report.title, first_column=first))
    return 0


_COMMANDS = {
    "stats": cmd_stats,
    "block": cmd_block,
    "resolve": cmd_resolve,
    "run": cmd_run,
    "sql": cmd_sql,
    "components": cmd_components,
    "stream": cmd_stream,
    "serve": cmd_serve,
    "mapreduce": cmd_mapreduce,
    "obs": cmd_obs,
    "synthesize": cmd_synthesize,
    "workflow": cmd_workflow,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
