"""Command-line interface to the MinoanER platform.

Four subcommands cover the adoption path end to end::

    python -m repro stats      KB.nt [KB2.nt]        # shape diagnosis
    python -m repro block      --kb1 A.nt --kb2 B.nt [--gold G.csv]
    python -m repro resolve    --kb1 A.nt [--kb2 B.nt] [--gold G.csv]
                               [--budget N] [--benefit MODEL] [--out M.csv]
    python -m repro stream     --kb1 A.nt [--kb2 B.nt]
                               [--scenario uniform|bursty|skewed]
                               [--processed-view]
                               [--reconcile-interval adaptive|K[,K2,...]]
    python -m repro mapreduce  --kb1 A.nt [--kb2 B.nt] [--workers 1 2 4]
                               [--executor serial|process|both]
                               [--formulation int|string|both]
    python -m repro synthesize --entities N --profile center|periphery
                               --out-dir DIR

``stats`` reports collection statistics plus the LOD-regime analysis of
:mod:`repro.analysis`; ``block`` evaluates the blocking stage; ``resolve``
runs the full pipeline and optionally writes the matched pairs as CSV;
``synthesize`` materializes a synthetic workload as N-Triples + gold CSV
for experimentation with external tools.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from typing import Sequence

from repro.analysis import interlinking_density, match_regime, vocabulary_overlap
from repro.blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    QGramsBlocking,
    TokenBlocking,
)
from repro.core.budget import CostBudget
from repro.core.benefit import BENEFITS
from repro.core.pipeline import MinoanER
from repro.datasets.gold import GoldStandard, load_gold_csv, save_gold_csv
from repro.datasets.synthetic import (
    CENTER_PROFILE,
    PERIPHERY_PROFILE,
    SyntheticConfig,
    synthesize_pair,
)
from repro.evaluation.metrics import evaluate_blocks, evaluate_matches
from repro.evaluation.reporting import format_table
from repro.metablocking.pruning import PRUNERS
from repro.metablocking.weighting import SCHEMES
from repro.model.collection import EntityCollection
from repro.rdf.loader import load_collection
from repro.rdf.ntriples import Triple, serialize_ntriples

_BLOCKERS = {
    "token": TokenBlocking,
    "attribute-clustering": AttributeClusteringBlocking,
    "prefix-infix-suffix": PrefixInfixSuffixBlocking,
    "qgrams": QGramsBlocking,
}


def _positive_int(value: str) -> int:
    """Argparse type: an integer >= 1 (worker counts)."""
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MinoanER: progressive entity resolution in the Web of Data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="collection statistics and LOD-regime analysis")
    stats.add_argument("kb1", help="first KB (.nt or .ttl)")
    stats.add_argument("kb2", nargs="?", help="optional second KB")
    stats.add_argument("--gold", help="gold CSV (enables match-regime analysis)")

    block = sub.add_parser("block", help="run and evaluate the blocking stage")
    block.add_argument("--kb1", required=True)
    block.add_argument("--kb2")
    block.add_argument("--gold", help="gold CSV for PC/PQ/RR")
    block.add_argument(
        "--method", choices=sorted(_BLOCKERS), default="token", help="blocking method"
    )

    resolve = sub.add_parser("resolve", help="run the full MinoanER pipeline")
    resolve.add_argument("--kb1", required=True)
    resolve.add_argument("--kb2")
    resolve.add_argument("--gold", help="gold CSV (evaluation only)")
    resolve.add_argument("--budget", type=int, help="comparison budget (default unlimited)")
    resolve.add_argument(
        "--benefit", choices=sorted(BENEFITS), default="quantity",
        help="benefit model targeted by scheduling",
    )
    resolve.add_argument(
        "--weighting", choices=sorted(SCHEMES), default="ARCS",
        help="meta-blocking weighting scheme",
    )
    resolve.add_argument(
        "--pruning", choices=sorted(PRUNERS), default="CNP",
        help="meta-blocking pruning scheme",
    )
    resolve.add_argument("--threshold", type=float, default=0.4, help="match threshold")
    resolve.add_argument(
        "--no-update", action="store_true", help="disable the update phase"
    )
    resolve.add_argument("--out", help="write matched pairs to this CSV")

    workflow = sub.add_parser(
        "workflow", help="run a canned experiment workflow on your data"
    )
    workflow.add_argument(
        "name",
        choices=("blocking", "metablocking", "progressive", "budgets"),
        help="which workflow to run",
    )
    workflow.add_argument("--kb1", required=True)
    workflow.add_argument("--kb2")
    workflow.add_argument("--gold", required=True)
    workflow.add_argument(
        "--budget", type=int, default=1000,
        help="budget for the progressive workflow",
    )
    workflow.add_argument(
        "--budgets", type=int, nargs="+", default=[100, 500, 1000],
        help="budgets for the budget-sweep workflow",
    )
    workflow.add_argument("--threshold", type=float, default=0.4)

    stream = sub.add_parser(
        "stream", help="replay a streaming arrival+query workload"
    )
    stream.add_argument("--kb1", required=True)
    stream.add_argument("--kb2")
    stream.add_argument(
        "--scenario", choices=("uniform", "bursty", "skewed"), default="uniform",
        help="arrival/query shape replayed against the streaming resolver",
    )
    stream.add_argument(
        "--weighting", choices=sorted(SCHEMES), default="ARCS",
        help="weighting scheme scoring query candidates",
    )
    stream.add_argument(
        "--pruning", choices=("CNP", "WNP", "none"), default="CNP",
        help="local pruning of each query's candidate neighbourhood",
    )
    stream.add_argument("--threshold", type=float, default=0.4, help="match threshold")
    stream.add_argument("--budget", type=int, help="per-query comparison cap")
    stream.add_argument("--seed", type=int, default=17)
    stream.add_argument(
        "--processed-view", action="store_true",
        help="serve queries from the incrementally-maintained processed "
        "(purged+filtered) view instead of the raw index",
    )
    stream.add_argument(
        "--reconcile-interval", default=None,
        help="processed-view reconcile cadence in inserts: 'adaptive' "
        "(the default), an integer, or a comma-separated sweep (each "
        "value replays the workload against a fresh resolver); implies "
        "--processed-view",
    )

    mapreduce = sub.add_parser(
        "mapreduce", help="parallel meta-blocking worker/executor sweep"
    )
    mapreduce.add_argument("--kb1", required=True)
    mapreduce.add_argument("--kb2")
    mapreduce.add_argument(
        "--weighting", choices=sorted(SCHEMES), default="ARCS",
        help="meta-blocking weighting scheme",
    )
    mapreduce.add_argument(
        "--pruning", choices=sorted(PRUNERS), default="CNP",
        help="meta-blocking pruning scheme",
    )
    mapreduce.add_argument(
        "--workers", type=_positive_int, nargs="+", default=[1, 2, 4],
        help="worker counts to sweep (each >= 1)",
    )
    mapreduce.add_argument(
        "--executor", choices=("serial", "process", "both"), default="both",
        help="serial simulates the cluster; process measures real speedup",
    )
    mapreduce.add_argument(
        "--formulation", choices=("int", "string", "both"), default="int",
        help="int-ID record batches vs the string-tuple reference jobs",
    )

    synthesize = sub.add_parser("synthesize", help="generate a synthetic workload")
    synthesize.add_argument("--entities", type=int, default=300)
    synthesize.add_argument("--overlap", type=float, default=0.7)
    synthesize.add_argument(
        "--regime", choices=("center", "periphery"), default="center",
        help="similarity regime of the generated pair",
    )
    synthesize.add_argument("--seed", type=int, default=42)
    synthesize.add_argument("--out-dir", required=True)

    return parser


# -- command implementations -------------------------------------------------


def _load(path: str) -> EntityCollection:
    return load_collection(path)


def _maybe_gold(path: str | None) -> GoldStandard | None:
    return load_gold_csv(path) if path else None


def cmd_stats(args: argparse.Namespace) -> int:
    kb1 = _load(args.kb1)
    rows = [dict(metric=k, value=v) for k, v in kb1.statistics().as_rows()]
    rows.append(dict(metric="interlinking density", value=f"{interlinking_density(kb1):.3f}"))
    print(format_table(rows, title=f"Statistics: {kb1.name}", first_column="metric"))
    if args.kb2:
        kb2 = _load(args.kb2)
        rows = [dict(metric=k, value=v) for k, v in kb2.statistics().as_rows()]
        rows.append(
            dict(metric="interlinking density", value=f"{interlinking_density(kb2):.3f}")
        )
        print()
        print(format_table(rows, title=f"Statistics: {kb2.name}", first_column="metric"))
        overlap = vocabulary_overlap(kb1, kb2)
        print()
        print(
            format_table(
                [
                    dict(metric="shared properties", value=str(overlap.shared_properties)),
                    dict(metric="vocabulary Jaccard", value=f"{overlap.jaccard:.3f}"),
                    dict(
                        metric="proprietary fraction",
                        value=f"{overlap.proprietary_fraction:.3f}",
                    ),
                ],
                title="Vocabulary overlap",
                first_column="metric",
            )
        )
        if args.gold:
            gold = load_gold_csv(args.gold)
            regime = match_regime(kb1, kb2, gold)
            print()
            print(
                format_table(
                    [
                        dict(metric="gold matches", value=str(regime.pair_count)),
                        dict(metric="mean match Jaccard", value=f"{regime.mean_jaccard:.3f}"),
                        dict(
                            metric="low-evidence matches",
                            value=f"{regime.low_evidence_pairs}/{regime.pair_count}",
                        ),
                        dict(metric="regime", value=regime.regime),
                    ],
                    title="Match-similarity regime",
                    first_column="metric",
                )
            )
    return 0


def cmd_block(args: argparse.Namespace) -> int:
    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    blocker = _BLOCKERS[args.method]()
    blocks = blocker.build(kb1, kb2)
    gold = _maybe_gold(args.gold)
    if gold is not None:
        quality = evaluate_blocks(
            blocks, gold, len(kb1), len(kb2) if kb2 is not None else None
        )
        row = {"method": blocker.name}
        row.update(quality.as_row())
        print(format_table([row], title="Blocking quality", first_column="method"))
    else:
        print(
            format_table(
                [
                    {
                        "method": blocker.name,
                        "blocks": str(len(blocks)),
                        "comparisons": str(blocks.total_comparisons()),
                        "entities": str(blocks.entity_count()),
                    }
                ],
                title="Blocking summary",
                first_column="method",
            )
        )
    return 0


def cmd_resolve(args: argparse.Namespace) -> int:
    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    gold = _maybe_gold(args.gold)
    platform = MinoanER(
        budget=CostBudget(args.budget),
        weighting=args.weighting,
        pruning=args.pruning,
        benefit=args.benefit,
        match_threshold=args.threshold,
        update_phase=not args.no_update,
    )
    result = platform.resolve(kb1, kb2, gold=gold)
    print(
        format_table(
            [dict(stage=k, value=v) for k, v in result.summary().items()],
            title="Pipeline summary",
            first_column="stage",
        )
    )
    if gold is not None:
        quality = evaluate_matches(result.matched_pairs(), gold)
        print()
        print(format_table([quality.as_row()], title="Matching quality"))
    if args.out:
        with open(args.out, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["uri1", "uri2"])
            for left, right in sorted(result.matched_pairs()):
                writer.writerow([left, right])
        print(f"\nmatches written to {args.out}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    profile = CENTER_PROFILE if args.regime == "center" else PERIPHERY_PROFILE
    config = SyntheticConfig(
        entities=args.entities, overlap=args.overlap, seed=args.seed, profile=profile
    )
    dataset = synthesize_pair(config)
    os.makedirs(args.out_dir, exist_ok=True)

    def write_kb(collection: EntityCollection, filename: str) -> str:
        triples = [
            Triple(d.uri, prop, value, is_literal=not value.startswith("http"))
            for d in collection
            for prop, value in d.pairs()
        ]
        path = os.path.join(args.out_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_ntriples(triples))
        return path

    paths = [
        write_kb(dataset.kb1, "kb1.nt"),
        write_kb(dataset.kb2, "kb2.nt"),
    ]
    gold_path = os.path.join(args.out_dir, "gold.csv")
    save_gold_csv(dataset.gold, gold_path)
    paths.append(gold_path)
    print(
        format_table(
            [
                dict(artifact=os.path.basename(p), path=p)
                for p in paths
            ],
            title=(
                f"Synthesized {args.regime} workload: "
                f"{len(dataset.kb1)}+{len(dataset.kb2)} descriptions, "
                f"{len(dataset.gold.matches)} matches"
            ),
            first_column="artifact",
        )
    )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream import StreamResolver, WorkloadDriver
    from repro.stream.workload import SCENARIOS

    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None

    use_view = args.processed_view or args.reconcile_interval is not None
    intervals: list[int | None] = [None]
    if use_view:
        intervals = []
        for token in (args.reconcile_interval or "adaptive").split(","):
            token = token.strip()
            if not token or token == "adaptive":
                intervals.append(None)
                continue
            try:
                parsed = int(token)
            except ValueError:
                print(
                    f"invalid reconcile interval {token!r}: expected "
                    "'adaptive' or an integer >= 1"
                )
                return 1
            if parsed < 1:
                print(f"reconcile interval must be >= 1, got {parsed}")
                return 1
            intervals.append(parsed)

    for interval in intervals:
        resolver = StreamResolver(
            clean_clean=kb2 is not None,
            threshold=args.threshold,
            processed_view=use_view,
            reconcile_every=interval,
        )
        events = SCENARIOS[args.scenario](kb1, kb2, seed=args.seed)
        stats = WorkloadDriver(resolver).run(
            events,
            scenario=args.scenario,
            scheme=args.weighting,
            pruner=args.pruning,
            budget=args.budget,
        )
        title = (
            f"Streaming workload: {args.scenario} "
            f"({args.weighting}/{args.pruning})"
        )
        if use_view:
            label = "adaptive" if interval is None else str(interval)
            title += f" — processed view, reconcile interval {label}"
        print(
            format_table(
                stats.summary_rows(),
                title=title,
                first_column="metric",
            )
        )
    return 0


def cmd_mapreduce(args: argparse.Namespace) -> int:
    import time

    from repro.blocking import BlockFiltering, BlockPurging
    from repro.mapreduce import (
        MapReduceEngine,
        ProcessExecutor,
        parallel_metablocking,
        parallel_metablocking_ids,
    )
    from repro.metablocking.pruning import make_pruner
    from repro.metablocking.weighting import make_scheme

    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    raw = TokenBlocking().build(kb1, kb2)
    blocks = BlockFiltering().process(BlockPurging().process(raw))

    executors = (
        ["serial", "process"] if args.executor == "both" else [args.executor]
    )
    if "process" in executors and not ProcessExecutor.available():
        print("process executor unavailable on this platform; using serial only")
        executors = [e for e in executors if e != "process"]
        if not executors:
            return 1
    formulations = (
        ["string", "int"] if args.formulation == "both" else [args.formulation]
    )
    if "int" in formulations:
        try:
            import numpy  # noqa: F401
        except ImportError:
            print("numpy unavailable: the int-ID formulation is disabled")
            formulations = [f for f in formulations if f != "int"]
            if not formulations:
                return 1

    rows = []
    base_wall: dict[tuple[str, str], float] = {}
    for formulation in formulations:
        runner = (
            parallel_metablocking_ids if formulation == "int" else parallel_metablocking
        )
        for executor in executors:
            for workers in args.workers:
                with MapReduceEngine(workers=workers, executor=executor) as engine:
                    started = time.perf_counter()
                    edges, metrics = runner(
                        engine,
                        blocks,
                        make_scheme(args.weighting),
                        make_pruner(args.pruning),
                    )
                    elapsed = time.perf_counter() - started
                group = (formulation, executor)
                base_wall.setdefault(group, elapsed)
                rows.append(
                    {
                        "formulation": formulation,
                        "executor": executor,
                        "workers": str(workers),
                        "wall ms": f"{elapsed * 1e3:.1f}",
                        "speedup": f"{base_wall[group] / elapsed:.2f}x",
                        "critical path": str(
                            sum(m.critical_path_cost for m in metrics)
                        ),
                        "shuffle records": str(
                            sum(m.shuffle_records for m in metrics)
                        ),
                        "shuffle KiB": f"{sum(m.shuffle_bytes for m in metrics) / 1024:.0f}",
                        "edges": str(len(edges)),
                    }
                )
    print(
        format_table(
            rows,
            title=(
                f"MapReduce meta-blocking sweep "
                f"({args.weighting}/{args.pruning}, {len(blocks)} blocks)"
            ),
            first_column="formulation",
        )
    )
    print(
        "\nspeedup is measured wall clock vs the first worker count of the "
        "same (formulation, executor); serial wall time simulates, the "
        "process executor actually parallelizes."
    )
    return 0


def cmd_workflow(args: argparse.Namespace) -> int:
    from repro.core.evidence_matcher import NeighborAwareMatcher
    from repro.matching.matcher import ThresholdMatcher
    from repro.matching.similarity import SimilarityIndex
    from repro.workflows import (
        compare_blocking_methods,
        compare_progressive_strategies,
        sweep_budgets,
        sweep_metablocking,
    )

    kb1 = _load(args.kb1)
    kb2 = _load(args.kb2) if args.kb2 else None
    gold = load_gold_csv(args.gold)
    if args.name == "blocking":
        report = compare_blocking_methods(kb1, kb2, gold)
        first = "method"
    elif args.name == "metablocking":
        report = sweep_metablocking(kb1, kb2, gold)
        first = "weighting"
    elif args.name == "progressive":
        collections = [kb1] if kb2 is None else [kb1, kb2]
        index = SimilarityIndex(collections)
        matcher = NeighborAwareMatcher(
            ThresholdMatcher(index, threshold=args.threshold)
        )
        report = compare_progressive_strategies(
            kb1, kb2, gold, matcher, budget=args.budget
        )
        first = "strategy"
    else:
        report = sweep_budgets(
            kb1, kb2, gold, budgets=args.budgets,
            platform=MinoanER(match_threshold=args.threshold),
        )
        first = "budget"
    print(format_table(report.rows, title=report.title, first_column=first))
    return 0


_COMMANDS = {
    "stats": cmd_stats,
    "block": cmd_block,
    "resolve": cmd_resolve,
    "stream": cmd_stream,
    "mapreduce": cmd_mapreduce,
    "synthesize": cmd_synthesize,
    "workflow": cmd_workflow,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
