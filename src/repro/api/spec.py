"""Declarative pipeline specification.

A :class:`PipelineSpec` is the serializable description of one end-to-end
entity-resolution run: blocking → post-processing → weighting → pruning →
matching → evaluation, plus a ``backend`` node selecting *how* the plan
executes (``sequential`` | ``mapreduce`` | ``stream``).  Any scheme ×
pruner × blocker × backend combination is one plain object that

* **validates eagerly** — every component name is resolved against the
  :mod:`~repro.api.registry` at construction, every parameter checked
  against the component's introspected signature, so a typo fails at
  spec-build time, not mid-run;
* **round-trips exactly** — ``spec == PipelineSpec.from_dict(spec.to_dict())``
  and the same through JSON;
* **hashes stably** — :meth:`PipelineSpec.cache_key` digests the
  canonical JSON form, giving sweeps and caches a stable identity.

The same spec runs on every backend with bit-identical pruned edges and
match decisions (gated in ``tests/api/``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.api.registry import InvalidParamsError, registry


class SpecError(ValueError):
    """An eagerly-detected problem in a pipeline spec."""


def _freeze(value):
    """Canonicalize a params value for hashing/equality (dicts sorted)."""
    if isinstance(value, dict):
        return {key: _freeze(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_freeze(item) for item in value]
    return value


@dataclass(frozen=True)
class ComponentSpec:
    """One component reference: registered name + constructor params."""

    name: str
    params: dict = field(default_factory=dict)

    def validated(self, kind: str) -> "ComponentSpec":
        """Resolve against the registry; returns a canonicalized copy.

        Raises:
            SpecError: unknown name (listing registered alternatives) or
                parameters outside the component's signature.
        """
        try:
            info = registry.get(kind, self.name)
        except KeyError as exc:
            raise SpecError(str(exc.args[0])) from None
        params = _freeze(self.params or {})
        allowed = {p.name for p in info.spec_params()}
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise SpecError(
                f"{kind} {info.name!r} got unknown parameter(s) "
                f"{', '.join(map(repr, unknown))}; allowed: "
                f"{', '.join(sorted(allowed)) or '(none)'}"
            )
        try:
            info.validate_params(params)
        except InvalidParamsError as exc:
            raise SpecError(str(exc)) from None
        return ComponentSpec(info.name, params)

    def build(self, kind: str, **runtime):
        """Instantiate via the registry, merging runtime-only params."""
        merged = dict(self.params)
        merged.update(runtime)
        return registry.create(kind, self.name, merged)

    def to_dict(self) -> dict:
        """Plain-dict form (name-only components collapse to a string)."""
        if not self.params:
            return {"name": self.name}
        return {"name": self.name, "params": _freeze(self.params)}

    @classmethod
    def from_value(cls, value, default: "ComponentSpec | None" = None):
        """Coerce a string / dict / ComponentSpec / None into a spec."""
        if value is None:
            return default
        if isinstance(value, ComponentSpec):
            return value
        if isinstance(value, str):
            return cls(value)
        if isinstance(value, dict):
            try:
                name = value["name"]
            except KeyError:
                raise SpecError(
                    f"component dict needs a 'name' key, got {sorted(value)!r}"
                ) from None
            extra = set(value) - {"name", "params"}
            if extra:
                raise SpecError(
                    f"component dict has unknown key(s) {sorted(extra)!r}"
                )
            return cls(name, dict(value.get("params") or {}))
        raise SpecError(f"cannot interpret {value!r} as a component spec")


@dataclass(frozen=True)
class BlockingSpec:
    """The blocking stage: key extraction plus block post-processing."""

    blocker: ComponentSpec = field(default_factory=lambda: ComponentSpec("token"))
    #: block purging, or ``None`` to skip the stage
    purging: ComponentSpec | None = field(
        default_factory=lambda: ComponentSpec("purging")
    )
    #: block filtering, or ``None`` to skip the stage
    filtering: ComponentSpec | None = field(
        default_factory=lambda: ComponentSpec("filtering")
    )

    def validated(self) -> "BlockingSpec":
        return BlockingSpec(
            blocker=self.blocker.validated("blocker"),
            purging=(
                self.purging.validated("postprocess")
                if self.purging is not None
                else None
            ),
            filtering=(
                self.filtering.validated("postprocess")
                if self.filtering is not None
                else None
            ),
        )

    def to_dict(self) -> dict:
        return {
            "blocker": self.blocker.to_dict(),
            "purging": self.purging.to_dict() if self.purging else None,
            "filtering": self.filtering.to_dict() if self.filtering else None,
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "BlockingSpec":
        data = data or {}
        extra = set(data) - {"blocker", "purging", "filtering"}
        if extra:
            raise SpecError(f"blocking node has unknown key(s) {sorted(extra)!r}")
        return cls(
            blocker=ComponentSpec.from_value(
                data.get("blocker"), ComponentSpec("token")
            ),
            purging=ComponentSpec.from_value(
                data.get("purging"),
                ComponentSpec("purging") if "purging" not in data else None,
            ),
            filtering=ComponentSpec.from_value(
                data.get("filtering"),
                ComponentSpec("filtering") if "filtering" not in data else None,
            ),
        )


@dataclass(frozen=True)
class MatchingSpec:
    """The progressive matching stage (matcher + budget policy)."""

    matcher: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("threshold", {"threshold": 0.4})
    )
    #: total comparison budget; ``None`` = unlimited
    budget: int | None = None
    #: budget policy (benefit model) steering the scheduler
    benefit: ComponentSpec = field(default_factory=lambda: ComponentSpec("quantity"))
    #: neighbour-evidence propagation (the MinoanER update phase)
    update_phase: bool = True
    boost_factor: float = 1.0
    discovery_weight: float = 0.5
    evidence_weight: float = 0.3
    checkpoint_every: int = 10

    def validated(self) -> "MatchingSpec":
        if self.budget is not None and self.budget < 0:
            raise SpecError(f"matching.budget must be >= 0, got {self.budget}")
        if self.checkpoint_every < 1:
            raise SpecError(
                f"matching.checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        return dataclasses.replace(
            self,
            matcher=self.matcher.validated("matcher"),
            benefit=self.benefit.validated("benefit"),
        )

    def to_dict(self) -> dict:
        return {
            "matcher": self.matcher.to_dict(),
            "budget": self.budget,
            "benefit": self.benefit.to_dict(),
            "update_phase": self.update_phase,
            "boost_factor": self.boost_factor,
            "discovery_weight": self.discovery_weight,
            "evidence_weight": self.evidence_weight,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "MatchingSpec":
        data = dict(data or {})
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise SpecError(f"matching node has unknown key(s) {sorted(extra)!r}")
        kwargs = {}
        if "matcher" in data:
            kwargs["matcher"] = ComponentSpec.from_value(data["matcher"])
        if "benefit" in data:
            kwargs["benefit"] = ComponentSpec.from_value(data["benefit"])
        for name in known - {"matcher", "benefit"}:
            if name in data:
                kwargs[name] = data[name]
        return cls(**kwargs)


@dataclass(frozen=True)
class EvaluationSpec:
    """What to evaluate when a gold standard is supplied."""

    #: evaluate blocking PC/PQ/RR against the gold standard
    blocks: bool = True
    #: evaluate final match precision/recall/F1 against the gold standard
    matches: bool = True

    def validated(self) -> "EvaluationSpec":
        return self

    def to_dict(self) -> dict:
        return {"blocks": self.blocks, "matches": self.matches}

    @classmethod
    def from_dict(cls, data: dict | None) -> "EvaluationSpec":
        data = dict(data or {})
        extra = set(data) - {"blocks", "matches"}
        if extra:
            raise SpecError(f"evaluation node has unknown key(s) {sorted(extra)!r}")
        return cls(**data)


BACKEND_KINDS = ("sequential", "mapreduce", "stream", "sql")
MAPREDUCE_EXECUTORS = ("serial", "process")
MAPREDUCE_FORMULATIONS = ("int", "string")
SQL_ENGINES = ("sqlite", "duckdb")


@dataclass(frozen=True)
class BackendSpec:
    """How the plan executes.

    ``sequential`` runs the in-process batch pipeline; ``mapreduce``
    produces the pruned edges through the parallel int-ID (or reference
    string-tuple) MapReduce jobs on *workers* workers; ``stream``
    replays a workload *scenario* through the streaming resolver and
    takes the edges from the batch bridge; ``sql`` compiles purging,
    filtering, weighting and pruning to SQL on *engine* (stdlib sqlite,
    or DuckDB when installed), optionally out of core via *db_path*.
    All four produce bit-identical pruned edges and match decisions for
    the same spec.
    """

    kind: str = "sequential"
    # -- mapreduce ----------------------------------------------------------
    workers: int = 2
    executor: str = "serial"
    formulation: str = "int"
    # -- stream -------------------------------------------------------------
    scenario: ComponentSpec = field(default_factory=lambda: ComponentSpec("uniform"))
    processed_view: bool = False
    #: reconcile cadence in inserts (``None`` = adaptive)
    reconcile_every: int | None = None
    seed: int = 17
    #: per-query comparison cap during scenario replay (``None`` = all)
    query_budget: int | None = None
    #: query-time local pruner override: a registered pruner name or
    #: ``"none"``; ``None`` derives it from the spec's pruning node
    query_pruner: str | None = None
    #: write-ahead log + snapshot directory (``None`` = in-memory only);
    #: with a directory set, the stream backend is crash-recoverable
    durability_dir: str | None = None
    #: snapshot cadence in WAL records (``None`` = WAL only, no snapshots)
    snapshot_every: int | None = None
    # -- sql ----------------------------------------------------------------
    #: relational engine for the ``sql`` backend
    engine: str = "sqlite"
    #: database file for the ``sql`` backend (``None`` = in-memory);
    #: pointing this at disk moves the whole computation out of core
    db_path: str | None = None

    def validated(self) -> "BackendSpec":
        if self.kind not in BACKEND_KINDS:
            raise SpecError(
                f"unknown backend kind {self.kind!r}; "
                f"choose from {', '.join(BACKEND_KINDS)}"
            )
        if self.workers < 1:
            raise SpecError(f"backend.workers must be >= 1, got {self.workers}")
        if self.executor not in MAPREDUCE_EXECUTORS:
            raise SpecError(
                f"unknown mapreduce executor {self.executor!r}; "
                f"choose from {', '.join(MAPREDUCE_EXECUTORS)}"
            )
        if self.formulation not in MAPREDUCE_FORMULATIONS:
            raise SpecError(
                f"unknown mapreduce formulation {self.formulation!r}; "
                f"choose from {', '.join(MAPREDUCE_FORMULATIONS)}"
            )
        if self.engine not in SQL_ENGINES:
            raise SpecError(
                f"unknown sql engine {self.engine!r}; "
                f"choose from {', '.join(SQL_ENGINES)}"
            )
        if self.reconcile_every is not None and self.reconcile_every < 1:
            raise SpecError(
                f"backend.reconcile_every must be >= 1, got {self.reconcile_every}"
            )
        if self.query_budget is not None and self.query_budget < 0:
            raise SpecError(
                f"backend.query_budget must be >= 0, got {self.query_budget}"
            )
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise SpecError(
                f"backend.snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if (
            self.query_pruner is not None
            and self.query_pruner.lower() != "none"
            and not registry.has("pruner", self.query_pruner)
        ):
            registered = ", ".join(registry.names("pruner"))
            raise SpecError(
                f"unknown backend.query_pruner {self.query_pruner!r}; "
                f"choose 'none' or one of: {registered}"
            )
        return dataclasses.replace(
            self, scenario=self.scenario.validated("scenario")
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "executor": self.executor,
            "formulation": self.formulation,
            "scenario": self.scenario.to_dict(),
            "processed_view": self.processed_view,
            "reconcile_every": self.reconcile_every,
            "seed": self.seed,
            "query_budget": self.query_budget,
            "query_pruner": self.query_pruner,
            "durability_dir": self.durability_dir,
            "snapshot_every": self.snapshot_every,
            "engine": self.engine,
            "db_path": self.db_path,
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "BackendSpec":
        if isinstance(data, str):
            data = {"kind": data}
        data = dict(data or {})
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise SpecError(f"backend node has unknown key(s) {sorted(extra)!r}")
        if "scenario" in data:
            data["scenario"] = ComponentSpec.from_value(data["scenario"])
        return cls(**data)


@dataclass(frozen=True)
class DataSpec:
    """Where the input collections come from.

    Either a packaged *sample* corpus name (registry kind ``corpus``) or
    explicit file paths.  Optional — ``Pipeline.run`` also accepts
    collections directly.
    """

    sample: str | None = None
    kb1: str | None = None
    kb2: str | None = None
    gold: str | None = None

    def validated(self) -> "DataSpec":
        if self.sample is not None and self.kb1 is not None:
            raise SpecError("data node: give either 'sample' or 'kb1', not both")
        if self.sample is not None and not registry.has("corpus", self.sample):
            registered = ", ".join(registry.names("corpus"))
            raise SpecError(
                f"unknown sample corpus {self.sample!r}; registered: {registered}"
            )
        return self

    def resolve(self):
        """Load ``(kb1, kb2, gold)``; all ``None`` when the node is empty."""
        if self.sample is not None:
            return registry.create("corpus", self.sample)
        if self.kb1 is None:
            return None, None, None
        from repro.datasets.gold import load_gold_csv
        from repro.rdf.loader import load_collection

        kb1 = load_collection(self.kb1)
        kb2 = load_collection(self.kb2) if self.kb2 else None
        gold = load_gold_csv(self.gold) if self.gold else None
        return kb1, kb2, gold

    def to_dict(self) -> dict:
        return {
            "sample": self.sample,
            "kb1": self.kb1,
            "kb2": self.kb2,
            "gold": self.gold,
        }

    @classmethod
    def from_dict(cls, data) -> "DataSpec":
        if isinstance(data, str):
            data = {"sample": data}
        data = dict(data or {})
        extra = set(data) - {"sample", "kb1", "kb2", "gold"}
        if extra:
            raise SpecError(f"data node has unknown key(s) {sorted(extra)!r}")
        return cls(**data)


@dataclass(frozen=True)
class PipelineSpec:
    """One declarative, serializable entity-resolution pipeline.

    Validates eagerly at construction (see :class:`SpecError`),
    round-trips exactly through :meth:`to_dict` / :meth:`from_dict` and
    JSON, and hashes to a stable :meth:`cache_key`.  Run it with
    :class:`~repro.api.runner.Pipeline`.
    """

    blocking: BlockingSpec = field(default_factory=BlockingSpec)
    weighting: ComponentSpec = field(default_factory=lambda: ComponentSpec("ARCS"))
    pruning: ComponentSpec = field(default_factory=lambda: ComponentSpec("CNP"))
    matching: MatchingSpec = field(default_factory=MatchingSpec)
    evaluation: EvaluationSpec = field(default_factory=EvaluationSpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    data: DataSpec | None = None

    def __post_init__(self) -> None:
        # Eager validation: canonicalized nodes are written back through
        # object.__setattr__ (frozen dataclass), so equal specs compare
        # and hash equal regardless of input spelling (case, shorthand).
        object.__setattr__(self, "blocking", self.blocking.validated())
        object.__setattr__(self, "weighting", self.weighting.validated("weighting"))
        object.__setattr__(self, "pruning", self.pruning.validated("pruner"))
        object.__setattr__(self, "matching", self.matching.validated())
        object.__setattr__(self, "evaluation", self.evaluation.validated())
        object.__setattr__(self, "backend", self.backend.validated())
        if self.data is not None:
            object.__setattr__(self, "data", self.data.validated())

    # -- construction convenience -------------------------------------------

    def with_backend(self, **changes) -> "PipelineSpec":
        """Copy with backend fields replaced (validated again)."""
        if "scenario" in changes:
            changes["scenario"] = ComponentSpec.from_value(changes["scenario"])
        return dataclasses.replace(
            self, backend=dataclasses.replace(self.backend, **changes)
        )

    def with_matching(self, **changes) -> "PipelineSpec":
        """Copy with matching fields replaced (validated again)."""
        for key in ("matcher", "benefit"):
            if key in changes:
                changes[key] = ComponentSpec.from_value(changes[key])
        return dataclasses.replace(
            self, matching=dataclasses.replace(self.matching, **changes)
        )

    def with_components(
        self,
        weighting=None,
        pruning=None,
        blocker=None,
    ) -> "PipelineSpec":
        """Copy with the named components swapped (validated again)."""
        spec = self
        if weighting is not None:
            spec = dataclasses.replace(
                spec, weighting=ComponentSpec.from_value(weighting)
            )
        if pruning is not None:
            spec = dataclasses.replace(spec, pruning=ComponentSpec.from_value(pruning))
        if blocker is not None:
            spec = dataclasses.replace(
                spec,
                blocking=dataclasses.replace(
                    spec.blocking, blocker=ComponentSpec.from_value(blocker)
                ),
            )
        return spec

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Nested plain-dict form (JSON-ready)."""
        return {
            "blocking": self.blocking.to_dict(),
            "weighting": self.weighting.to_dict(),
            "pruning": self.pruning.to_dict(),
            "matching": self.matching.to_dict(),
            "evaluation": self.evaluation.to_dict(),
            "backend": self.backend.to_dict(),
            "data": self.data.to_dict() if self.data is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineSpec":
        """Rebuild from :meth:`to_dict` output (shorthands accepted)."""
        data = dict(data or {})
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise SpecError(
                f"pipeline spec has unknown key(s) {sorted(extra)!r}; "
                f"known: {', '.join(sorted(known))}"
            )
        kwargs = {}
        if "blocking" in data:
            kwargs["blocking"] = BlockingSpec.from_dict(data["blocking"])
        if "weighting" in data:
            kwargs["weighting"] = ComponentSpec.from_value(data["weighting"])
        if "pruning" in data:
            kwargs["pruning"] = ComponentSpec.from_value(data["pruning"])
        if "matching" in data:
            kwargs["matching"] = MatchingSpec.from_dict(data["matching"])
        if "evaluation" in data:
            kwargs["evaluation"] = EvaluationSpec.from_dict(data["evaluation"])
        if "backend" in data:
            kwargs["backend"] = BackendSpec.from_dict(data["backend"])
        if data.get("data") is not None:
            kwargs["data"] = DataSpec.from_dict(data["data"])
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form; ``from_json`` round-trips it exactly."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "PipelineSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        """Write the spec as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def cache_key(self) -> str:
        """Stable hex digest of the canonical JSON form."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
