"""The unified public facade: declarative specs over every backend.

One import gives the whole platform a single, serializable surface::

    from repro.api import Pipeline, PipelineSpec

    spec = PipelineSpec.from_dict(
        {
            "weighting": "ARCS",
            "pruning": "CNP",
            "matching": {"matcher": {"name": "threshold",
                                     "params": {"threshold": 0.35}}},
            "backend": {"kind": "sequential"},
        }
    )
    report = Pipeline.run(spec, kb1, kb2, gold=gold)
    print(report.summary())

The same spec executes on the sequential batch path, the parallel
MapReduce formulations, or the streaming resolver — with bit-identical
pruned edges and match decisions — by changing only the ``backend``
node.  Components (blockers, weighting schemes, pruners, matchers,
budget policies, workload scenarios, sample corpora) resolve through
the :data:`~repro.api.registry.registry`; third parties plug in with
the :func:`~repro.api.registry.register` decorator.
"""

from repro.api.registry import (
    ComponentInfo,
    InvalidParamsError,
    ParamInfo,
    Registry,
    UnknownComponentError,
    register,
    registry,
)
from repro.api.spec import (
    BackendSpec,
    BlockingSpec,
    ComponentSpec,
    DataSpec,
    EvaluationSpec,
    MatchingSpec,
    PipelineSpec,
    SpecError,
)
from repro.api.runner import Pipeline, RunReport

__all__ = [
    "ComponentInfo",
    "ParamInfo",
    "Registry",
    "registry",
    "register",
    "UnknownComponentError",
    "InvalidParamsError",
    "SpecError",
    "ComponentSpec",
    "BlockingSpec",
    "MatchingSpec",
    "EvaluationSpec",
    "BackendSpec",
    "DataSpec",
    "PipelineSpec",
    "Pipeline",
    "RunReport",
]
