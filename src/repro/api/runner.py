"""Spec execution: compile a :class:`PipelineSpec` onto the backbones.

:meth:`Pipeline.run` is the one entry point the CLI, the canned
workflows and the benchmarks drive: it compiles the spec's components
through the registry, produces the pruned candidate edges on the
selected backend — sequential :class:`~repro.metablocking.graph.
BlockingGraph`, parallel MapReduce jobs, the streaming resolver's
batch bridge, or the relational (SQL-compiled) meta-blocker — then
runs the shared progressive matching and evaluation
stages, returning one :class:`RunReport` regardless of backend.

The backend contract (gated in ``tests/api/``): the same spec produces
**bit-identical pruned edges and match decisions** on every backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.spec import PipelineSpec, SpecError
from repro.blocking.block import BlockCollection
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER, ProgressiveResult
from repro.core.evidence_matcher import NeighborAwareMatcher
from repro.core.updater import NeighborEvidencePropagator
from repro.datasets.gold import GoldStandard
from repro.evaluation.metrics import (
    BlockingQuality,
    MatchingQuality,
    evaluate_blocks,
    evaluate_matches,
)
from repro.matching.matcher import Matcher
from repro.matching.similarity import SimilarityIndex
from repro.metablocking.graph import BlockingGraph, WeightedEdge
from repro.model.collection import EntityCollection
from repro.obs import DISABLED, Observability


@dataclass
class RunReport:
    """Everything one spec-driven run produced, backend-independent.

    The report is the facade's single result type: stage artifacts
    (blocks, edges, progressive result), quality metrics when gold was
    supplied, per-phase wall-clock latency, and backend provenance
    (which execution path produced the edges, with its parameters).
    """

    spec: PipelineSpec
    #: stable spec identity (see :meth:`PipelineSpec.cache_key`)
    spec_key: str
    #: backend provenance: kind plus backend-specific detail
    backend: dict = field(default_factory=dict)
    #: per-phase wall-clock seconds (block/metablock/match/evaluate)
    phase_seconds: dict = field(default_factory=dict)
    blocks: BlockCollection | None = None
    processed_blocks: BlockCollection | None = None
    edges: list[WeightedEdge] = field(default_factory=list)
    progressive: ProgressiveResult | None = None
    block_quality: BlockingQuality | None = None
    match_quality: MatchingQuality | None = None
    #: streaming-backend replay statistics (``None`` elsewhere)
    workload: object = None
    #: mapreduce-backend job metrics (``None`` elsewhere)
    job_metrics: object = None

    def matched_pairs(self) -> set[tuple[str, str]]:
        """Final matched URI pairs."""
        if self.progressive is None:
            return set()
        return self.progressive.matched_pairs()

    def summary(self) -> dict[str, str]:
        """One-line stage summary (same keys as ``MinoanERResult``)."""
        out = {
            "backend": self.backend.get("kind", "?"),
            "blocks": str(len(self.blocks) if self.blocks is not None else 0),
            "after post-processing": str(
                len(self.processed_blocks) if self.processed_blocks is not None else 0
            ),
            "scheduled comparisons": str(len(self.edges)),
        }
        if self.progressive is not None:
            out["executed comparisons"] = str(self.progressive.comparisons_executed)
            out["matches"] = str(self.progressive.match_graph.match_count)
            out["discovered matches"] = str(self.progressive.discovered_matches)
        return out

    def summary_rows(self) -> list[dict[str, str]]:
        """Report-ready rows for ``format_table``."""
        rows = [
            {"stage": key, "value": value} for key, value in self.summary().items()
        ]
        for phase, seconds in self.phase_seconds.items():
            rows.append(
                {"stage": f"{phase} (ms)", "value": f"{seconds * 1e3:.1f}"}
            )
        return rows

    def to_dict(self) -> dict:
        """JSON-able digest (heavy artifacts reduced to counts)."""
        return {
            "spec_key": self.spec_key,
            "backend": dict(self.backend),
            "phase_seconds": dict(self.phase_seconds),
            "blocks": len(self.blocks) if self.blocks is not None else None,
            "processed_blocks": (
                len(self.processed_blocks)
                if self.processed_blocks is not None
                else None
            ),
            "edges": len(self.edges),
            "matches": len(self.matched_pairs()),
            "match_quality": (
                self.match_quality.as_row() if self.match_quality else None
            ),
            "block_quality": (
                self.block_quality.as_row() if self.block_quality else None
            ),
        }


class Pipeline:
    """Compiled form of one :class:`PipelineSpec`.

    Construction resolves every component through the registry (the
    spec has already validated names and parameters, so compilation
    cannot fail on unknown components).  Stages are exposed separately
    (:meth:`block`, :meth:`meta_block`, :meth:`match`) for the sweeps
    that reuse intermediate artifacts; :meth:`run` composes them across
    any backend.
    """

    def __init__(
        self, spec: PipelineSpec, obs: Observability | None = None
    ) -> None:
        self.spec = spec
        self.obs = obs if obs is not None else DISABLED
        blocking = spec.blocking
        self.blocker = blocking.blocker.build("blocker")
        self.purging = (
            blocking.purging.build("postprocess") if blocking.purging else None
        )
        self.filtering = (
            blocking.filtering.build("postprocess") if blocking.filtering else None
        )
        self.scheme = spec.weighting.build("weighting")
        self.pruner = spec.pruning.build("pruner")
        self.benefit = spec.matching.benefit.build("benefit")

    # -- one-call entry point -------------------------------------------------

    @classmethod
    def run(
        cls,
        spec: PipelineSpec,
        kb1: EntityCollection | None = None,
        kb2: EntityCollection | None = None,
        gold: GoldStandard | None = None,
        obs: Observability | None = None,
    ) -> RunReport:
        """Execute *spec* end to end and return the unified report.

        Args:
            spec: the validated pipeline description.
            kb1 / kb2: input collections; omitted, they resolve from the
                spec's ``data`` node.
            gold: ground truth for evaluation (or from the data node).
            obs: observability handle — the run then emits one span per
                stage under a ``pipeline.run`` root, across every
                backend.

        Raises:
            SpecError: when no input data is available from either
                source.
        """
        if kb1 is None:
            if kb2 is not None:
                raise SpecError("kb2 was supplied without kb1")
            if spec.data is None:
                raise SpecError(
                    "no input data: pass kb1/kb2 or give the spec a data node"
                )
            kb1, kb2, data_gold = spec.data.resolve()
            gold = gold if gold is not None else data_gold
        if kb1 is None:
            raise SpecError("the spec's data node resolved no collections")
        return cls(spec, obs=obs).execute(kb1, kb2, gold=gold)

    # -- individual stages ----------------------------------------------------

    def block(
        self,
        kb1: EntityCollection,
        kb2: EntityCollection | None = None,
    ) -> tuple[BlockCollection, BlockCollection]:
        """Blocking + post-processing; returns ``(raw, processed)``."""
        blocks = self.blocker.build(kb1, kb2)
        processed = blocks
        if self.purging is not None:
            processed = self.purging.process(processed)
        if self.filtering is not None:
            processed = self.filtering.process(processed)
        return blocks, processed

    def meta_block(self, blocks: BlockCollection) -> list[WeightedEdge]:
        """Weight + prune the blocking graph sequentially.

        The two stages get separate spans: edge materialization is
        cached on the graph, so forcing it under the weighting span
        leaves the pruning span with only the pruner's own work —
        honest per-stage attribution at no extra cost.
        """
        obs = self.obs
        graph = BlockingGraph(blocks, self.scheme)
        with obs.span("pipeline.weighting") as span:
            span.set(pairs=len(graph.materialize()))
        with obs.span("pipeline.pruning") as span:
            edges = self.pruner.prune(graph)
            span.set(edges=len(edges))
        return edges

    def build_matcher(
        self,
        collections: list[EntityCollection],
        gold: GoldStandard | None = None,
    ) -> Matcher:
        """Compile the spec's matcher for these collections."""
        matching = self.spec.matching
        name = matching.matcher.name.lower()
        if name == "oracle":
            if gold is None:
                raise SpecError("the oracle matcher needs a gold standard")
            return matching.matcher.build("matcher", gold=gold.matches)
        index = SimilarityIndex(collections)
        matcher: Matcher = matching.matcher.build("matcher", index=index)
        if matching.update_phase and matching.evidence_weight > 0:
            matcher = NeighborAwareMatcher(matcher, matching.evidence_weight)
        return matcher

    def match(
        self,
        edges: list[WeightedEdge],
        collections: list[EntityCollection],
        gold: GoldStandard | None = None,
        label: str | None = None,
    ) -> ProgressiveResult:
        """Shared progressive matching stage over pruned *edges*."""
        matching = self.spec.matching
        engine = ProgressiveER(
            matcher=self.build_matcher(collections, gold),
            budget=CostBudget(matching.budget),
            benefit=self.benefit,
            updater=(
                NeighborEvidencePropagator(
                    boost_factor=matching.boost_factor,
                    discovery_weight=matching.discovery_weight,
                )
                if matching.update_phase
                else None
            ),
            checkpoint_every=matching.checkpoint_every,
        )
        return engine.run(edges, collections, gold=gold, label=label)

    # -- backend edge production ----------------------------------------------

    def _record_blocks(self, kb1, kb2, report: RunReport, processed) -> None:
        """Fill the report's block stages, reusing *processed* if given.

        Each block stage gets its own span; a stage that did not run
        (no operator configured, or pre-built blocks reused) is marked
        with a zero-duration event so traces always show the full stage
        sequence.
        """
        obs = self.obs
        t0 = time.perf_counter()
        if processed is not None:
            report.blocks = report.processed_blocks = processed
            if obs.enabled:
                for stage in ("blocking", "purging", "filtering"):
                    obs.event(
                        f"pipeline.{stage}", 0.0,
                        reused=True, blocks=len(processed),
                    )
        else:
            entities = len(kb1) + (len(kb2) if kb2 is not None else 0)
            with obs.span("pipeline.blocking", entities=entities) as span:
                blocks = self.blocker.build(kb1, kb2)
                span.set(blocks=len(blocks))
            report.blocks = blocks
            current = blocks
            with obs.span("pipeline.purging") as span:
                if self.purging is not None:
                    current = self.purging.process(current)
                span.set(blocks=len(current), skipped=self.purging is None)
            with obs.span("pipeline.filtering") as span:
                if self.filtering is not None:
                    current = self.filtering.process(current)
                span.set(blocks=len(current), skipped=self.filtering is None)
            report.processed_blocks = current
        report.phase_seconds["block_s"] = time.perf_counter() - t0

    def _edges_sequential(
        self, kb1, kb2, report: RunReport, processed=None
    ) -> list[WeightedEdge]:
        self._record_blocks(kb1, kb2, report, processed)
        t0 = time.perf_counter()
        edges = self.meta_block(report.processed_blocks)
        report.phase_seconds["metablock_s"] = time.perf_counter() - t0
        report.backend.update({"kind": "sequential"})
        return edges

    def _edges_mapreduce(
        self, kb1, kb2, report: RunReport, processed=None
    ) -> list[WeightedEdge]:
        from repro.mapreduce import (
            MapReduceEngine,
            ProcessExecutor,
            parallel_metablocking,
            parallel_metablocking_ids,
        )

        backend = self.spec.backend
        self._record_blocks(kb1, kb2, report, processed)

        formulation = backend.formulation
        if formulation == "int":
            try:
                import numpy  # noqa: F401
            except ImportError:  # pragma: no cover - container ships numpy
                formulation = "string"
        executor = backend.executor
        if executor == "process" and not ProcessExecutor.available():
            executor = "serial"
        runner = (
            parallel_metablocking_ids if formulation == "int" else parallel_metablocking
        )
        obs = self.obs
        t0 = time.perf_counter()
        with obs.span("pipeline.weighting", fused=True) as span:
            with MapReduceEngine(
                workers=backend.workers, executor=executor, obs=obs
            ) as engine:
                edges, metrics = runner(
                    engine, report.processed_blocks, self.scheme, self.pruner
                )
            span.set(edges=len(edges))
        if obs.enabled:
            # Weighting and pruning fuse inside the reducers on this
            # backend; the zero-duration marker keeps the pruning stage
            # present (and honestly empty) in every trace.
            obs.event("pipeline.pruning", 0.0, fused=True, edges=len(edges))
        report.phase_seconds["metablock_s"] = time.perf_counter() - t0
        report.job_metrics = metrics
        report.backend.update(
            {
                "kind": "mapreduce",
                "workers": backend.workers,
                "executor": executor,
                "formulation": formulation,
                "shuffle_records": sum(m.shuffle_records for m in metrics),
                "shuffle_bytes": sum(m.shuffle_bytes for m in metrics),
            }
        )
        return edges

    def _edges_sql(
        self, kb1, kb2, report: RunReport, processed=None
    ) -> list[WeightedEdge]:
        from repro.blocking.filtering import BlockFiltering
        from repro.blocking.purging import BlockPurging
        from repro.sqlbackend import SqlBackendError, SqlMetaBlocker

        backend = self.spec.backend
        obs = self.obs
        # Only the built-in purging/filtering operators compile to SQL;
        # custom registry operators run in python and their output is
        # loaded as-is (weighting/pruning still execute relationally).
        compilable = (
            self.purging is None or type(self.purging) is BlockPurging
        ) and (self.filtering is None or type(self.filtering) is BlockFiltering)
        try:
            mb = SqlMetaBlocker(
                engine=backend.engine,
                db_path=backend.db_path,
                workers=backend.workers,
                obs=obs,
            )
        except SqlBackendError as exc:
            raise SpecError(str(exc)) from exc
        try:
            with mb:
                if processed is not None or not compilable:
                    self._record_blocks(kb1, kb2, report, processed)
                    mb.load_blocks(report.processed_blocks)
                    mb.purge(None)
                    mb.filter(None)
                else:
                    t0 = time.perf_counter()
                    entities = len(kb1) + (len(kb2) if kb2 is not None else 0)
                    with obs.span("pipeline.blocking", entities=entities) as span:
                        blocks = self.blocker.build(kb1, kb2)
                        span.set(blocks=len(blocks))
                    report.blocks = blocks
                    mb.load_blocks(blocks)
                    with obs.span("pipeline.purging") as span:
                        threshold = mb.purge(self.purging)
                        span.set(
                            blocks=mb.stats["purged_blocks"],
                            skipped=self.purging is None,
                            threshold=threshold,
                        )
                    with obs.span("pipeline.filtering") as span:
                        mb.filter(self.filtering)
                        span.set(
                            blocks=mb.stats["filtered_blocks"],
                            skipped=self.filtering is None,
                        )
                    report.processed_blocks = mb.processed_collection()
                    report.phase_seconds["block_s"] = time.perf_counter() - t0
                t0 = time.perf_counter()
                with obs.span("pipeline.weighting") as span:
                    mb.weight(self.scheme)
                    span.set(pairs=mb.stats["pairs"])
                with obs.span("pipeline.pruning") as span:
                    edges = mb.prune(self.pruner)
                    span.set(edges=len(edges))
                report.phase_seconds["metablock_s"] = time.perf_counter() - t0
                report.backend.update(
                    {
                        "kind": "sql",
                        "engine": backend.engine,
                        "db_path": backend.db_path,
                        "workers": backend.workers,
                        "pairs": mb.stats.get("pairs"),
                        "purge_threshold": mb.stats.get("purge_threshold"),
                    }
                )
        except SqlBackendError as exc:
            raise SpecError(str(exc)) from exc
        return edges

    def _edges_stream(
        self, kb1, kb2, report: RunReport, bridge: bool = True
    ) -> list[WeightedEdge]:
        from repro.api.registry import registry
        from repro.stream.resolver import StreamResolver
        from repro.stream.workload import WorkloadDriver

        backend = self.spec.backend
        matching = self.spec.matching
        threshold = matching.matcher.params.get("threshold", 0.4)
        durability = None
        if backend.durability_dir is not None:
            from repro.stream.durability import Durability

            durability = Durability(
                backend.durability_dir, snapshot_every=backend.snapshot_every
            )
        resolver = StreamResolver(
            blocker=self.blocker,
            clean_clean=kb2 is not None,
            threshold=threshold,
            processed_view=backend.processed_view,
            reconcile_every=backend.reconcile_every,
            durability=durability,
            obs=self.obs,
        )
        generator = registry.factory("scenario", backend.scenario.name)
        events = generator(
            kb1, kb2, seed=backend.seed, **backend.scenario.params
        )
        # The streaming resolver prunes each query's neighbourhood
        # node-centrically; reciprocal variants degrade to their base
        # algorithm at query time (the bridge edges below still honour
        # the exact pruner).
        query_pruner = backend.query_pruner or self.spec.pruning.name
        if query_pruner.lower().startswith("reciprocal"):
            query_pruner = query_pruner[len("Reciprocal"):]
        obs = self.obs
        t0 = time.perf_counter()
        with obs.span("stream.replay", scenario=backend.scenario.name) as span:
            report.workload = WorkloadDriver(resolver).run(
                events,
                scenario=backend.scenario.name,
                scheme=self.spec.weighting.name,
                pruner=query_pruner,
                budget=backend.query_budget,
            )
            span.set(
                events=report.workload.events,
                interrupted=report.workload.interrupted,
            )
        report.phase_seconds["replay_s"] = time.perf_counter() - t0
        # Flush the telemetry snapshot BEFORE the WAL closes: an
        # interrupted replay (the driver swallows SIGINT and returns
        # partial stats) must leave its metrics and trace on disk even
        # if shutting the durability layer down fails afterwards.
        obs.flush()
        # Clean shutdown of the WAL — an interrupted replay stays
        # recoverable from the durability directory.
        resolver.close()

        edges: list[WeightedEdge] = []
        if bridge:
            # The batch bridge: snapshots of the streamed state run
            # through the exact spec-compiled operators, bit-identical
            # to the sequential path on the same corpus.
            t0 = time.perf_counter()
            with obs.span("pipeline.blocking", bridge=True) as span:
                report.blocks = resolver.index.snapshot()
                span.set(blocks=len(report.blocks))
            processed = report.blocks
            with obs.span("pipeline.purging") as span:
                if self.purging is not None:
                    processed = self.purging.process(processed)
                span.set(blocks=len(processed), skipped=self.purging is None)
            with obs.span("pipeline.filtering") as span:
                if self.filtering is not None:
                    processed = self.filtering.process(processed)
                span.set(blocks=len(processed), skipped=self.filtering is None)
            report.processed_blocks = processed
            report.phase_seconds["block_s"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            edges = self.meta_block(processed)
            report.phase_seconds["metablock_s"] = time.perf_counter() - t0
        report.backend.update(
            {
                "kind": "stream",
                "scenario": backend.scenario.name,
                "processed_view": backend.processed_view,
                "events": report.workload.events,
                "queries": report.workload.queries,
                "deletes": report.workload.deletes,
                "durability_dir": backend.durability_dir,
            }
        )
        return edges

    # -- composition ----------------------------------------------------------

    def execute(
        self,
        kb1: EntityCollection,
        kb2: EntityCollection | None = None,
        gold: GoldStandard | None = None,
        label: str | None = None,
        match: bool = True,
        processed_blocks: BlockCollection | None = None,
        stream_bridge: bool = True,
    ) -> RunReport:
        """Run all stages on the spec's backend; returns the report.

        Args:
            match: with ``False`` the run stops after edge production —
                the sweeps that only evaluate pruned candidates use
                this to skip the matching stage.
            processed_blocks: pre-built post-processed blocks to reuse
                (sequential/mapreduce backends) — worker sweeps over
                the same corpus block once instead of per cell.
            stream_bridge: with ``False`` the stream backend stops at
                the workload replay (no batch-bridge snapshot, no
                edges) — replay-only drivers like ``repro stream`` use
                this; implies no matching stage.
        """
        report = RunReport(spec=self.spec, spec_key=self.spec.cache_key())
        kind = self.spec.backend.kind
        obs = self.obs
        with obs.span("pipeline.run", backend=kind) as root:
            if kind == "sequential":
                edges = self._edges_sequential(kb1, kb2, report, processed_blocks)
            elif kind == "mapreduce":
                edges = self._edges_mapreduce(kb1, kb2, report, processed_blocks)
            elif kind == "sql":
                edges = self._edges_sql(kb1, kb2, report, processed_blocks)
            else:
                edges = self._edges_stream(kb1, kb2, report, bridge=stream_bridge)
                match = match and stream_bridge
            report.edges = edges
            root.set(edges=len(edges))
            if not match:
                return report

            collections = [kb1] if kb2 is None else [kb1, kb2]
            t0 = time.perf_counter()
            with obs.span("pipeline.matching") as span:
                report.progressive = self.match(
                    edges, collections, gold=gold, label=label
                )
                span.set(
                    comparisons=report.progressive.comparisons_executed,
                    matches=report.progressive.match_graph.match_count,
                )
            report.phase_seconds["match_s"] = time.perf_counter() - t0

            if gold is not None:
                t0 = time.perf_counter()
                with obs.span("pipeline.evaluation") as span:
                    evaluation = self.spec.evaluation
                    if evaluation.blocks and report.processed_blocks is not None:
                        report.block_quality = evaluate_blocks(
                            report.processed_blocks,
                            gold,
                            len(kb1),
                            len(kb2) if kb2 is not None else None,
                        )
                    if evaluation.matches:
                        report.match_quality = evaluate_matches(
                            report.progressive.matched_pairs(), gold
                        )
                report.phase_seconds["evaluate_s"] = time.perf_counter() - t0
        return report
