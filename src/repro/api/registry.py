"""The component registry: stable names for every pluggable piece.

One table maps ``(kind, name)`` to a factory with an introspected,
typed parameter signature.  The CLI, the canned workflows, the
benchmarks and :class:`~repro.api.spec.PipelineSpec` validation all
resolve components here — replacing the name→class dicts that used to
be copy-pasted across ``cli.py``, ``workflows.py`` and ``benchmarks/``.

Kinds registered by default:

==============  ============================================================
``blocker``     blocking methods (``token``, ``attribute-clustering``, …)
``postprocess`` block post-processing operators (purging / filtering)
``weighting``   meta-blocking edge-weighting schemes (``ARCS``, ``CBS``, …)
``pruner``      meta-blocking pruning algorithms (``CNP``, ``WEP``, …)
``matcher``     pairwise match deciders (``threshold``, ``oracle``)
``benefit``     budget policies steering progressive scheduling
``scenario``    streaming workload shapes (``uniform``, ``bursty``, …)
``corpus``      packaged sample corpora (``movies``, ``restaurants``, …)
==============  ============================================================

Third-party components self-register with the :func:`register`
decorator::

    from repro.api import register

    @register("weighting", name="MYSCHEME")
    class MyScheme(WeightingScheme):
        ...

Lookups are case-insensitive, so the historical spellings (``ARCS``
upper-case, benefit names lower-case) both resolve.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field


class UnknownComponentError(KeyError):
    """Lookup of a name that is not registered for its kind."""


class InvalidParamsError(ValueError):
    """Parameters that do not fit the component's signature."""


#: sentinel for parameters without a default (required at create time)
REQUIRED = object()


@dataclass(frozen=True)
class ParamInfo:
    """One introspected constructor parameter."""

    name: str
    annotation: str = ""
    default: object = REQUIRED

    @property
    def required(self) -> bool:
        """Whether the parameter must be supplied at create time."""
        return self.default is REQUIRED


@dataclass(frozen=True)
class ComponentInfo:
    """One registered component: its factory plus introspected metadata."""

    kind: str
    name: str
    factory: object
    params: tuple[ParamInfo, ...] = ()
    summary: str = ""
    #: construction-time parameters injected by the runner (similarity
    #: index, gold standard, …) — excluded from spec-level validation
    runtime_params: frozenset[str] = field(default_factory=frozenset)

    def param(self, name: str) -> ParamInfo | None:
        """The parameter named *name*, or ``None``."""
        for info in self.params:
            if info.name == name:
                return info
        return None

    def spec_params(self) -> tuple[ParamInfo, ...]:
        """Parameters a spec may set (runtime-injected ones excluded)."""
        return tuple(p for p in self.params if p.name not in self.runtime_params)

    def validate_params(self, params: dict) -> None:
        """Check *params* against the introspected signature.

        Raises:
            InvalidParamsError: for unknown names or missing required
                parameters (runtime-injected parameters excepted).
        """
        known = {p.name for p in self.params}
        unknown = sorted(set(params) - known)
        if unknown:
            allowed = sorted(p.name for p in self.spec_params())
            raise InvalidParamsError(
                f"{self.kind} {self.name!r} got unknown parameter(s) "
                f"{', '.join(map(repr, unknown))}; allowed: "
                f"{', '.join(allowed) if allowed else '(none)'}"
            )
        missing = [
            p.name
            for p in self.params
            if p.required and p.name not in params and p.name not in self.runtime_params
        ]
        if missing:
            raise InvalidParamsError(
                f"{self.kind} {self.name!r} missing required parameter(s) "
                f"{', '.join(map(repr, missing))}"
            )


def _introspect(factory) -> tuple[ParamInfo, ...]:
    """Introspect a factory's keyword surface as :class:`ParamInfo` rows."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return ()
    params = []
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.name == "self":
            continue
        annotation = (
            ""
            if parameter.annotation is inspect.Parameter.empty
            else str(parameter.annotation)
        )
        default = (
            REQUIRED
            if parameter.default is inspect.Parameter.empty
            else parameter.default
        )
        params.append(ParamInfo(parameter.name, annotation, default))
    return tuple(params)


class Registry:
    """Case-insensitive ``(kind, name) -> ComponentInfo`` table."""

    def __init__(self) -> None:
        self._components: dict[tuple[str, str], ComponentInfo] = {}
        #: canonical display names per (kind, lowercase name)
        self._display: dict[tuple[str, str], str] = {}

    # -- registration --------------------------------------------------------

    def register(
        self,
        kind: str,
        name: str | None = None,
        factory=None,
        summary: str | None = None,
        runtime_params: tuple[str, ...] = (),
    ):
        """Register *factory* under ``(kind, name)``.

        Usable directly (``registry.register("pruner", "CNP", CNP)``) or
        as a decorator (``@registry.register("pruner", "CNP")``).

        Args:
            kind: component category (``"weighting"``, ``"pruner"``, …).
            name: stable public name; defaults to the factory's ``name``
                attribute, falling back to ``__name__``.
            factory: class or callable producing the component.
            summary: one-line description; defaults to the first line of
                the factory's docstring.
            runtime_params: parameter names injected by the runner at
                build time, hidden from spec-level validation.

        Returns:
            The factory (so the call composes as a decorator).

        Raises:
            ValueError: when the name is already taken for this kind.
        """
        if factory is None:
            return lambda actual: self.register(
                kind, name, actual, summary, runtime_params
            )
        resolved = name or getattr(factory, "name", None) or factory.__name__
        key = (kind, resolved.lower())
        if key in self._components:
            raise ValueError(f"{kind} {resolved!r} is already registered")
        doc = summary
        if doc is None:
            doc = (inspect.getdoc(factory) or "").strip().split("\n")[0]
        self._components[key] = ComponentInfo(
            kind=kind,
            name=resolved,
            factory=factory,
            params=_introspect(factory),
            summary=doc,
            runtime_params=frozenset(runtime_params),
        )
        self._display[key] = resolved
        return factory

    # -- lookup --------------------------------------------------------------

    def kinds(self) -> list[str]:
        """All registered kinds, sorted."""
        return sorted({kind for kind, _ in self._components})

    def names(self, kind: str) -> list[str]:
        """Registered display names for *kind*, sorted."""
        return sorted(
            info.name for (k, _), info in self._components.items() if k == kind
        )

    def has(self, kind: str, name: str) -> bool:
        """Whether ``(kind, name)`` is registered (case-insensitive)."""
        return (kind, name.lower()) in self._components

    def get(self, kind: str, name: str) -> ComponentInfo:
        """The :class:`ComponentInfo` for ``(kind, name)``.

        Raises:
            UnknownComponentError: naming the registered alternatives.
        """
        info = self._components.get((kind, name.lower()))
        if info is None:
            registered = ", ".join(self.names(kind)) or "(none)"
            raise UnknownComponentError(
                f"unknown {kind} {name!r}; registered: {registered}"
            )
        return info

    def factory(self, kind: str, name: str):
        """The raw factory for ``(kind, name)`` (see :meth:`get`)."""
        return self.get(kind, name).factory

    def create(self, kind: str, name: str, params: dict | None = None):
        """Instantiate ``(kind, name)`` with validated *params*.

        Raises:
            UnknownComponentError: for unregistered names.
            InvalidParamsError: for parameters outside the signature.
        """
        info = self.get(kind, name)
        params = dict(params or {})
        info.validate_params(params)
        return info.factory(**params)

    def describe(self, kind: str | None = None) -> list[dict[str, str]]:
        """Report-ready rows (kind, name, parameters, summary)."""
        rows = []
        for registered_kind in self.kinds():
            if kind is not None and registered_kind != kind:
                continue
            for name in self.names(registered_kind):
                info = self.get(registered_kind, name)
                shown = []
                for param in info.spec_params():
                    if param.required:
                        shown.append(f"{param.name} (required)")
                    else:
                        shown.append(f"{param.name}={param.default!r}")
                rows.append(
                    {
                        "kind": registered_kind,
                        "name": name,
                        "parameters": ", ".join(shown) or "-",
                        "summary": info.summary,
                    }
                )
        return rows


#: the process-wide registry every facade consumer resolves against
registry = Registry()


def register(kind: str, name: str | None = None, **kwargs):
    """Module-level alias of :meth:`Registry.register` on the default
    :data:`registry` (decorator-friendly)."""
    return registry.register(kind, name, **kwargs)


# -- built-in components -----------------------------------------------------


def _bootstrap() -> None:
    """Register every built-in component under its stable name.

    Import-light on purpose: pulled in once at ``repro.api`` import; the
    modules referenced here never import ``repro.api`` back.
    """
    from repro.blocking import (
        AttributeClusteringBlocking,
        BlockFiltering,
        BlockPurging,
        PrefixInfixSuffixBlocking,
        QGramsBlocking,
        TokenBlocking,
    )
    from repro.core.benefit import BENEFITS
    from repro.datasets.samples import load_movies, load_people, load_restaurants
    from repro.matching.matcher import OracleMatcher, ThresholdMatcher
    from repro.core.evidence_matcher import NeighborAwareMatcher
    from repro.metablocking.pruning import PRUNERS
    from repro.metablocking.weighting import SCHEMES
    from repro.stream.workload import SCENARIOS

    registry.register("blocker", "token", TokenBlocking)
    registry.register("blocker", "attribute-clustering", AttributeClusteringBlocking)
    registry.register("blocker", "prefix-infix-suffix", PrefixInfixSuffixBlocking)
    registry.register("blocker", "qgrams", QGramsBlocking)

    registry.register("postprocess", "purging", BlockPurging)
    registry.register("postprocess", "filtering", BlockFiltering)

    for name, scheme in SCHEMES.items():
        registry.register("weighting", name, scheme)
    for name, pruner in PRUNERS.items():
        registry.register("pruner", name, pruner)
    for name, benefit in BENEFITS.items():
        registry.register("benefit", name, benefit)

    registry.register(
        "matcher", "threshold", ThresholdMatcher, runtime_params=("index",)
    )
    registry.register(
        "matcher", "neighbor-aware", NeighborAwareMatcher, runtime_params=("base",)
    )
    registry.register("matcher", "oracle", OracleMatcher, runtime_params=("gold",))

    for name, generator in SCENARIOS.items():
        registry.register(
            "scenario", name, generator, runtime_params=("kb1", "kb2", "seed")
        )

    registry.register("corpus", "movies", load_movies)
    registry.register("corpus", "restaurants", load_restaurants)
    registry.register("corpus", "people", load_people)


_bootstrap()
