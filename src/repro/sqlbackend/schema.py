"""Relational schema of the meta-blocking pipeline, plus bulk loaders.

Four base tables hold a :class:`~repro.blocking.block.BlockCollection`
in interned int-id form:

```
entities(id PK, uri, rank)          one row per interned entity;
                                    rank = lexicographic URI rank
blocks(bord PK, bkey, bipartite,    one row per block, bord = insertion
       card, size)                  ordinal, card = comparisons, size =
                                    assignments
placements(bord, entity, side, pos) one row per block membership; pos =
                                    position within the block's side
```

Derived tables (``purged``/``keep``/``fplacements``/``fblocks``/
``pair_cells``/``pair_seq``/``pair_arcs``/``pair_stats``/``factors``/
``edges``) are created by the stage statements in
:mod:`repro.sqlbackend.compile`.

Because ``rank`` is order-isomorphic to the URI text and TEXT compares
bytewise on UTF-8 (= python's code-point order), every ``ORDER BY`` on
ranks reproduces the reference implementation's URI tie-breaks with
integer comparisons.
"""

from __future__ import annotations

from repro.blocking.block import BlockCollection
from repro.sqlbackend.engine import Session

#: executemany batch size for the bulk loaders
BATCH = 50_000

DDL = (
    "CREATE TABLE entities ("
    " id INTEGER PRIMARY KEY, uri TEXT NOT NULL, rank INTEGER NOT NULL)",
    "CREATE TABLE blocks ("
    " bord INTEGER PRIMARY KEY, bkey TEXT NOT NULL,"
    " bipartite INTEGER NOT NULL, card INTEGER NOT NULL, size INTEGER NOT NULL)",
    "CREATE TABLE placements ("
    " bord INTEGER NOT NULL, entity INTEGER NOT NULL,"
    " side INTEGER NOT NULL, pos INTEGER NOT NULL)",
    "CREATE INDEX idx_placements_block ON placements (bord, side, pos)",
    "CREATE INDEX idx_placements_entity ON placements (entity)",
    "CREATE INDEX idx_blocks_card ON blocks (card)",
)


def create_schema(session: Session) -> None:
    """Create the base tables (fails loudly on a non-empty database)."""
    for statement in DDL:
        session.run(statement)


def _batched(rows):
    batch = []
    for row in rows:
        batch.append(row)
        if len(batch) >= BATCH:
            yield batch
            batch = []
    if batch:
        yield batch


def load_collection(session: Session, blocks: BlockCollection) -> dict:
    """Bulk-load *blocks* into the base tables.

    Uses the collection's interned id views (ids in first-placement
    order, exactly the ids the numpy backbone uses) and returns the
    loading statistics the compiler's packed-key arithmetic needs:
    ``packmul`` (strictly greater than any entity id) and ``wmul``
    (strictly greater than any within-block position).
    """
    interner = blocks.interner()
    uris = interner.uri_table()
    # rank[id] = position of the id's URI in lexicographic order
    by_uri = sorted(range(len(uris)), key=uris.__getitem__)
    rank = [0] * len(uris)
    for position, entity_id in enumerate(by_uri):
        rank[entity_id] = position
    for batch in _batched(
        (i, uris[i], rank[i]) for i in range(len(uris))
    ):
        session.executemany("INSERT INTO entities VALUES (?, ?, ?)", batch)

    id_blocks = blocks.id_blocks()
    keys = blocks.keys()
    max_side = 0
    block_rows = []
    for ordinal, (ids1, ids2, cardinality) in enumerate(id_blocks):
        size = len(ids1) + (len(ids2) if ids2 is not None else 0)
        block_rows.append(
            (ordinal, keys[ordinal], int(ids2 is not None), cardinality, size)
        )
        max_side = max(max_side, len(ids1), len(ids2) if ids2 is not None else 0)
    for batch in _batched(iter(block_rows)):
        session.executemany("INSERT INTO blocks VALUES (?, ?, ?, ?, ?)", batch)

    def placement_rows():
        for ordinal, (ids1, ids2, _) in enumerate(id_blocks):
            for pos, entity in enumerate(ids1):
                yield (ordinal, entity, 0, pos)
            if ids2 is not None:
                for pos, entity in enumerate(ids2):
                    yield (ordinal, entity, 1, pos)

    total_placements = 0
    for batch in _batched(placement_rows()):
        session.executemany("INSERT INTO placements VALUES (?, ?, ?, ?)", batch)
        total_placements += len(batch)

    return {
        "entities": len(uris),
        "blocks": len(id_blocks),
        "placements": total_placements,
        # pack multipliers: pk = min_id * packmul + max_id and
        # cell = pos1 * wmul + pos2 stay collision-free and
        # order-isomorphic to (min_id, max_id) / (pos1, pos2)
        "packmul": max(len(uris), 1),
        "wmul": max_side + 1,
    }
