"""Orchestrate the compiled SQL pipeline over one loaded collection.

:class:`SqlMetaBlocker` is the backend's execution facade: load a raw
block collection once, then purge → filter → pair statistics → factors
are computed in SQL, after which any number of ``weight(scheme)`` /
``prune(pruner)`` calls reuse the loaded tables (the cross-backend gate
sweeps all 6 schemes × 6 pruners over one load).

Float folds the reference performs in a defined order (ARCS sums, WEP's
mean, WNP's per-node sums) run here in python over SQL-ordered row
streams — SQL's unordered SUM over doubles is not bit-stable, and the
accumulation order is part of the cross-backend contract.
"""

from __future__ import annotations

import math

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.metablocking import pruning as _pruning
from repro.metablocking import weighting as _weighting
from repro.metablocking.graph import WeightedEdge
from repro.obs import DISABLED
from repro.sqlbackend import compile as _compile
from repro.sqlbackend import schema as _schema
from repro.sqlbackend.engine import Session, SqlBackendError, make_engine

#: builtin scheme classes the compiler knows, by exact type (a subclass
#: may override ``weight`` arbitrarily, so it must not match)
_SCHEME_NAMES = {
    _weighting.CBS: "CBS",
    _weighting.ECBS: "ECBS",
    _weighting.JS: "JS",
    _weighting.EJS: "EJS",
    _weighting.ARCS: "ARCS",
    _weighting.ChiSquare: "X2",
}


class SqlMetaBlocker:
    """One loaded collection, queryable for any scheme/pruner combo."""

    def __init__(
        self,
        engine: str = "sqlite",
        db_path: str | None = None,
        workers: int = 1,
        cache_kib: int | None = None,
        obs=None,
        collect_plans: bool = True,
    ) -> None:
        self.engine = make_engine(engine)
        self.session = Session(
            self.engine,
            db_path=db_path,
            workers=workers,
            cache_kib=cache_kib,
            collect_plans=collect_plans,
        )
        self.obs = obs if obs is not None else DISABLED
        #: loading + per-stage row counts (filled as stages run)
        self.stats: dict = {}
        self._blocks_name = "blocks"
        self._processed_name = "blocks"
        self._pairs_built = False
        self._weighted_scheme: str | None = None

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "SqlMetaBlocker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.session.close()

    @property
    def plans(self) -> dict:
        """Stage → captured (sql, query plan) list."""
        return self.session.plans

    # -- stage: load --------------------------------------------------------

    def load_blocks(self, blocks: BlockCollection) -> dict:
        """Create the schema and bulk-load *blocks*; returns load stats."""
        with self.obs.span("sql.load") as span:
            _schema.create_schema(self.session)
            stats = _schema.load_collection(self.session, blocks)
            span.set(**stats)
        self.stats.update(stats)
        self._blocks_name = blocks.name
        self._processed_name = blocks.name
        return stats

    # -- stage: purging ------------------------------------------------------

    def purge(self, purging: BlockPurging | None) -> int | None:
        """Apply block purging in SQL; returns the threshold used.

        ``None`` keeps every block (the spec had no purging operator).
        Only the built-in :class:`BlockPurging` is compilable — callers
        must pre-apply custom operators in python.
        """
        session = self.session
        if purging is None:
            session.run(_compile.PURGED_ALL_SQL, stage="purging")
            threshold = None
        else:
            if type(purging) is not BlockPurging:
                raise SqlBackendError(
                    f"cannot compile custom purging operator "
                    f"{type(purging).__qualname__!r} to SQL"
                )
            if purging.max_cardinality is not None:
                threshold = purging.max_cardinality
            else:
                threshold = int(
                    session.scalar(
                        _compile.PURGE_THRESHOLD_SQL,
                        {"smoothing": float(purging.smoothing)},
                        stage="purging",
                    )
                )
            session.run(
                _compile.PURGED_SQL, {"threshold": threshold}, stage="purging"
            )
            self._processed_name = f"purged({self._processed_name})"
        self.stats["purge_threshold"] = threshold
        self.stats["purged_blocks"] = session.scalar("SELECT COUNT(*) FROM purged")
        return threshold

    # -- stage: filtering ----------------------------------------------------

    def filter(self, filtering: BlockFiltering | None) -> None:
        """Apply block filtering in SQL (``None`` = keep all placements)."""
        session = self.session
        if filtering is None:
            session.run(_compile.FPLACEMENTS_ALL_SQL, stage="filtering")
            session.run(
                "CREATE TABLE fblocks AS SELECT * FROM purged", stage="filtering"
            )
        else:
            if type(filtering) is not BlockFiltering:
                raise SqlBackendError(
                    f"cannot compile custom filtering operator "
                    f"{type(filtering).__qualname__!r} to SQL"
                )
            session.run(
                _compile.keep_sql(self.engine),
                {"ratio": float(filtering.ratio)},
                stage="filtering",
            )
            session.run(_compile.FPLACEMENTS_SQL, stage="filtering")
            session.run(_compile.fblocks_sql(self.engine), stage="filtering")
            self._processed_name = f"filtered({self._processed_name})"
        session.run(_compile.FPLACEMENTS_INDEX_SQL)
        session.run(_compile.FBLOCKS_INDEX_SQL)
        self.stats["filtered_blocks"] = session.scalar("SELECT COUNT(*) FROM fblocks")
        # the collection statistics the CEP/CNP budgets derive from
        self.stats["total_assignments"] = int(
            session.scalar("SELECT COALESCE(SUM(size), 0) FROM fblocks")
        )
        self.stats["entity_count"] = int(
            session.scalar("SELECT COUNT(DISTINCT entity) FROM fplacements")
        )

    def prepare(
        self,
        blocks: BlockCollection,
        purging: BlockPurging | None = None,
        filtering: BlockFiltering | None = None,
    ) -> dict:
        """Convenience: load + purge + filter + pair statistics."""
        self.load_blocks(blocks)
        self.purge(purging)
        self.filter(filtering)
        self.build_pairs()
        return self.stats

    # -- stage: pair statistics ----------------------------------------------

    def _fold_arcs(self) -> int:
        """Per-pair ARCS sums, folded in the reference enumeration order.

        Streams ``(seq, cells, card)`` grouped rows ordered by (pair,
        block): each cell adds ``1.0 / card`` exactly as the numpy
        bincount accumulates the expanded cells, because a pair's
        within-block contributions are equal and its across-block order
        is block order.  Results land in ``pair_arcs`` in batches.
        """
        session = self.session
        session.run(_compile.PAIR_ARCS_DDL)
        cursor = session.stream(_compile.ARCS_STREAM_SQL, stage="pairs")
        batch: list[tuple[int, float]] = []
        pairs = 0
        current_seq = None
        acc = 0.0
        for seq, cells, card in cursor:
            if seq != current_seq:
                if current_seq is not None:
                    batch.append((current_seq, acc))
                    if len(batch) >= _schema.BATCH:
                        session.executemany(
                            "INSERT INTO pair_arcs VALUES (?, ?)", batch
                        )
                        batch = []
                    pairs += 1
                current_seq = seq
                acc = 0.0
            contribution = 1.0 / card
            for _ in range(cells):
                acc += contribution
        if current_seq is not None:
            batch.append((current_seq, acc))
            pairs += 1
        if batch:
            session.executemany("INSERT INTO pair_arcs VALUES (?, ?)", batch)
        return pairs

    def _load_factors(self) -> None:
        """Per-entity factor table: placement counts + log discounts.

        Counts and degrees are integer aggregates (exact in SQL); the
        ECBS/EJS log factors are computed in python with ``math.log`` —
        the same one-log-per-entity kernels the numpy path uses — and
        stored as REAL columns.
        """
        session = self.session
        session.run(_compile.FACTORS_DDL)
        total_blocks = max(int(self.stats["filtered_blocks"]), 1)
        edge_count = max(int(self.stats["pairs"]), 1)
        degrees = dict(session.fetchall(_compile.DEGREES_SQL, stage="factors"))
        from repro.metablocking import scheme_defs

        rows = []
        for entity, placements in session.fetchall(
            _compile.PLACEMENT_COUNTS_SQL, stage="factors"
        ):
            rows.append(
                (
                    entity,
                    placements,
                    scheme_defs.ecbs_log_factor(total_blocks, placements),
                    scheme_defs.ejs_log_factor(edge_count, degrees.get(entity, 0)),
                )
            )
            if len(rows) >= _schema.BATCH:
                session.executemany("INSERT INTO factors VALUES (?, ?, ?, ?)", rows)
                rows = []
        if rows:
            session.executemany("INSERT INTO factors VALUES (?, ?, ?, ?)", rows)
        self.stats["total_blocks"] = total_blocks
        self.stats["edge_count"] = edge_count

    def build_pairs(self) -> int:
        """Aggregate the scheme-independent pair statistics; idempotent."""
        if self._pairs_built:
            return self.stats["pairs"]
        session = self.session
        params = {
            "packmul": self.stats["packmul"],
            "wmul": self.stats["wmul"],
        }
        with self.obs.span("sql.pairs") as span:
            session.run(_compile.PAIR_CELLS_SQL, params, stage="pairs")
            session.run(_compile.PAIR_SEQ_SQL, stage="pairs")
            self.stats["pairs"] = self._fold_arcs()
            session.run(
                _compile.pair_stats_sql(self.engine),
                {"packmul": self.stats["packmul"]},
                stage="pairs",
            )
            session.run(_compile.PAIR_STATS_INDEX_SQL)
            self._load_factors()
            span.set(pairs=self.stats["pairs"])
        self._pairs_built = True
        return self.stats["pairs"]

    # -- stage: weighting ----------------------------------------------------

    def weight(self, scheme) -> int:
        """(Re)build the weighted edge table for *scheme*; returns pairs."""
        name = _SCHEME_NAMES.get(type(scheme))
        if name is None:
            raise SqlBackendError(
                f"cannot compile weighting scheme "
                f"{type(scheme).__qualname__!r} to SQL"
            )
        self.build_pairs()
        if self._weighted_scheme == name:
            return self.stats["pairs"]
        session = self.session
        session.run("DROP TABLE IF EXISTS edges")
        session.run(
            _compile.edges_sql(name),
            {"total_blocks": self.stats["total_blocks"]},
            stage="weighting",
        )
        session.run(_compile.EDGES_INDEX_SQL)
        self._weighted_scheme = name
        return self.stats["pairs"]

    # -- stage: pruning ------------------------------------------------------

    def _survivors(self, sql: str, params: dict) -> list[WeightedEdge]:
        return [
            WeightedEdge(uri_a, uri_b, weight)
            for uri_a, uri_b, weight in self.session.stream(sql, params, stage="pruning")
        ]

    def _wep(self, pruner: _pruning.WEP) -> list[WeightedEdge]:
        # the mean folds over weights in insertion (first-seen) order,
        # matching ``sum(edges.values()) / len(edges)``
        total = 0.0
        count = 0
        for (weight,) in self.session.stream(_compile.WEIGHT_STREAM_SQL):
            total += weight
            count += 1
        if count == 0:
            return []
        threshold = (total / count) * pruner.threshold_factor
        return self._survivors(_compile.WEP_SQL, {"threshold": threshold})

    def _cep(self, pruner: _pruning.CEP) -> list[WeightedEdge]:
        k = (
            pruner.k
            if pruner.k is not None
            else max(1, self.stats["total_assignments"] // 2)
        )
        return self._survivors(_compile.CEP_SQL, {"k": k})

    def _wnp(self, pruner: _pruning.WNP) -> list[WeightedEdge]:
        # per-node sums fold in insertion order over both endpoints —
        # the bincount accumulation of the vectorized path
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        for id_a, id_b, weight in self.session.stream(_compile.NODE_STREAM_SQL):
            sums[id_a] = sums.get(id_a, 0.0) + weight
            counts[id_a] = counts.get(id_a, 0) + 1
            sums[id_b] = sums.get(id_b, 0.0) + weight
            counts[id_b] = counts.get(id_b, 0) + 1
        session = self.session
        session.run("DROP TABLE IF EXISTS node_thr")
        session.run(_compile.NODE_THRESHOLDS_DDL)
        rows = [(node, sums[node] / counts[node]) for node in sums]
        for start in range(0, len(rows), _schema.BATCH):
            session.executemany(
                "INSERT INTO node_thr VALUES (?, ?)",
                rows[start : start + _schema.BATCH],
            )
        return self._survivors(
            _compile.WNP_SQL, {"votes": pruner.required_votes}
        )

    def _cnp(self, pruner: _pruning.CNP) -> list[WeightedEdge]:
        if pruner.k is not None:
            k = pruner.k
        else:
            entities = max(self.stats["entity_count"], 1)
            avg_assignments = self.stats["total_assignments"] / entities
            k = max(1, math.ceil(avg_assignments) - 1)
        return self._survivors(
            _compile.CNP_SQL, {"k": k, "votes": pruner.required_votes}
        )

    def prune(self, pruner) -> list[WeightedEdge]:
        """Run *pruner* over the current edge table."""
        if self._weighted_scheme is None:
            raise SqlBackendError("prune() called before weight()")
        kind = type(pruner)
        if kind is _pruning.WEP:
            return self._wep(pruner)
        if kind is _pruning.CEP:
            return self._cep(pruner)
        if kind in (_pruning.WNP, _pruning.ReciprocalWNP):
            return self._wnp(pruner)
        if kind in (_pruning.CNP, _pruning.ReciprocalCNP):
            return self._cnp(pruner)
        raise SqlBackendError(
            f"cannot compile pruning scheme {kind.__qualname__!r} to SQL"
        )

    # -- materialization -----------------------------------------------------

    def processed_collection(self) -> BlockCollection:
        """The purged+filtered blocks as a python :class:`BlockCollection`.

        Blocks come back in insertion order with members in their
        original within-block order, so the rebuilt collection is
        structurally identical to the python operators' output (gated
        in ``tests/sqlbackend/``).
        """
        session = self.session
        members: dict[int, tuple[list[str], list[str]]] = {}
        for bord, side, uri in session.stream(
            """
            SELECT p.bord, p.side, e.uri
            FROM fplacements p JOIN entities e ON e.id = p.entity
            ORDER BY p.bord, p.side, p.pos
            """
        ):
            sides = members.setdefault(bord, ([], []))
            sides[side].append(uri)
        rebuilt = []
        for bord, bkey, bipartite in session.stream(
            "SELECT bord, bkey, bipartite FROM fblocks ORDER BY bord"
        ):
            side1, side2 = members.get(bord, ([], []))
            rebuilt.append(Block(bkey, side1, side2 if bipartite else None))
        return BlockCollection(rebuilt, name=self._processed_name)
