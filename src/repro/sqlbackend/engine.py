"""Engine layer of the relational backend: connections and dialects.

The compiler (:mod:`repro.sqlbackend.compile`) emits one SQL text per
stage, written in the sqlite dialect with ``:name`` parameters.  An
:class:`SqlEngine` adapts that text to a concrete database — the stdlib
``sqlite3`` module (always available, the gating engine) or DuckDB
(optional, imported lazily and never required) — and owns the connection
lifecycle, pragmas and ``EXPLAIN`` capture.

Dialect differences that matter to the bit-identity contract are
isolated here:

* ``CAST(x AS REAL)`` — sqlite ``REAL`` is an IEEE double; DuckDB
  ``REAL`` is a *float32*, so every ``REAL`` becomes ``DOUBLE`` there;
* ``CAST(x AS INTEGER)`` truncates on sqlite but **rounds** on DuckDB,
  so the half-up rounding in block filtering goes through
  :meth:`SqlEngine.trunc_int`;
* integer division is ``/`` on sqlite and ``//`` on DuckDB
  (:meth:`SqlEngine.intdiv`);
* named parameters are ``:name`` on sqlite and ``$name`` on DuckDB.
"""

from __future__ import annotations

import re
import sqlite3

#: engines selectable through ``backend.engine`` in a spec
SQL_ENGINES = ("sqlite", "duckdb")


class SqlBackendError(RuntimeError):
    """A spec asks the relational backend for something it cannot do."""


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` package is importable."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True


class SqlEngine:
    """Dialect + connection factory; see module docstring."""

    name = "abstract"
    #: the 8-byte IEEE float column type of this dialect
    double_type = "REAL"
    #: True when cursors stay valid while other statements execute on
    #: the same connection (sqlite); False forces streamed reads to
    #: materialize before interleaved writes (DuckDB keeps one active
    #: result per connection)
    lazy_cursor = False

    def connect(self, db_path: str | None, workers: int, cache_kib: int | None):
        raise NotImplementedError

    def translate(self, sql: str) -> str:
        """Rewrite sqlite-dialect SQL for this engine (identity here)."""
        return sql

    def trunc_int(self, expr: str) -> str:
        """Truncate-toward-zero integer conversion of a float expression."""
        raise NotImplementedError

    def intdiv(self, a: str, b: str) -> str:
        """Truncating integer division of two integer expressions."""
        raise NotImplementedError

    def explain(self, conn, sql: str, params) -> list[str]:
        """Best-effort query-plan lines for *sql* (already translated)."""
        raise NotImplementedError


class SqliteEngine(SqlEngine):
    """The stdlib engine — always present, used for the gating tests."""

    name = "sqlite"
    lazy_cursor = True

    def connect(self, db_path=None, workers=1, cache_kib=None):
        conn = sqlite3.connect(db_path or ":memory:")
        # Scratch analytics database: no durability requirements, so the
        # journal and sync overhead buy nothing.
        conn.execute("PRAGMA journal_mode=OFF")
        conn.execute("PRAGMA synchronous=OFF")
        # Spill temporary B-trees to files rather than memory when a
        # db_path was given (the out-of-core configuration).
        if db_path is not None:
            conn.execute("PRAGMA temp_store=FILE")
        if cache_kib is not None:
            # negative cache_size = limit in KiB (positive = pages)
            conn.execute(f"PRAGMA cache_size=-{int(cache_kib)}")
        return conn

    def trunc_int(self, expr: str) -> str:
        return f"CAST({expr} AS INTEGER)"

    def intdiv(self, a: str, b: str) -> str:
        return f"(({a}) / ({b}))"

    def explain(self, conn, sql, params) -> list[str]:
        try:
            rows = conn.execute("EXPLAIN QUERY PLAN " + sql, params or {}).fetchall()
        except sqlite3.Error:  # pragma: no cover - defensive
            return []
        return [str(row[-1]) for row in rows]


class DuckDbEngine(SqlEngine):
    """Optional columnar engine behind the same compiled plans."""

    name = "duckdb"
    double_type = "DOUBLE"

    #: ``:name`` → ``$name`` (lookbehind keeps ``::`` casts safe even
    #: though the compiler never emits them)
    _PARAM = re.compile(r"(?<![:\w]):([A-Za-z_][A-Za-z0-9_]*)")
    _REAL = re.compile(r"\bREAL\b")

    def connect(self, db_path=None, workers=1, cache_kib=None):
        try:
            import duckdb
        except ImportError as exc:  # pragma: no cover - depends on env
            raise SqlBackendError(
                "backend.engine 'duckdb' needs the duckdb package, which is "
                "not installed; use engine 'sqlite' (stdlib) instead"
            ) from exc
        conn = duckdb.connect(db_path or ":memory:")
        conn.execute(f"SET threads TO {max(1, int(workers))}")
        return conn

    def translate(self, sql: str) -> str:
        return self._PARAM.sub(r"$\1", self._REAL.sub(self.double_type, sql))

    def trunc_int(self, expr: str) -> str:
        # DuckDB CAST(float AS INTEGER) rounds half away from zero;
        # trunc() first reproduces python's int().
        return f"CAST(trunc({expr}) AS BIGINT)"

    def intdiv(self, a: str, b: str) -> str:
        return f"(({a}) // ({b}))"

    def explain(self, conn, sql, params) -> list[str]:
        try:
            rows = conn.execute("EXPLAIN " + sql, params or None).fetchall()
        except Exception:  # pragma: no cover - plan capture is best-effort
            return []
        lines: list[str] = []
        for row in rows:
            for part in row:
                lines.extend(str(part).splitlines())
        return lines


def make_engine(name: str) -> SqlEngine:
    """Engine instance for a ``backend.engine`` value.

    Raises:
        SqlBackendError: for names outside :data:`SQL_ENGINES`.
    """
    if name == "sqlite":
        return SqliteEngine()
    if name == "duckdb":
        return DuckDbEngine()
    raise SqlBackendError(
        f"unknown sql engine {name!r}; choose from {', '.join(SQL_ENGINES)}"
    )


class Session:
    """One open database: translated execution plus plan capture.

    Every statement routed through :meth:`run` is translated for the
    engine's dialect; statements tagged with a *stage* additionally get
    their query plan captured into :attr:`plans` (surfaced through
    ``repro sql explain`` and the per-stage obs spans).
    """

    def __init__(
        self,
        engine: SqlEngine,
        db_path: str | None = None,
        workers: int = 1,
        cache_kib: int | None = None,
        collect_plans: bool = True,
    ) -> None:
        self.engine = engine
        self.db_path = db_path
        self.conn = engine.connect(db_path, workers, cache_kib)
        self.collect_plans = collect_plans
        #: stage → list of (sql, plan lines), in execution order
        self.plans: dict[str, list[tuple[str, list[str]]]] = {}

    def run(self, sql: str, params: dict | None = None, stage: str | None = None):
        """Translate and execute one statement; returns the cursor."""
        text = self.engine.translate(sql)
        if stage is not None and self.collect_plans:
            plan = self.engine.explain(self.conn, text, params)
            self.plans.setdefault(stage, []).append((sql, plan))
        if params:
            return self.conn.execute(text, params)
        return self.conn.execute(text)

    def stream(self, sql: str, params: dict | None = None, stage: str | None = None):
        """Row iterator over a query's results.

        Lazy (constant-memory) on engines whose cursors survive
        interleaved statements; materialized otherwise.
        """
        cursor = self.run(sql, params, stage=stage)
        if self.engine.lazy_cursor:
            return cursor
        return iter(cursor.fetchall())

    def executemany(self, sql: str, rows) -> None:
        """Bulk-insert with ``?`` placeholders (shared by both engines)."""
        self.conn.executemany(self.engine.translate(sql), rows)

    def fetchall(self, sql: str, params: dict | None = None, stage: str | None = None):
        return self.run(sql, params, stage=stage).fetchall()

    def scalar(self, sql: str, params: dict | None = None, stage: str | None = None):
        row = self.run(sql, params, stage=stage).fetchone()
        return row[0] if row is not None else None

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
