"""Compile the meta-blocking stages to SQL.

Each function emits the statement(s) for one pipeline stage over the
schema of :mod:`repro.sqlbackend.schema`.  The statements are written in
the sqlite dialect with ``:name`` parameters; engine-specific rewrites
(``REAL`` → ``DOUBLE``, truncation, integer division, ``$name``) happen
through the :class:`~repro.sqlbackend.engine.SqlEngine` hooks and
:meth:`~repro.sqlbackend.engine.SqlEngine.translate`.

Bit-identity notes (the contract gated in ``tests/api/``):

* every float expression mirrors the numpy fast path operator for
  operator — same association, same int→double promotion points;
* unordered SQL aggregation over doubles is **never** used where the
  reference accumulates floats in a defined order (ARCS sums, WEP's
  mean, WNP's per-node sums): those folds run in python over
  SQL-ordered row streams instead (see
  :mod:`repro.sqlbackend.metablocker`); SQL aggregates only integers,
  which are exact;
* ``ROW_NUMBER`` tie-breaks always include the lexicographic URI
  ``rank`` columns, reproducing the reference's string tie-breaks.
"""

from __future__ import annotations

from repro.metablocking.scheme_defs import SQL_WEIGHT_EXPRS
from repro.sqlbackend.engine import SqlEngine

# -- purging ----------------------------------------------------------------

#: the adaptive cardinality cutoff of ``threshold_from_histogram``:
#: cumulative (comparisons, assignments) over sorted levels; scanning
#: from the largest level down, the cut is the first level whose
#: inclusion keeps the CC/BC ratio within ``smoothing`` of the
#: collection without it — i.e. the MAX qualifying non-first level,
#: falling back to the smallest level, then to 1 for no blocks at all.
PURGE_THRESHOLD_SQL = """
WITH hist AS (
    SELECT card AS level, SUM(card) AS comps, SUM(size) AS assigns
    FROM blocks GROUP BY card
),
cum AS (
    SELECT level,
           SUM(comps) OVER (ORDER BY level) AS cum_comps,
           SUM(assigns) OVER (ORDER BY level) AS cum_assigns
    FROM hist
),
scan AS (
    SELECT level, cum_comps, cum_assigns,
           LAG(cum_comps) OVER (ORDER BY level) AS prev_comps,
           LAG(cum_assigns) OVER (ORDER BY level) AS prev_assigns
    FROM cum
)
SELECT COALESCE(
    (SELECT MAX(level) FROM scan
     WHERE prev_comps IS NOT NULL
       AND CAST(cum_comps AS REAL) /
           (CASE WHEN cum_assigns < 1 THEN 1 ELSE cum_assigns END)
           <= :smoothing * (CAST(prev_comps AS REAL) /
           (CASE WHEN prev_assigns < 1 THEN 1 ELSE prev_assigns END))),
    (SELECT MIN(level) FROM scan),
    1)
"""

PURGED_ALL_SQL = "CREATE TABLE purged AS SELECT * FROM blocks"
PURGED_SQL = "CREATE TABLE purged AS SELECT * FROM blocks WHERE card <= :threshold"


# -- filtering --------------------------------------------------------------


def keep_sql(engine: SqlEngine) -> str:
    """Per-entity retained blocks (the ``retained_keys`` decision).

    One row per placement (an entity on both sides of one block counts
    twice, matching ``entity_index``), ranked by ``(card, bkey)``.  Keys
    are unique per block, so rank ties happen only between duplicate
    rows of the same (entity, block) pair and ``MIN(rn)`` resolves them
    exactly as the reference's stable sort + set does.  The retention
    limit is ``max(1, int(ratio * count + 0.5))`` with python's
    truncating ``int()``.
    """
    limit = engine.trunc_int(":ratio * MIN(cnt) + 0.5")
    return f"""
CREATE TABLE keep AS
SELECT entity, bord
FROM (
    SELECT p.entity AS entity, p.bord AS bord,
           ROW_NUMBER() OVER (
               PARTITION BY p.entity ORDER BY b.card, b.bkey) AS rn,
           COUNT(*) OVER (PARTITION BY p.entity) AS cnt
    FROM placements p JOIN purged b ON b.bord = p.bord
) r
GROUP BY entity, bord
HAVING MIN(rn) <= (CASE WHEN {limit} < 1 THEN 1 ELSE {limit} END)
"""


FPLACEMENTS_SQL = """
CREATE TABLE fplacements AS
SELECT p.bord AS bord, p.entity AS entity, p.side AS side, p.pos AS pos
FROM placements p JOIN keep k ON k.entity = p.entity AND k.bord = p.bord
"""

#: without filtering, the filtered placements are the purged blocks' own
FPLACEMENTS_ALL_SQL = """
CREATE TABLE fplacements AS
SELECT p.bord AS bord, p.entity AS entity, p.side AS side, p.pos AS pos
FROM placements p JOIN purged b ON b.bord = p.bord
"""


def fblocks_sql(engine: SqlEngine) -> str:
    """Surviving filtered blocks with recomputed cardinality.

    Survival mirrors ``BlockFiltering.process``: bipartite blocks need
    both sides non-empty, dirty blocks at least two members.  The new
    cardinality is ``n1*n2 - overlap`` (bipartite; overlap = entities
    retained on both sides) or ``n1*(n1-1)//2`` (dirty).
    """
    dirty_card = engine.intdiv("s.n1 * (s.n1 - 1)", "2")
    return f"""
CREATE TABLE fblocks AS
SELECT b.bord AS bord, b.bkey AS bkey, b.bipartite AS bipartite,
       CASE WHEN b.bipartite = 1
            THEN s.n1 * s.n2 - COALESCE(o.ov, 0)
            ELSE {dirty_card} END AS card,
       s.n1 + s.n2 AS size
FROM purged b
JOIN (
    SELECT bord,
           SUM(CASE WHEN side = 0 THEN 1 ELSE 0 END) AS n1,
           SUM(CASE WHEN side = 1 THEN 1 ELSE 0 END) AS n2
    FROM fplacements GROUP BY bord
) s ON s.bord = b.bord
LEFT JOIN (
    SELECT a.bord AS bord, COUNT(*) AS ov
    FROM fplacements a
    JOIN fplacements c ON c.bord = a.bord AND c.entity = a.entity
    WHERE a.side = 0 AND c.side = 1
    GROUP BY a.bord
) o ON o.bord = b.bord
WHERE (b.bipartite = 1 AND s.n1 > 0 AND s.n2 > 0)
   OR (b.bipartite = 0 AND s.n1 >= 2)
"""


FBLOCKS_INDEX_SQL = "CREATE INDEX idx_fblocks_bord ON fblocks (bord)"
FPLACEMENTS_INDEX_SQL = (
    "CREATE INDEX idx_fplacements_block ON fplacements (bord, side, pos)"
)


# -- pair statistics --------------------------------------------------------

#: comparison cells grouped per (pair, block): within-block cell count
#: plus the first cell's position key.  The cell predicate reproduces
#: ``expand_comparison_cells`` — bipartite: side0 × side1 minus
#: self-pairs; dirty: upper-triangle of side0 — and ``fb.card > 0``
#: skips zero-comparison blocks exactly like the reference.
PAIR_CELLS_SQL = """
CREATE TABLE pair_cells AS
SELECT CASE WHEN p1.entity < p2.entity
            THEN p1.entity * :packmul + p2.entity
            ELSE p2.entity * :packmul + p1.entity END AS pk,
       p1.bord AS bord,
       fb.card AS card,
       COUNT(*) AS cells,
       MIN(p1.pos * :wmul + p2.pos) AS mincell
FROM fplacements p1
JOIN fplacements p2 ON p2.bord = p1.bord
JOIN fblocks fb ON fb.bord = p1.bord
WHERE fb.card > 0
  AND ((fb.bipartite = 1 AND p1.side = 0 AND p2.side = 1
        AND p1.entity <> p2.entity)
    OR (fb.bipartite = 0 AND p1.side = 0 AND p2.side = 0
        AND p1.pos < p2.pos))
GROUP BY pk, p1.bord, fb.card
"""

#: one row per distinct pair in first-seen enumeration order (first
#: containing block, then first cell within it) — the reference dict's
#: insertion order; ``common`` (cell count) aggregates exactly in SQL
#: because it is an integer.
PAIR_SEQ_SQL = """
CREATE TABLE pair_seq AS
SELECT a.pk AS pk, a.common AS common,
       ROW_NUMBER() OVER (ORDER BY a.fbord, pc.mincell) AS seq
FROM (
    SELECT pk, MIN(bord) AS fbord, SUM(cells) AS common
    FROM pair_cells GROUP BY pk
) a
JOIN pair_cells pc ON pc.pk = a.pk AND pc.bord = a.fbord
"""

#: the per-pair ARCS folds run in python over this ordered stream; see
#: ``SqlMetaBlocker._fold_arcs``
ARCS_STREAM_SQL = """
SELECT s.seq, pc.cells, pc.card
FROM pair_seq s JOIN pair_cells pc ON pc.pk = s.pk
ORDER BY s.seq, pc.bord
"""

PAIR_ARCS_DDL = "CREATE TABLE pair_arcs (seq INTEGER PRIMARY KEY, arcs REAL NOT NULL)"


def pair_stats_sql(engine: SqlEngine) -> str:
    """Final pair table: endpoints resolved and canonically ordered.

    ``id_a`` holds the endpoint whose URI sorts first (integer rank
    comparison standing in for the string compare), mirroring
    ``finish_pair_table``'s swap.
    """
    min_id = engine.intdiv("s.pk", ":packmul")
    return f"""
CREATE TABLE pair_stats AS
SELECT s.seq AS seq,
       CASE WHEN e1.rank <= e2.rank THEN e1.id ELSE e2.id END AS id_a,
       CASE WHEN e1.rank <= e2.rank THEN e2.id ELSE e1.id END AS id_b,
       CASE WHEN e1.rank <= e2.rank THEN e1.rank ELSE e2.rank END AS rank_a,
       CASE WHEN e1.rank <= e2.rank THEN e2.rank ELSE e1.rank END AS rank_b,
       CASE WHEN e1.rank <= e2.rank THEN e1.uri ELSE e2.uri END AS uri_a,
       CASE WHEN e1.rank <= e2.rank THEN e2.uri ELSE e1.uri END AS uri_b,
       s.common AS common, pa.arcs AS arcs
FROM pair_seq s
JOIN pair_arcs pa ON pa.seq = s.seq
JOIN entities e1 ON e1.id = {min_id}
JOIN entities e2 ON e2.id = s.pk % :packmul
"""


PAIR_STATS_INDEX_SQL = "CREATE INDEX idx_pair_stats_seq ON pair_stats (seq)"

#: per-entity placement counts over the filtered collection — the
#: ``_placement_counts_array`` ECBS/JS/χ² input (integers, exact in
#: SQL).  The join drops placements whose block failed the survival
#: check: those blocks are absent from the rebuilt collection, so the
#: reference never counts them.
PLACEMENT_COUNTS_SQL = """
SELECT p.entity, COUNT(*)
FROM fplacements p JOIN fblocks fb ON fb.bord = p.bord
GROUP BY p.entity ORDER BY p.entity
"""

#: per-entity degrees over the distinct-pair endpoints — the EJS input
DEGREES_SQL = """
SELECT entity, COUNT(*) FROM (
    SELECT id_a AS entity FROM pair_stats
    UNION ALL
    SELECT id_b AS entity FROM pair_stats
) d GROUP BY entity ORDER BY entity
"""

FACTORS_DDL = (
    "CREATE TABLE factors (entity INTEGER PRIMARY KEY,"
    " placements INTEGER NOT NULL, ecbs REAL NOT NULL, ejs REAL NOT NULL)"
)


# -- weighting --------------------------------------------------------------


def edges_sql(scheme_name: str) -> str:
    """Materialize the weighted edge table for one scheme.

    The weight expression comes from
    :data:`repro.metablocking.scheme_defs.SQL_WEIGHT_EXPRS`, the same
    module the numpy path's kernels live in.
    """
    expr = SQL_WEIGHT_EXPRS[scheme_name]
    return f"""
CREATE TABLE edges AS
SELECT ps.seq AS seq, ps.id_a AS id_a, ps.id_b AS id_b,
       ps.rank_a AS rank_a, ps.rank_b AS rank_b,
       ps.uri_a AS uri_a, ps.uri_b AS uri_b,
       {expr} AS weight
FROM pair_stats ps
JOIN factors fa ON fa.entity = ps.id_a
JOIN factors fb ON fb.entity = ps.id_b
"""


EDGES_INDEX_SQL = "CREATE INDEX idx_edges_seq ON edges (seq)"

#: the insertion-order weight stream WEP's mean folds over in python
WEIGHT_STREAM_SQL = "SELECT weight FROM edges ORDER BY seq"

#: the insertion-order endpoint stream WNP's per-node sums fold over
NODE_STREAM_SQL = "SELECT id_a, id_b, weight FROM edges ORDER BY seq"


# -- pruning ----------------------------------------------------------------

#: the deterministic ``_ranked`` output order: weight desc, then the
#: canonical URI pair asc (integer ranks stand in for the strings)
SURVIVOR_ORDER = "ORDER BY weight DESC, rank_a, rank_b"

WEP_SQL = f"""
SELECT uri_a, uri_b, weight FROM edges
WHERE weight >= :threshold
{SURVIVOR_ORDER}
"""

CEP_SQL = f"""
SELECT uri_a, uri_b, weight FROM edges
{SURVIVOR_ORDER}
LIMIT :k
"""

NODE_THRESHOLDS_DDL = (
    "CREATE TABLE node_thr (entity INTEGER PRIMARY KEY, thr REAL NOT NULL)"
)

WNP_SQL = f"""
SELECT e.uri_a, e.uri_b, e.weight
FROM edges e
JOIN node_thr ta ON ta.entity = e.id_a
JOIN node_thr tb ON tb.entity = e.id_b
WHERE (CASE WHEN e.weight >= ta.thr THEN 1 ELSE 0 END)
    + (CASE WHEN e.weight >= tb.thr THEN 1 ELSE 0 END) >= :votes
{SURVIVOR_ORDER}
"""

#: CNP: each node ranks its neighbourhood by (weight desc, neighbour
#: URI rank asc) — the exact lexsort of the vectorized path — and an
#: edge survives on enough top-k votes from its endpoints.
CNP_SQL = f"""
WITH directed AS (
    SELECT seq, id_a AS node, rank_b AS nrank, weight FROM edges
    UNION ALL
    SELECT seq, id_b AS node, rank_a AS nrank, weight FROM edges
),
ranked AS (
    SELECT seq,
           ROW_NUMBER() OVER (
               PARTITION BY node ORDER BY weight DESC, nrank) AS pos
    FROM directed
),
votes AS (
    SELECT seq, SUM(CASE WHEN pos <= :k THEN 1 ELSE 0 END) AS votes
    FROM ranked GROUP BY seq
)
SELECT e.uri_a, e.uri_b, e.weight
FROM edges e JOIN votes v ON v.seq = e.seq
WHERE v.votes >= :votes
{SURVIVOR_ORDER}
"""
