"""Relational backend: the meta-blocking pipeline compiled to SQL.

The fourth ``PipelineSpec`` backend (``backend: sql``).  Purging,
filtering, the pair-statistics aggregation, all six weighting schemes
and all six pruners execute as SQL over an interned relational schema —
on stdlib sqlite by default, or DuckDB behind the same compiled plans —
bit-identical to the sequential/MapReduce/stream backends (gated in
``tests/api/``).  A ``db_path`` moves the whole computation out of core.

Layering:

* :mod:`~repro.sqlbackend.engine` — dialects, connections, plan capture;
* :mod:`~repro.sqlbackend.schema` — relational schema + bulk loaders;
* :mod:`~repro.sqlbackend.compile` — per-stage SQL statements;
* :mod:`~repro.sqlbackend.metablocker` — the execution facade.
"""

from repro.sqlbackend.engine import (
    SQL_ENGINES,
    SqlBackendError,
    duckdb_available,
    make_engine,
)
from repro.sqlbackend.metablocker import SqlMetaBlocker

__all__ = [
    "SQL_ENGINES",
    "SqlBackendError",
    "SqlMetaBlocker",
    "duckdb_available",
    "make_engine",
]
