"""The cost budget of pay-as-you-go resolution.

MinoanER's iterative process "continues until the cost budget is
consumed".  The dominant cost is executing comparisons (reading two
descriptions and computing their similarity), but the scheduling and
update phases are bookkeeping that a budget-honest evaluation must be able
to charge too — E10 ablates exactly that.  The budget therefore meters two
currencies: comparisons (weight 1) and scheduling operations (configurable
fractional weight, 0 by default).
"""

from __future__ import annotations


class CostBudget:
    """A consumable resolution budget.

    Args:
        max_cost: total budget in comparison-equivalents; ``None`` means
            unlimited (run to completion).
        scheduling_cost_weight: cost of one scheduling/update operation,
            as a fraction of one comparison (0.0 = scheduling is free,
            the common assumption; E10 measures the effect of charging it).
    """

    def __init__(
        self,
        max_cost: int | None = None,
        scheduling_cost_weight: float = 0.0,
    ) -> None:
        if max_cost is not None and max_cost < 0:
            raise ValueError("max_cost must be non-negative")
        if scheduling_cost_weight < 0:
            raise ValueError("scheduling_cost_weight must be non-negative")
        self.max_cost = max_cost
        self.scheduling_cost_weight = scheduling_cost_weight
        self.comparisons_executed = 0
        self.scheduling_operations = 0

    @property
    def consumed(self) -> float:
        """Total cost consumed, in comparison-equivalents."""
        return (
            self.comparisons_executed
            + self.scheduling_operations * self.scheduling_cost_weight
        )

    @property
    def exhausted(self) -> bool:
        """True once the next comparison would exceed the budget."""
        if self.max_cost is None:
            return False
        return self.consumed + 1 > self.max_cost

    @property
    def remaining(self) -> float:
        """Budget left (infinity when unlimited)."""
        if self.max_cost is None:
            return float("inf")
        return max(0.0, self.max_cost - self.consumed)

    def charge_comparison(self) -> None:
        """Consume one comparison.

        Raises:
            RuntimeError: when the budget is already exhausted — callers
                must check :attr:`exhausted` first; charging past the
                budget is a harness bug, not a data condition.
        """
        if self.exhausted:
            raise RuntimeError("cost budget exhausted")
        self.comparisons_executed += 1

    def grant(self, additional_cost: float) -> None:
        """Enlarge the budget by *additional_cost* comparison-equivalents.

        Pay-as-you-go sessions call this between instalments; granting on
        an unlimited budget is a no-op.

        Raises:
            ValueError: for negative grants.
        """
        if additional_cost < 0:
            raise ValueError("additional_cost must be non-negative")
        if self.max_cost is not None:
            self.max_cost += additional_cost

    def charge_scheduling(self, operations: int = 1) -> None:
        """Consume *operations* scheduling/update steps."""
        if operations < 0:
            raise ValueError("operations must be non-negative")
        self.scheduling_operations += operations

    def copy(self) -> "CostBudget":
        """Fresh (unconsumed) budget with the same limits."""
        return CostBudget(self.max_cost, self.scheduling_cost_weight)

    def __repr__(self) -> str:
        limit = "∞" if self.max_cost is None else str(self.max_cost)
        return (
            f"CostBudget({self.consumed:.1f}/{limit}, "
            f"{self.comparisons_executed} comparisons, "
            f"{self.scheduling_operations} scheduling ops)"
        )
