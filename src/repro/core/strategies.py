"""Preconfigured scheduling strategies.

Three ways to run the progressive loop, named as in DESIGN.md's ablation
list:

* **static** — schedule once from the meta-blocking weights and never
  revisit: the update phase is disabled, so the comparison order is fixed
  up front (what a non-iterative progressive resolver does);
* **dynamic** — full MinoanER: every confirmed match immediately
  propagates to neighbour comparisons (boost + discovery);
* **hybrid** — propagation is buffered and flushed every *batch_size*
  matches, trading evidence freshness for lower scheduling overhead.
"""

from __future__ import annotations

from repro.core.benefit import BenefitModel
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER
from repro.core.updater import NeighborEvidencePropagator
from repro.matching.matcher import Matcher, MatchDecision


def static_strategy(
    matcher: Matcher,
    budget: CostBudget | None = None,
    benefit: BenefitModel | None = None,
    checkpoint_every: int = 10,
) -> ProgressiveER:
    """Progressive ER without an update phase (fixed schedule)."""
    return ProgressiveER(
        matcher=matcher,
        budget=budget,
        benefit=benefit,
        updater=None,
        checkpoint_every=checkpoint_every,
    )


def dynamic_strategy(
    matcher: Matcher,
    budget: CostBudget | None = None,
    benefit: BenefitModel | None = None,
    boost_factor: float = 1.0,
    discovery_weight: float = 0.5,
    checkpoint_every: int = 10,
) -> ProgressiveER:
    """Full MinoanER: immediate neighbour-evidence propagation."""
    return ProgressiveER(
        matcher=matcher,
        budget=budget,
        benefit=benefit,
        updater=NeighborEvidencePropagator(
            boost_factor=boost_factor, discovery_weight=discovery_weight
        ),
        checkpoint_every=checkpoint_every,
    )


class _BatchedPropagator(NeighborEvidencePropagator):
    """Buffers matches and propagates them in batches of *batch_size*."""

    def __init__(self, batch_size: int, **kwargs) -> None:
        super().__init__(**kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._pending: list[MatchDecision] = []

    def on_match(self, decision, scheduler, context) -> int:
        if not decision.is_match:
            return 0
        self._pending.append(decision)
        if len(self._pending) < self.batch_size:
            return 0
        operations = 0
        batch, self._pending = self._pending, []
        for pending in batch:
            operations += super().on_match(pending, scheduler, context)
        return operations


def hybrid_strategy(
    matcher: Matcher,
    budget: CostBudget | None = None,
    benefit: BenefitModel | None = None,
    batch_size: int = 10,
    boost_factor: float = 1.0,
    discovery_weight: float = 0.5,
    checkpoint_every: int = 10,
) -> ProgressiveER:
    """MinoanER with batched update phases (every *batch_size* matches)."""
    return ProgressiveER(
        matcher=matcher,
        budget=budget,
        benefit=benefit,
        updater=_BatchedPropagator(
            batch_size=batch_size,
            boost_factor=boost_factor,
            discovery_weight=discovery_weight,
        ),
        checkpoint_every=checkpoint_every,
    )
