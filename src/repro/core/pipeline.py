"""The end-to-end MinoanER facade.

One object wiring the whole Figure-1 pipeline: blocking → block
post-processing (purging, filtering) → meta-blocking (weighting + pruning)
→ progressive matching (scheduling / matching / update on a budget).  The
examples and most benchmarks drive the platform through this class; each
stage remains individually accessible for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.base import Blocker
from repro.blocking.block import BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.core.benefit import BenefitModel, make_benefit
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER, ProgressiveResult
from repro.core.evidence_matcher import NeighborAwareMatcher
from repro.core.updater import NeighborEvidencePropagator
from repro.datasets.gold import GoldStandard
from repro.matching.matcher import Matcher, ThresholdMatcher
from repro.matching.similarity import SimilarityIndex
from repro.metablocking.graph import BlockingGraph, WeightedEdge
from repro.metablocking.pruning import PruningScheme, make_pruner
from repro.metablocking.weighting import WeightingScheme, make_scheme
from repro.model.collection import EntityCollection


@dataclass
class MinoanERResult:
    """Everything the pipeline produced, stage by stage."""

    blocks: BlockCollection
    processed_blocks: BlockCollection
    edges: list[WeightedEdge]
    progressive: ProgressiveResult

    def matched_pairs(self) -> set[tuple[str, str]]:
        """Final matched pairs."""
        return self.progressive.matched_pairs()

    def summary(self) -> dict[str, str]:
        """One-line stage summary for reports."""
        return {
            "blocks": str(len(self.blocks)),
            "after post-processing": str(len(self.processed_blocks)),
            "scheduled comparisons": str(len(self.edges)),
            "executed comparisons": str(self.progressive.comparisons_executed),
            "matches": str(self.progressive.match_graph.match_count),
            "discovered matches": str(self.progressive.discovered_matches),
        }


class MinoanER:
    """The MinoanER platform, assembled.

    .. note:: **Soft-deprecated construction path.**  New code should
       prefer the declarative facade — ``repro.api.Pipeline.run`` with a
       ``PipelineSpec`` — which drives these same stages on any backend
       (sequential, MapReduce, streaming) from one serializable object.
       This class remains supported as a thin direct-construction shim;
       the facade's sequential backend is bit-identical to it (gated in
       ``tests/api/``).

    Args:
        blocker: blocking method (default: token blocking with URI tokens).
        purging: block-purging stage, or ``None`` to skip.
        filtering: block-filtering stage, or ``None`` to skip.
        weighting: meta-blocking weighting scheme instance or name
            (default ``"ARCS"``).
        pruning: meta-blocking pruning scheme instance or name
            (default ``"CNP"``).
        matcher: pairwise matcher; if ``None``, a TF-IDF cosine
            :class:`ThresholdMatcher` is built over the input collections
            at :meth:`resolve` time.
        match_threshold: threshold for the default matcher.
        budget: resolution cost budget (default: unlimited).
        benefit: benefit model instance or name (default ``"quantity"``).
        update_phase: enable neighbour-evidence propagation.
        boost_factor / discovery_weight: propagator knobs (see
            :class:`~repro.core.updater.NeighborEvidencePropagator`).
        evidence_weight: weight of matched-neighbour evidence in the match
            decision (see :class:`~repro.core.evidence_matcher.
            NeighborAwareMatcher`); applied to the default matcher when the
            update phase is on — set 0 for pure value matching.
    """

    def __init__(
        self,
        blocker: Blocker | None = None,
        purging: BlockPurging | None = None,
        filtering: BlockFiltering | None = None,
        weighting: WeightingScheme | str = "ARCS",
        pruning: PruningScheme | str = "CNP",
        matcher: Matcher | None = None,
        match_threshold: float = 0.4,
        budget: CostBudget | None = None,
        benefit: BenefitModel | str = "quantity",
        update_phase: bool = True,
        boost_factor: float = 1.0,
        discovery_weight: float = 0.5,
        evidence_weight: float = 0.3,
        checkpoint_every: int = 10,
    ) -> None:
        self.blocker = blocker or TokenBlocking()
        self.purging = purging if purging is not None else BlockPurging()
        self.filtering = filtering if filtering is not None else BlockFiltering()
        self.weighting = (
            make_scheme(weighting) if isinstance(weighting, str) else weighting
        )
        self.pruning = make_pruner(pruning) if isinstance(pruning, str) else pruning
        self.matcher = matcher
        self.match_threshold = match_threshold
        self.budget = budget or CostBudget()
        self.benefit = make_benefit(benefit) if isinstance(benefit, str) else benefit
        self.updater = (
            NeighborEvidencePropagator(
                boost_factor=boost_factor, discovery_weight=discovery_weight
            )
            if update_phase
            else None
        )
        self.evidence_weight = evidence_weight if update_phase else 0.0
        self.checkpoint_every = checkpoint_every

    # -- individual stages ----------------------------------------------------

    def block(
        self,
        kb1: EntityCollection,
        kb2: EntityCollection | None = None,
    ) -> tuple[BlockCollection, BlockCollection]:
        """Blocking + post-processing; returns (raw, processed) blocks."""
        blocks = self.blocker.build(kb1, kb2)
        processed = blocks
        if self.purging is not None:
            processed = self.purging.process(processed)
        if self.filtering is not None:
            processed = self.filtering.process(processed)
        return blocks, processed

    def meta_block(self, blocks: BlockCollection) -> list[WeightedEdge]:
        """Weight + prune the blocking graph; returns surviving edges."""
        graph = BlockingGraph(blocks, self.weighting)
        return self.pruning.prune(graph)

    def build_matcher(
        self,
        kb1: EntityCollection,
        kb2: EntityCollection | None = None,
    ) -> Matcher:
        """The matcher used at resolve time (default: TF-IDF cosine)."""
        if self.matcher is not None:
            return self.matcher
        collections = [kb1] if kb2 is None else [kb1, kb2]
        index = SimilarityIndex(collections)
        matcher: Matcher = ThresholdMatcher(
            index, threshold=self.match_threshold, measure="cosine"
        )
        if self.evidence_weight > 0:
            matcher = NeighborAwareMatcher(matcher, self.evidence_weight)
        return matcher

    # -- end to end --------------------------------------------------------------

    def resolve(
        self,
        kb1: EntityCollection,
        kb2: EntityCollection | None = None,
        gold: GoldStandard | None = None,
        label: str | None = None,
    ) -> MinoanERResult:
        """Run the full pipeline on one (dirty) or two (clean-clean) KBs.

        *gold*, when given, only instruments the progressive curve.
        """
        blocks, processed = self.block(kb1, kb2)
        edges = self.meta_block(processed)
        matcher = self.build_matcher(kb1, kb2)
        engine = ProgressiveER(
            matcher=matcher,
            budget=self.budget,
            benefit=self.benefit,
            updater=self.updater,
            checkpoint_every=self.checkpoint_every,
        )
        collections = [kb1] if kb2 is None else [kb1, kb2]
        progressive = engine.run(edges, collections, gold=gold, label=label)
        return MinoanERResult(
            blocks=blocks,
            processed_blocks=processed,
            edges=edges,
            progressive=progressive,
        )
