"""The update phase: propagating matches as neighbour similarity evidence.

Blocking "may miss highly heterogeneous matching descriptions featuring
few common tokens" — the somehow-similar periphery pairs.  MinoanER's
answer is to exploit partial matching results: once descriptions *a₁*
(in KB1) and *a₂* (in KB2) are confirmed to match, every pair ``(n₁, n₂)``
of their respective neighbours becomes more plausible — two descriptions
related to the same real-world entity in the same way are themselves
candidates for co-reference.  The propagator therefore:

* **boosts** queued neighbour pairs by ``boost_factor`` (scaled by how
  many confirmed matches support them), and
* **discovers** neighbour pairs the blocking graph never proposed,
  injecting them with a baseline weight — the mechanism by which matches
  token blocking missed become reachable at all.

Propagation fan-out is capped to keep the update phase's cost bounded (it
is charged to the budget as scheduling operations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.matching.matcher import MatchDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ResolutionContext
    from repro.core.scheduler import ComparisonScheduler


class NeighborEvidencePropagator:
    """Propagates confirmed matches to neighbour comparisons.

    Args:
        boost_factor: evidence weight added to each influenced pair per
            confirmed supporting match (E7 sweeps this).
        discovery_weight: base weight given to newly discovered pairs
            (those blocking missed); ``0`` disables discovery and the
            update phase only re-ranks existing candidates.
        max_neighbor_pairs: fan-out cap per confirmed match — at most this
            many neighbour pairs are touched, keeping per-match update
            cost constant.
        use_inverse_neighbors: also propagate along incoming relationship
            edges (descriptions that *reference* the matched ones).
    """

    def __init__(
        self,
        boost_factor: float = 1.0,
        discovery_weight: float = 0.5,
        max_neighbor_pairs: int = 64,
        use_inverse_neighbors: bool = True,
    ) -> None:
        if boost_factor < 0:
            raise ValueError("boost_factor must be non-negative")
        if discovery_weight < 0:
            raise ValueError("discovery_weight must be non-negative")
        if max_neighbor_pairs < 1:
            raise ValueError("max_neighbor_pairs must be >= 1")
        self.boost_factor = boost_factor
        self.discovery_weight = discovery_weight
        self.max_neighbor_pairs = max_neighbor_pairs
        self.use_inverse_neighbors = use_inverse_neighbors
        #: counters for diagnostics / E7
        self.boosted = 0
        self.discovered = 0

    def on_match(
        self,
        decision: MatchDecision,
        scheduler: "ComparisonScheduler",
        context: "ResolutionContext",
    ) -> int:
        """Propagate one confirmed match.

        Returns:
            The number of scheduling operations performed (to be charged
            to the budget).
        """
        if not decision.is_match:
            return 0
        left, right = decision.pair
        neighbors_left = self._neighborhood(left, context)
        neighbors_right = self._neighborhood(right, context)
        if not neighbors_left or not neighbors_right:
            return 0

        operations = 0
        touched = 0
        for n_left in neighbors_left:
            for n_right in neighbors_right:
                if touched >= self.max_neighbor_pairs:
                    return operations
                if n_left == n_right:
                    continue
                # Neighbours already known to co-refer need no evidence.
                if context.match_graph.are_matched(n_left, n_right):
                    continue
                # Descriptions of the same KB never match in clean-clean ER.
                if context.same_source(n_left, n_right):
                    continue
                touched += 1
                operations += 1
                if scheduler.boost(n_left, n_right, self.boost_factor):
                    self.boosted += 1
                elif self.discovery_weight > 0:
                    if scheduler.discover(n_left, n_right, self.discovery_weight):
                        self.discovered += 1
        return operations

    def _neighborhood(self, uri: str, context: "ResolutionContext") -> list[str]:
        neighbors = context.neighbors(uri)
        if self.use_inverse_neighbors:
            seen = dict.fromkeys(neighbors)
            for other in context.inverse_neighbors(uri):
                seen.setdefault(other)
            neighbors = list(seen)
        return neighbors
