"""Neighbour-evidence-aware matching.

The poster's update phase makes missed pairs *reachable*; this matcher
makes them *matchable*.  Somehow-similar descriptions at the LOD periphery
share too few tokens for any value-similarity threshold to accept them —
which is precisely why blocking missed them in the first place.  MinoanER
therefore treats "the partial matching results as a similarity evidence
for their neighbor descriptions": if the entities two descriptions relate
to have already been matched to each other, that is co-reference evidence
in its own right.

:class:`NeighborAwareMatcher` wraps any value matcher and augments its
score::

    score = value_similarity + evidence_weight × matched_neighbour_fraction

where the matched-neighbour fraction is the share of the smaller
neighbourhood whose members are (transitively) matched into the other
description's neighbourhood.  The engine binds the live resolution context
before execution, so the evidence grows as matching progresses — early
decisions are value-driven, late decisions increasingly graph-driven,
which is the pay-as-you-go behaviour the poster describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.matching.matcher import Matcher, MatchDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ResolutionContext


class NeighborAwareMatcher(Matcher):
    """Combine a value matcher with neighbour co-reference evidence.

    Args:
        base: the underlying value matcher (its ``threshold`` attribute is
            reused unless *threshold* is given).
        evidence_weight: weight of the matched-neighbour fraction added to
            the value score.  0 makes this matcher equivalent to *base*.
        threshold: decision threshold on the combined score; defaults to
            ``base.threshold`` (and to 0.5 when the base has none).
        min_value_similarity: floor on the *value* score below which no
            amount of neighbour evidence can produce a match.  Two spokes
            of the same hub (a film's two different actors, say) inherit
            full neighbour evidence from the hub match without co-referring
            at all; demanding a sliver of value agreement (any common
            token) filters those out.

    The matcher is inert until an engine calls :meth:`bind` with a
    resolution context; unbound, it behaves exactly like *base*.
    """

    def __init__(
        self,
        base: Matcher,
        evidence_weight: float = 0.3,
        threshold: float | None = None,
        min_value_similarity: float = 1e-9,
    ) -> None:
        if evidence_weight < 0:
            raise ValueError("evidence_weight must be non-negative")
        if min_value_similarity < 0:
            raise ValueError("min_value_similarity must be non-negative")
        self.base = base
        self.evidence_weight = evidence_weight
        self.threshold = (
            threshold
            if threshold is not None
            else getattr(base, "threshold", 0.5)
        )
        self.min_value_similarity = min_value_similarity
        self._context: "ResolutionContext | None" = None

    def bind(self, context: "ResolutionContext") -> None:
        self._context = context
        self.base.bind(context)

    def prime(self, pairs) -> None:
        """Forward batch pre-scoring to the value matcher (evidence is
        state-dependent and never cacheable)."""
        self.base.prime(pairs)

    def neighbor_evidence(self, uri_a: str, uri_b: str) -> float:
        """Matched-neighbour fraction in [0, 1] (0 when unbound)."""
        context = self._context
        if context is None or self.evidence_weight == 0:
            return 0.0
        neighbors_a = _neighborhood(context, uri_a)
        neighbors_b = _neighborhood(context, uri_b)
        if not neighbors_a or not neighbors_b:
            return 0.0
        graph = context.match_graph
        matched = 0
        for left in neighbors_a:
            if not graph.is_resolved(left):
                continue
            if any(graph.are_matched(left, right) for right in neighbors_b):
                matched += 1
        return matched / min(len(neighbors_a), len(neighbors_b))

    def similarity(self, uri_a: str, uri_b: str) -> float:
        value = self.base.similarity(uri_a, uri_b)
        return value + self.evidence_weight * self.neighbor_evidence(uri_a, uri_b)

    def decide(self, uri_a: str, uri_b: str) -> MatchDecision:
        value = self.base.similarity(uri_a, uri_b)
        score = value + self.evidence_weight * self.neighbor_evidence(uri_a, uri_b)
        is_match = score >= self.threshold and value >= self.min_value_similarity
        return MatchDecision(uri_a, uri_b, score, is_match)


def _neighborhood(context: "ResolutionContext", uri: str) -> list[str]:
    seen = dict.fromkeys(context.neighbors(uri))
    for other in context.inverse_neighbors(uri):
        seen.setdefault(other)
    return list(seen)
