"""The scheduling phase: a benefit-aware comparison priority queue.

The scheduler owns the frontier of candidate comparisons.  Each queued
pair carries a **base weight** — its meta-blocking edge weight, i.e. the
structural match-likelihood evidence — plus any **evidence boosts** the
update phase has granted it; the queue priority is::

    priority = (base_weight + boost) × benefit_estimate(pair)

so that the next comparison popped is the one most likely to increase the
*targeted* benefit, which is exactly the poster's definition of the
scheduling phase.  The heap is addressable: the update phase re-prioritizes
queued pairs in O(log n) and can inject brand-new pairs that blocking never
proposed (the "discover new candidate description pairs" capability).
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.blocking.block import comparison_pair
from repro.metablocking.graph import WeightedEdge
from repro.utils.heap import AddressableMaxHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.benefit import BenefitModel
    from repro.core.engine import ResolutionContext


class ComparisonScheduler:
    """Priority queue over candidate comparisons.

    Args:
        benefit: the benefit model whose estimates shape priorities.
        context: resolution context handed to benefit estimation.
    """

    def __init__(self, benefit: "BenefitModel", context: "ResolutionContext") -> None:
        self.benefit = benefit
        self.context = context
        self._heap: AddressableMaxHeap[tuple[str, str]] = AddressableMaxHeap()
        self._base_weight: dict[tuple[str, str], float] = {}
        self._boost: dict[tuple[str, str], float] = {}
        self._by_uri: dict[str, set[tuple[str, str]]] = {}
        #: pairs ever scheduled (so re-discovery does not re-queue decided pairs)
        self._seen: set[tuple[str, str]] = set()
        #: number of pairs injected by the update phase, for diagnostics
        self.discovered_pairs = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._heap

    # -- filling -------------------------------------------------------------

    def add_edges(self, edges: Iterable[WeightedEdge]) -> int:
        """Queue the comparisons surviving meta-blocking.

        Returns:
            Number of pairs queued (duplicates are merged, keeping the
            maximum base weight).
        """
        added = 0
        for edge in edges:
            if self.schedule(edge.left, edge.right, edge.weight):
                added += 1
        return added

    def schedule(self, uri_a: str, uri_b: str, weight: float) -> bool:
        """Queue one pair with the given base weight.

        Already-seen pairs are merged: the base weight is raised to the
        maximum of old and new, never lowered.  Returns True if the pair
        is newly queued.
        """
        pair = comparison_pair(uri_a, uri_b)
        if pair in self._heap:
            if weight > self._base_weight[pair]:
                self._base_weight[pair] = weight
                self._reprioritize(pair)
            return False
        if pair in self._seen:
            return False  # already popped/decided; do not resurrect
        self._seen.add(pair)
        self._base_weight[pair] = weight
        self._boost[pair] = 0.0
        self._by_uri.setdefault(pair[0], set()).add(pair)
        self._by_uri.setdefault(pair[1], set()).add(pair)
        self._heap.push(pair, self._priority(pair))
        return True

    def discover(self, uri_a: str, uri_b: str, weight: float) -> bool:
        """Inject a pair proposed by the update phase (possibly unblocked).

        Returns True if the pair entered the queue.
        """
        pair = comparison_pair(uri_a, uri_b)
        was_new = pair not in self._seen and pair not in self._heap
        queued = self.schedule(uri_a, uri_b, weight)
        if queued and was_new:
            self.discovered_pairs += 1
        return queued

    # -- prioritization --------------------------------------------------------

    def _priority(self, pair: tuple[str, str]) -> float:
        estimate = self.benefit.estimate(pair[0], pair[1], self.context)
        return (self._base_weight[pair] + self._boost[pair]) * max(estimate, 1e-9)

    def _reprioritize(self, pair: tuple[str, str]) -> None:
        self._heap.update(pair, self._priority(pair))

    def boost(self, uri_a: str, uri_b: str, delta: float) -> bool:
        """Add *delta* evidence weight to a queued pair.

        Returns:
            True if the pair was queued and re-prioritized.
        """
        pair = comparison_pair(uri_a, uri_b)
        if pair not in self._heap:
            return False
        self._boost[pair] += delta
        self._reprioritize(pair)
        return True

    def refresh(self, uri_a: str, uri_b: str) -> bool:
        """Recompute a queued pair's priority (benefit estimates drift as
        the match state evolves).  Returns True if the pair was queued."""
        pair = comparison_pair(uri_a, uri_b)
        if pair not in self._heap:
            return False
        self._reprioritize(pair)
        return True

    # -- consumption ---------------------------------------------------------

    def refresh_involving(self, uri: str) -> int:
        """Re-estimate every queued pair touching *uri*.

        Benefit estimates depend on the evolving match state (e.g. a pair's
        entity-coverage value drops once either endpoint is resolved); the
        engine calls this after each confirmed match so queued priorities
        track reality.  Returns the number of pairs re-prioritized.
        """
        pairs = self._by_uri.get(uri)
        if not pairs:
            return 0
        for pair in pairs:
            self._reprioritize(pair)
        return len(pairs)

    def pop(self) -> tuple[tuple[str, str], float]:
        """Remove and return ``(pair, priority)`` of the best comparison.

        Raises:
            IndexError: when the queue is empty.
        """
        pair, priority = self._heap.pop()
        for uri in pair:
            bucket = self._by_uri.get(uri)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self._by_uri[uri]
        return pair, priority

    def peek(self) -> tuple[tuple[str, str], float]:
        """Best comparison without removing it."""
        return self._heap.peek()

    def base_weight(self, uri_a: str, uri_b: str) -> float:
        """Current base weight of a pair (0.0 if never scheduled)."""
        return self._base_weight.get(comparison_pair(uri_a, uri_b), 0.0)
