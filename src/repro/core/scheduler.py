"""The scheduling phase: a benefit-aware comparison priority queue.

The scheduler owns the frontier of candidate comparisons.  Each queued
pair carries a **base weight** — its meta-blocking edge weight, i.e. the
structural match-likelihood evidence — plus any **evidence boosts** the
update phase has granted it; the queue priority is::

    priority = (base_weight + boost) × benefit_estimate(pair)

so that the next comparison popped is the one most likely to increase the
*targeted* benefit, which is exactly the poster's definition of the
scheduling phase.  The heap is addressable: the update phase re-prioritizes
queued pairs in O(log n) and can inject brand-new pairs that blocking never
proposed (the "discover new candidate description pairs" capability).

Internally the frontier runs on the integer-ID backbone: URIs are
interned to dense ids on first sight and every dict/heap key is a packed
``a << 32 | b`` integer — the string-tuple churn of the frontier-update
hot loop (one tuple allocation plus two string hashes per touch) is gone.
The public API stays URI-based, and ties still break by insertion order,
so scheduling behaviour is unchanged.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.metablocking.graph import WeightedEdge
from repro.model.interner import EntityInterner, pack_pair
from repro.utils.heap import AddressableMaxHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.benefit import BenefitModel
    from repro.core.engine import ResolutionContext


class ComparisonScheduler:
    """Priority queue over candidate comparisons.

    Args:
        benefit: the benefit model whose estimates shape priorities.
        context: resolution context handed to benefit estimation.
    """

    def __init__(self, benefit: "BenefitModel", context: "ResolutionContext") -> None:
        self.benefit = benefit
        self.context = context
        self._interner = EntityInterner()
        self._heap: AddressableMaxHeap[int] = AddressableMaxHeap()
        self._base_weight: dict[int, float] = {}
        self._boost: dict[int, float] = {}
        self._by_id: dict[int, set[int]] = {}
        #: pairs ever scheduled (so re-discovery does not re-queue decided pairs)
        self._seen: set[int] = set()
        #: number of pairs injected by the update phase, for diagnostics
        self.discovered_pairs = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        key = self._key_of(pair[0], pair[1])
        return key is not None and key in self._heap

    # -- id plumbing ---------------------------------------------------------

    def _key(self, uri_a: str, uri_b: str) -> int:
        """Packed key of the pair, interning unseen URIs.

        Raises:
            ValueError: when both URIs are identical (a description is
                never compared with itself).
        """
        if uri_a == uri_b:
            raise ValueError(f"self-comparison: {uri_a!r}")
        intern = self._interner.intern
        return pack_pair(intern(uri_a), intern(uri_b))

    def _key_of(self, uri_a: str, uri_b: str) -> int | None:
        """Packed key of the pair, or None when either URI is unknown."""
        get = self._interner.get
        id_a, id_b = get(uri_a), get(uri_b)
        if id_a < 0 or id_b < 0 or id_a == id_b:
            return None
        return pack_pair(id_a, id_b)

    def _pair(self, key: int) -> tuple[str, str]:
        """Canonical (URI-sorted) pair of a packed key."""
        uris = self._interner.uri_table()
        uri_a, uri_b = uris[key >> 32], uris[key & 0xFFFFFFFF]
        return (uri_a, uri_b) if uri_a < uri_b else (uri_b, uri_a)

    # -- filling -------------------------------------------------------------

    def add_edges(self, edges: Iterable[WeightedEdge]) -> int:
        """Queue the comparisons surviving meta-blocking.

        Returns:
            Number of pairs queued (duplicates are merged, keeping the
            maximum base weight).
        """
        added = 0
        for edge in edges:
            if self.schedule(edge.left, edge.right, edge.weight):
                added += 1
        return added

    def schedule(self, uri_a: str, uri_b: str, weight: float) -> bool:
        """Queue one pair with the given base weight.

        Already-seen pairs are merged: the base weight is raised to the
        maximum of old and new, never lowered.  Returns True if the pair
        is newly queued.
        """
        key = self._key(uri_a, uri_b)
        if key in self._heap:
            if weight > self._base_weight[key]:
                self._base_weight[key] = weight
                self._reprioritize(key)
            return False
        if key in self._seen:
            return False  # already popped/decided; do not resurrect
        self._seen.add(key)
        self._base_weight[key] = weight
        self._boost[key] = 0.0
        self._by_id.setdefault(key >> 32, set()).add(key)
        self._by_id.setdefault(key & 0xFFFFFFFF, set()).add(key)
        self._heap.push(key, self._priority(key))
        return True

    def discover(self, uri_a: str, uri_b: str, weight: float) -> bool:
        """Inject a pair proposed by the update phase (possibly unblocked).

        Returns True if the pair entered the queue.
        """
        key = self._key(uri_a, uri_b)
        was_new = key not in self._seen and key not in self._heap
        queued = self.schedule(uri_a, uri_b, weight)
        if queued and was_new:
            self.discovered_pairs += 1
        return queued

    # -- prioritization --------------------------------------------------------

    def _priority(self, key: int) -> float:
        uri_a, uri_b = self._pair(key)
        estimate = self.benefit.estimate(uri_a, uri_b, self.context)
        return (self._base_weight[key] + self._boost[key]) * max(estimate, 1e-9)

    def _reprioritize(self, key: int) -> None:
        self._heap.update(key, self._priority(key))

    def priority(self, uri_a: str, uri_b: str) -> float:
        """Current queue priority of the pair.

        Raises:
            KeyError: if the pair is not queued.
        """
        key = self._key_of(uri_a, uri_b)
        if key is None:
            raise KeyError((uri_a, uri_b))
        return self._heap.priority(key)

    def boost(self, uri_a: str, uri_b: str, delta: float) -> bool:
        """Add *delta* evidence weight to a queued pair.

        Returns:
            True if the pair was queued and re-prioritized.
        """
        key = self._key_of(uri_a, uri_b)
        if key is None or key not in self._heap:
            return False
        self._boost[key] += delta
        self._reprioritize(key)
        return True

    def refresh(self, uri_a: str, uri_b: str) -> bool:
        """Recompute a queued pair's priority (benefit estimates drift as
        the match state evolves).  Returns True if the pair was queued."""
        key = self._key_of(uri_a, uri_b)
        if key is None or key not in self._heap:
            return False
        self._reprioritize(key)
        return True

    # -- consumption ---------------------------------------------------------

    def refresh_involving(self, uri: str) -> int:
        """Re-estimate every queued pair touching *uri*.

        Benefit estimates depend on the evolving match state (e.g. a pair's
        entity-coverage value drops once either endpoint is resolved); the
        engine calls this after each confirmed match so queued priorities
        track reality.  Returns the number of pairs re-prioritized.
        """
        entity_id = self._interner.get(uri)
        if entity_id < 0:
            return 0
        keys = self._by_id.get(entity_id)
        if not keys:
            return 0
        for key in keys:
            self._reprioritize(key)
        return len(keys)

    def queued_pairs(self) -> Iterable[tuple[tuple[str, str], float]]:
        """Iterate over ``(pair, priority)`` of queued comparisons
        (arbitrary heap order)."""
        for key, priority in self._heap.items():
            yield self._pair(key), priority

    def pop(self) -> tuple[tuple[str, str], float]:
        """Remove and return ``(pair, priority)`` of the best comparison.

        Raises:
            IndexError: when the queue is empty.
        """
        key, priority = self._heap.pop()
        for entity_id in (key >> 32, key & 0xFFFFFFFF):
            bucket = self._by_id.get(entity_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_id[entity_id]
        return self._pair(key), priority

    def peek(self) -> tuple[tuple[str, str], float]:
        """Best comparison without removing it."""
        key, priority = self._heap.peek()
        return self._pair(key), priority

    def base_weight(self, uri_a: str, uri_b: str) -> float:
        """Current base weight of a pair (0.0 if never scheduled)."""
        key = self._key_of(uri_a, uri_b)
        if key is None:
            return 0.0
        return self._base_weight.get(key, 0.0)
