"""The MinoanER progressive entity-resolution core.

This package is the paper's primary contribution: the extension of the
typical ER workflow with a **scheduling** phase (select and order the
candidate comparisons most likely to increase the targeted benefit), a
**matching** phase, and an **update** phase (propagate each confirmed
match as similarity evidence to the matched descriptions' neighbours,
boosting — or newly discovering — the comparisons it influences), iterated
in a pay-as-you-go fashion until a cost budget is consumed.

* :mod:`repro.core.budget` — the cost budget (comparisons + bookkeeping);
* :mod:`repro.core.benefit` — the benefit models: quantity of resolved
  pairs [1], and MinoanER's quality-aware alternatives (attribute
  completeness, entity coverage, relationship completeness);
* :mod:`repro.core.scheduler` — the comparison priority queue;
* :mod:`repro.core.updater` — neighbour-evidence propagation;
* :mod:`repro.core.engine` — the schedule → match → update loop;
* :mod:`repro.core.strategies` — preconfigured static/dynamic/hybrid
  scheduling strategies;
* :mod:`repro.core.pipeline` — the end-to-end MinoanER facade
  (blocking → meta-blocking → progressive matching).
"""

from repro.core.budget import CostBudget
from repro.core.benefit import (
    BenefitModel,
    QuantityBenefit,
    AttributeCompletenessBenefit,
    EntityCoverageBenefit,
    RelationshipCompletenessBenefit,
    make_benefit,
    BENEFITS,
)
from repro.core.scheduler import ComparisonScheduler
from repro.core.updater import NeighborEvidencePropagator
from repro.core.evidence_matcher import NeighborAwareMatcher
from repro.core.engine import ProgressiveER, ProgressiveResult, ResolutionContext
from repro.core.session import ProgressiveSession
from repro.core.strategies import (
    static_strategy,
    dynamic_strategy,
    hybrid_strategy,
)
from repro.core.pipeline import MinoanER, MinoanERResult

__all__ = [
    "CostBudget",
    "BenefitModel",
    "QuantityBenefit",
    "AttributeCompletenessBenefit",
    "EntityCoverageBenefit",
    "RelationshipCompletenessBenefit",
    "make_benefit",
    "BENEFITS",
    "ComparisonScheduler",
    "NeighborEvidencePropagator",
    "NeighborAwareMatcher",
    "ProgressiveER",
    "ProgressiveResult",
    "ResolutionContext",
    "ProgressiveSession",
    "static_strategy",
    "dynamic_strategy",
    "hybrid_strategy",
    "MinoanER",
    "MinoanERResult",
]
