"""Resumable pay-as-you-go resolution sessions.

The poster frames MinoanER as pay-as-you-go: resolution quality grows as
more budget is invested, and the consumer decides when (and whether) to
continue.  :class:`ProgressiveSession` makes that contract literal — it
owns the live state of one resolution (scheduler frontier, match graph,
consumed budget, progressive curve) and exposes :meth:`advance`, which
consumes an *instalment* of comparisons and returns, so the caller can
inspect intermediate quality, change their mind, or grant more budget
later.  ``ProgressiveER.run`` is a session drained in one instalment.
"""

from __future__ import annotations

from repro.core.benefit import BenefitModel, QuantityBenefit
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveResult, ResolutionContext
from repro.core.scheduler import ComparisonScheduler
from repro.core.updater import NeighborEvidencePropagator
from repro.datasets.gold import GoldStandard
from repro.evaluation.progressive import ProgressiveCurve
from repro.matching.matcher import Matcher
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection


class ProgressiveSession:
    """Live state of one progressive resolution.

    Args:
        matcher: pairwise decider (bound to the session's context).
        edges: candidate comparisons surviving meta-blocking.
        collections: the input KBs.
        benefit: targeted benefit model (default: quantity).
        updater: neighbour-evidence propagator, or ``None`` for a static
            schedule.
        gold: optional ground truth — recall instrumentation only.
        label: progressive-curve label.
        checkpoint_every: curve sampling period, in comparisons.
        scheduling_cost_weight: forwarded to the session budget.
        refresh_estimates: re-estimate affected queued pairs after each
            match (see :class:`~repro.core.engine.ProgressiveER`).

    The session starts with a **zero** budget: nothing is resolved until
    the first :meth:`advance`.
    """

    def __init__(
        self,
        matcher: Matcher,
        edges: list[WeightedEdge],
        collections: list[EntityCollection],
        benefit: BenefitModel | None = None,
        updater: NeighborEvidencePropagator | None = None,
        gold: GoldStandard | None = None,
        label: str | None = None,
        checkpoint_every: int = 10,
        scheduling_cost_weight: float = 0.0,
        refresh_estimates: bool = True,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.matcher = matcher
        self.benefit = benefit or QuantityBenefit()
        self.updater = updater
        self.gold = gold
        self.checkpoint_every = checkpoint_every
        self.refresh_estimates = refresh_estimates

        self.context = ResolutionContext(collections)
        self.matcher.bind(self.context)
        # Batch pre-scoring: the candidate set is known up front, so
        # matchers with a vectorized path (TF-IDF cosine) score every
        # pair at once; bit-identical to scoring inside the loop.
        self.matcher.prime([edge.pair for edge in edges])
        self.scheduler = ComparisonScheduler(self.benefit, self.context)
        self.scheduler.add_edges(edges)
        self.budget = CostBudget(0, scheduling_cost_weight=scheduling_cost_weight)

        self._blocked_pairs = {edge.pair for edge in edges}
        self._found_gold = 0
        self._gold_total = len(gold.matches) if gold is not None else 0
        curve = ProgressiveCurve(label=label or self.benefit.name)
        self.result = ProgressiveResult(
            match_graph=self.context.match_graph, curve=curve, budget=self.budget
        )
        self._checkpoint()

    # -- state inspection ---------------------------------------------------

    @property
    def pending_comparisons(self) -> int:
        """Comparisons still queued."""
        return len(self.scheduler)

    @property
    def finished(self) -> bool:
        """True when the frontier is empty — no grant can make progress."""
        return not self.scheduler

    @property
    def recall(self) -> float:
        """Current recall against the session gold (0.0 when no gold)."""
        if not self._gold_total:
            return 0.0
        return self._found_gold / self._gold_total

    def matched_pairs(self) -> set[tuple[str, str]]:
        """Pairs matched so far."""
        return self.context.match_graph.matched_pairs()

    # -- execution -------------------------------------------------------------

    def advance(self, instalment: int | None = None) -> ProgressiveResult:
        """Grant *instalment* more comparisons and resolve until consumed.

        Args:
            instalment: comparisons to add to the budget; ``None`` removes
                the limit and drains the frontier completely.

        Returns:
            The live :class:`ProgressiveResult` (shared across instalments;
            its curve spans the whole session).
        """
        if instalment is not None:
            if instalment < 0:
                raise ValueError("instalment must be non-negative")
            self.budget.grant(instalment)
        else:
            self.budget.max_cost = None

        scheduler = self.scheduler
        budget = self.budget
        context = self.context
        graph = context.match_graph
        while scheduler and not budget.exhausted:
            pair, _priority = scheduler.pop()
            if pair in graph:
                self.result.skipped_decided += 1
                continue
            decision = self.matcher.decide(pair[0], pair[1])
            budget.charge_comparison()
            graph.record(decision)
            self.result.benefit_total += self.benefit.realized(decision, context)
            if decision.is_match:
                if self.gold is not None and pair in self.gold.matches:
                    self._found_gold += 1
                if pair not in self._blocked_pairs:
                    self.result.discovered_matches += 1
                if self.updater is not None:
                    operations = self.updater.on_match(decision, scheduler, context)
                    budget.charge_scheduling(operations)
                if self.refresh_estimates:
                    refreshed = 0
                    touched = set(pair)
                    for uri in pair:
                        touched.update(context.neighbors(uri))
                        touched.update(context.inverse_neighbors(uri))
                    for uri in touched:
                        refreshed += scheduler.refresh_involving(uri)
                    budget.charge_scheduling(refreshed)
            if budget.comparisons_executed % self.checkpoint_every == 0:
                self._checkpoint()
        self._checkpoint()
        self.result.discovered_pairs = scheduler.discovered_pairs
        return self.result

    def _checkpoint(self) -> None:
        values = {"benefit": self.result.benefit_total}
        if self.gold is not None:
            values["recall"] = self.recall
        self.result.curve.record(self.budget.comparisons_executed, **values)
