"""The progressive resolution engine: schedule → match → update, on budget.

:class:`ProgressiveER` wires the scheduler, a pairwise matcher, the benefit
model, the (optional) update-phase propagator and the cost budget into the
pay-as-you-go loop the poster's Figure 1 depicts.  Ground truth, when
supplied, is used for instrumentation only (the recall series of the
progressive curve); resolution decisions never see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.benefit import BenefitModel, QuantityBenefit
from repro.core.budget import CostBudget
from repro.core.updater import NeighborEvidencePropagator
from repro.datasets.gold import GoldStandard
from repro.evaluation.progressive import ProgressiveCurve
from repro.matching.matcher import Matcher, MatchGraph
from repro.metablocking.graph import WeightedEdge
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription


class ResolutionContext:
    """What benefit models and the update phase may look at.

    Bundles the input collections (for profile shapes and the relationship
    graph) with the evolving match graph.  All lookups are by URI and work
    across any number of collections.
    """

    def __init__(self, collections: list[EntityCollection]) -> None:
        if not collections:
            raise ValueError("at least one collection is required")
        self.collections = collections
        self.match_graph = MatchGraph()
        self._home: dict[str, EntityCollection] = {}
        for collection in collections:
            for description in collection:
                self._home.setdefault(description.uri, collection)

    def description(self, uri: str) -> EntityDescription | None:
        """The description with *uri*, or None if unknown."""
        home = self._home.get(uri)
        return home.get(uri) if home is not None else None

    def source_of(self, uri: str) -> str:
        """Source tag of the description (empty for unknown URIs)."""
        description = self.description(uri)
        return description.source if description is not None else ""

    def same_source(self, uri_a: str, uri_b: str) -> bool:
        """True if both descriptions come from the same KB (clean-clean guard).

        Unknown URIs are never considered same-source.
        """
        source_a = self.source_of(uri_a)
        return bool(source_a) and source_a == self.source_of(uri_b)

    def neighbors(self, uri: str) -> list[str]:
        """Out-neighbours of *uri* in its home collection."""
        home = self._home.get(uri)
        return home.neighbors(uri) if home is not None else []

    def inverse_neighbors(self, uri: str) -> list[str]:
        """In-neighbours of *uri* in its home collection."""
        home = self._home.get(uri)
        return home.inverse_neighbors(uri) if home is not None else []


@dataclass
class ProgressiveResult:
    """Outcome of one progressive run."""

    match_graph: MatchGraph
    curve: ProgressiveCurve
    budget: CostBudget
    benefit_total: float = 0.0
    skipped_decided: int = 0
    discovered_pairs: int = 0
    #: matched pairs found only via update-phase discovery (not blocked)
    discovered_matches: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def comparisons_executed(self) -> int:
        """Comparisons actually run."""
        return self.budget.comparisons_executed

    def matched_pairs(self) -> set[tuple[str, str]]:
        """Canonical pairs decided as matches."""
        return self.match_graph.matched_pairs()


class ProgressiveER:
    """The MinoanER progressive matching loop.

    Args:
        matcher: pairwise match decider (the expensive operation).
        budget: cost budget; consumed copy is returned in the result.
        benefit: benefit model targeted by scheduling (default: quantity,
            the [1] baseline — pass a quality-aware model for MinoanER's
            behaviour).
        updater: neighbour-evidence propagator; ``None`` disables the
            update phase (static scheduling).
        checkpoint_every: progressive-curve sampling period, in
            comparisons.
        refresh_estimates: after each confirmed match, re-estimate the
            queued pairs that touch the matched descriptions or their
            neighbours, so state-dependent benefit estimates (coverage,
            relationship completeness) stay current.  Charged to the
            budget as scheduling operations.
    """

    def __init__(
        self,
        matcher: Matcher,
        budget: CostBudget | None = None,
        benefit: BenefitModel | None = None,
        updater: NeighborEvidencePropagator | None = None,
        checkpoint_every: int = 10,
        refresh_estimates: bool = True,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.matcher = matcher
        self.budget = budget or CostBudget()
        self.benefit = benefit or QuantityBenefit()
        self.updater = updater
        self.checkpoint_every = checkpoint_every
        self.refresh_estimates = refresh_estimates

    def run(
        self,
        edges: list[WeightedEdge],
        collections: list[EntityCollection],
        gold: GoldStandard | None = None,
        label: str | None = None,
    ) -> ProgressiveResult:
        """Resolve progressively over the candidate *edges*.

        Args:
            edges: weighted comparisons surviving meta-blocking.
            collections: the input KBs (context for benefits/updates).
            gold: optional ground truth — instrumentation only.
            label: curve label (defaults to the benefit model's name).

        Returns:
            The :class:`ProgressiveResult` with the consumed budget, the
            match graph and the progressive curve.
        """
        session = self.session(edges, collections, gold=gold, label=label)
        return session.advance(self.budget.max_cost)

    def session(
        self,
        edges: list[WeightedEdge],
        collections: list[EntityCollection],
        gold: GoldStandard | None = None,
        label: str | None = None,
    ):
        """Create a resumable :class:`~repro.core.session.ProgressiveSession`
        with this engine's configuration (budget instalments are granted by
        the caller via ``advance``)."""
        from repro.core.session import ProgressiveSession

        return ProgressiveSession(
            matcher=self.matcher,
            edges=edges,
            collections=collections,
            benefit=self.benefit,
            updater=self.updater,
            gold=gold,
            label=label,
            checkpoint_every=self.checkpoint_every,
            scheduling_cost_weight=self.budget.scheduling_cost_weight,
            refresh_estimates=self.refresh_estimates,
        )
