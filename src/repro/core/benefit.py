"""Benefit models: what a resolved pair is worth.

Existing progressive ER (Altowim et al. [1]) maximizes the **quantity** of
entity pairs resolved within the budget.  MinoanER's position is that
different data-quality goals value matches differently, and the scheduler
should target the chosen goal.  The paper names three quality dimensions,
implemented here alongside the quantity baseline:

* **attribute completeness** — "the number of descriptions resolved,
  corresponding to the same real-world entity": merging many complementary
  descriptions of one entity yields complete attribute profiles, so a
  match is worth the *new* attribute evidence it contributes to the
  merged profile;
* **entity coverage** — "the number of real-world entities resolved":
  every distinct entity with at least one resolved pair counts once, so a
  match touching two so-far-unresolved descriptions is worth more than
  one extending an already-resolved entity;
* **relationship completeness** — "the number of real-world entity graphs
  resolved": a match is worth the relationship edges it completes —
  neighbour pairs that are themselves resolved — so resolution
  concentrates on finishing connected groups rather than scattering.

Each model supplies two functions: :meth:`~BenefitModel.estimate`, a cheap
pre-comparison proxy the scheduler multiplies into comparison priorities,
and :meth:`~BenefitModel.realized`, the actual benefit recorded after a
match is confirmed (used for the benefit@budget curves of E6).  Neither
touches the ground truth — benefit is a property of the resolver's own
progress.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ResolutionContext
    from repro.matching.matcher import MatchDecision


class BenefitModel(ABC):
    """Values the outcome of comparisons under one quality goal."""

    #: name used in experiment tables and the registry
    name = "benefit"

    @abstractmethod
    def estimate(self, uri_a: str, uri_b: str, context: "ResolutionContext") -> float:
        """Cheap pre-comparison proxy of this pair's marginal benefit.

        Must be computable without executing the comparison (no similarity
        evaluation): only profile shapes, current match state and the
        relationship graph may be consulted.  Returned values should be
        positive and roughly in [0, 2] so that schemes are comparable.
        """

    @abstractmethod
    def realized(self, decision: "MatchDecision", context: "ResolutionContext") -> float:
        """Actual benefit of an executed comparison (0 for non-matches).

        Called *after* the decision is recorded in the context's match
        graph.
        """


class QuantityBenefit(BenefitModel):
    """The baseline of [1]: every resolved pair is worth exactly 1.

    Estimation is uniform, so scheduling degenerates to pure
    match-likelihood (edge weight) ordering — the behaviour progressive
    relational ER exhibits.
    """

    name = "quantity"

    def estimate(self, uri_a: str, uri_b: str, context: "ResolutionContext") -> float:
        return 1.0

    def realized(self, decision: "MatchDecision", context: "ResolutionContext") -> float:
        return 1.0 if decision.is_match else 0.0


class AttributeCompletenessBenefit(BenefitModel):
    """Value = new attribute evidence added to the merged entity profile.

    Realized benefit of a match is the fraction of the smaller
    description's attribute-value pairs that were *not* already present in
    the other description — pure duplicates contribute nothing; richly
    complementary descriptions contribute up to 1.  The estimate is a
    **gentle tie-breaker** (range [0.75, 1.25]) combining two shape signals
    observable without comparing values: property-set complementarity (low
    overlap promises new properties) and profile-size imbalance (merging a
    sparse copy into a rich one enriches the sparse side most).  The tight
    range deliberately keeps match likelihood (the edge weight) dominant —
    a wide multiplier would steer the scheduler into low-evidence pairs
    and lose more attribute evidence to failed comparisons than it gains
    from better-targeted merges (measured in E6).
    """

    name = "attribute-completeness"

    def estimate(self, uri_a: str, uri_b: str, context: "ResolutionContext") -> float:
        desc_a = context.description(uri_a)
        desc_b = context.description(uri_b)
        if desc_a is None or desc_b is None:
            return 1.0
        props_a = set(desc_a.properties())
        props_b = set(desc_b.properties())
        if not props_a or not props_b:
            return 1.0
        union = len(props_a | props_b)
        complementarity = 1.0 - (len(props_a & props_b) / union if union else 0.0)
        size_a, size_b = len(desc_a), len(desc_b)
        imbalance = (
            abs(size_a - size_b) / max(size_a, size_b) if max(size_a, size_b) else 0.0
        )
        return 0.75 + 0.25 * complementarity + 0.25 * imbalance

    def realized(self, decision: "MatchDecision", context: "ResolutionContext") -> float:
        if not decision.is_match:
            return 0.0
        desc_a = context.description(decision.pair[0])
        desc_b = context.description(decision.pair[1])
        if desc_a is None or desc_b is None:
            return 0.0
        pairs_a = set(desc_a.pairs())
        pairs_b = set(desc_b.pairs())
        smaller = min(len(pairs_a), len(pairs_b))
        if smaller == 0:
            return 0.0
        new_evidence = len(pairs_b - pairs_a) + len(pairs_a - pairs_b)
        return min(1.0, new_evidence / (2 * smaller))


class EntityCoverageBenefit(BenefitModel):
    """Value = resolving a real-world entity that had no resolved pair yet.

    A match between two unresolved descriptions covers one new entity
    (benefit 1); extending an already-resolved cluster adds coverage only
    marginally (benefit 0.1).  The estimate reads the current match state:
    pairs of still-unresolved descriptions are promising, pairs inside
    resolved neighbourhoods are not urgent.
    """

    name = "entity-coverage"

    #: residual value of enlarging an already-covered entity
    extension_value = 0.1

    def estimate(self, uri_a: str, uri_b: str, context: "ResolutionContext") -> float:
        resolved_a = context.match_graph.is_resolved(uri_a)
        resolved_b = context.match_graph.is_resolved(uri_b)
        if not resolved_a and not resolved_b:
            return 1.0
        if resolved_a and resolved_b:
            return self.extension_value
        return 0.5

    def realized(self, decision: "MatchDecision", context: "ResolutionContext") -> float:
        if not decision.is_match:
            return 0.0
        left, right = decision.pair
        # The decision is already recorded, so "new entity" means the two
        # endpoints have no *other* partners.
        partners_left = context.match_graph.partners(left) - {right}
        partners_right = context.match_graph.partners(right) - {left}
        if not partners_left and not partners_right:
            return 1.0
        return self.extension_value


class RelationshipCompletenessBenefit(BenefitModel):
    """Value = relationship edges completed between resolved entities.

    A relationship edge (a → b in some KB) is *completed* when both of its
    endpoints are resolved; completed edges stitch resolved entities into
    resolved **entity graphs**.  The realized benefit of a match is a base
    value plus one for every incident relationship edge it completes (both
    endpoints now resolved).  The estimate favours pairs adjacent to
    already-resolved neighbours — exactly the frontier that finishes
    partially resolved graphs.
    """

    name = "relationship-completeness"

    base_value = 0.25

    #: multiplier when both endpoints already belong to resolved entities —
    #: an intra-cluster extension completes no new relationship edges worth
    #: spending budget on while unresolved frontier pairs remain
    redundancy_discount = 0.1

    def estimate(self, uri_a: str, uri_b: str, context: "ResolutionContext") -> float:
        resolved_a = context.match_graph.is_resolved(uri_a)
        resolved_b = context.match_graph.is_resolved(uri_b)
        if resolved_a and resolved_b:
            return self.base_value * self.redundancy_discount
        resolved_neighbors = 0
        total_neighbors = 0
        for uri in (uri_a, uri_b):
            for neighbor in context.neighbors(uri):
                total_neighbors += 1
                if context.match_graph.is_resolved(neighbor):
                    resolved_neighbors += 1
            for neighbor in context.inverse_neighbors(uri):
                total_neighbors += 1
                if context.match_graph.is_resolved(neighbor):
                    resolved_neighbors += 1
        if total_neighbors == 0:
            # A relationship-free entity is a one-entity graph: a single
            # match completes it — the cheapest graph on offer.
            return 1.0
        return self.base_value + resolved_neighbors / total_neighbors

    def realized(self, decision: "MatchDecision", context: "ResolutionContext") -> float:
        if not decision.is_match:
            return 0.0
        completed = 0
        for uri in decision.pair:
            for neighbor in context.neighbors(uri):
                if context.match_graph.is_resolved(neighbor):
                    completed += 1
        return self.base_value + float(completed)


#: registry used by experiment sweeps
BENEFITS: dict[str, type[BenefitModel]] = {
    cls.name: cls
    for cls in (
        QuantityBenefit,
        AttributeCompletenessBenefit,
        EntityCoverageBenefit,
        RelationshipCompletenessBenefit,
    )
}


def make_benefit(name: str) -> BenefitModel:
    """Instantiate a benefit model by name.

    Soft-deprecated shim: ``repro.api.registry.create("benefit", name)``
    is the registry-backed path with parameter validation; this helper
    remains for the callers wired before the registry existed.

    Raises:
        KeyError: for unknown names.
    """
    try:
        return BENEFITS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown benefit model {name!r}; choose from {sorted(BENEFITS)}"
        ) from None
