"""Progressive-ER instrumentation: benefit as a function of consumed budget.

A progressive resolver is judged not by its final quality but by how fast
quality accumulates: the curve of recall (or of one of MinoanER's quality
benefits) against comparisons executed, and the normalized area under it —
1.0 would mean every gold match was found before any non-match was tried.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field


@dataclass
class ProgressiveCurve:
    """One strategy's progress trace.

    Points are appended in execution order; ``comparisons`` must be
    non-decreasing.  Any number of named series can be tracked (recall,
    attribute completeness, …).
    """

    label: str = "strategy"
    comparisons: list[int] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def record(self, comparisons: int, **values: float) -> None:
        """Append one checkpoint.

        Raises:
            ValueError: if *comparisons* decreases or series diverge.
        """
        if self.comparisons and comparisons < self.comparisons[-1]:
            raise ValueError("comparisons must be non-decreasing")
        self.comparisons.append(comparisons)
        for name in values:
            if name not in self.series:
                # A series appearing late is backfilled with zeros for the
                # checkpoints recorded before it existed.
                self.series[name] = [0.0] * (len(self.comparisons) - 1)
        for name in self.series:
            if name in values:
                self.series[name].append(values[name])
            else:
                previous = self.series[name]
                previous.append(previous[-1] if previous else 0.0)
        lengths = {len(points) for points in self.series.values()}
        if lengths and lengths != {len(self.comparisons)}:
            raise ValueError("series out of sync with checkpoints")

    def __len__(self) -> int:
        return len(self.comparisons)

    def value_at(self, budget: int, series: str = "recall") -> float:
        """Series value after *budget* comparisons (step interpolation)."""
        points = self.series.get(series, [])
        if not points:
            return 0.0
        index = bisect_right(self.comparisons, budget) - 1
        if index < 0:
            return 0.0
        return points[index]

    def final(self, series: str = "recall") -> float:
        """Last recorded value of *series*."""
        points = self.series.get(series, [])
        return points[-1] if points else 0.0

    def auc(self, series: str = "recall", max_comparisons: int | None = None) -> float:
        """Normalized area under the step curve of *series*.

        Args:
            max_comparisons: normalize over this budget (defaults to the
                last recorded checkpoint).  The result is in [0, 1]: the
                mean series value over the budget.
        """
        return area_under_curve(
            self.comparisons, self.series.get(series, []), max_comparisons
        )

    def downsample(self, points: int) -> "ProgressiveCurve":
        """Evenly thinned copy (always keeps the final checkpoint)."""
        if points < 2 or len(self) <= points:
            return self
        step = (len(self) - 1) / (points - 1)
        indexes = sorted({round(i * step) for i in range(points)})
        thinned = ProgressiveCurve(label=self.label)
        for index in indexes:
            thinned.comparisons.append(self.comparisons[index])
        for name, values in self.series.items():
            thinned.series[name] = [values[i] for i in indexes]
        return thinned


def area_under_curve(
    x: list[int],
    y: list[float],
    max_x: int | None = None,
) -> float:
    """Normalized area under a non-decreasing step curve.

    The curve holds each value until the next checkpoint; the area is
    normalized by the total span so a perfect resolver scores close to 1.

    Raises:
        ValueError: if *x* and *y* differ in length.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if not x:
        return 0.0
    span = max_x if max_x is not None else x[-1]
    if span <= 0:
        return 0.0
    area = 0.0
    for i in range(len(x)):
        start = x[i]
        if start >= span:
            break
        end = min(x[i + 1], span) if i + 1 < len(x) else span
        if end > start:
            area += y[i] * (end - start)
    # The stretch before the first checkpoint contributes zero.
    if x[0] > 0:
        pass
    return area / span
