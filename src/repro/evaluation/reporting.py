"""ASCII tables and series for the experiment harness.

Every benchmark prints its result in the same layout: a header, aligned
columns, one row per configuration — the rows the paper's tables would
carry.  Progressive experiments print series blocks (one line per
checkpoint) suitable for eyeballing crossovers.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.evaluation.progressive import ProgressiveCurve


def format_table(
    rows: Iterable[Mapping[str, str]],
    title: str = "",
    first_column: str = "",
) -> str:
    """Render dict-rows as an aligned ASCII table.

    Args:
        rows: mappings column → formatted value; the union of keys defines
            the columns (in first-appearance order).
        title: optional heading line.
        first_column: optional name of a column to force leftmost.
    """
    row_list = [dict(row) for row in rows]
    columns: list[str] = []
    for row in row_list:
        for key in row:
            if key not in columns:
                columns.append(key)
    if first_column and first_column in columns:
        columns.remove(first_column)
        columns.insert(0, first_column)
    widths = {
        col: max(len(col), *(len(row.get(col, "")) for row in row_list), 1)
        for col in columns
    } if row_list else {col: len(col) for col in columns}

    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in row_list:
        lines.append(
            "  ".join(row.get(col, "").ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def format_series(
    curves: Iterable[ProgressiveCurve],
    series: str = "recall",
    points: int = 12,
    title: str = "",
) -> str:
    """Render progressive curves side by side at shared budget checkpoints.

    Args:
        curves: the strategies to compare.
        series: which tracked series to print.
        points: number of budget checkpoints to sample.
        title: optional heading.
    """
    curve_list = list(curves)
    if not curve_list:
        return title
    max_budget = max((c.comparisons[-1] for c in curve_list if c.comparisons), default=0)
    budgets = sorted({round(max_budget * i / points) for i in range(1, points + 1)})
    rows = []
    for budget in budgets:
        row = {"budget": str(budget)}
        for curve in curve_list:
            row[curve.label] = f"{curve.value_at(budget, series):.3f}"
        rows.append(row)
    heading = title or f"{series} vs comparisons"
    return format_table(rows, title=heading, first_column="budget")


def format_progress_chart(
    curves: Iterable[ProgressiveCurve],
    series: str = "recall",
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """A terminal line chart of progressive curves (one glyph per curve).

    Args:
        curves: strategies to plot (first curve gets ``*``, then ``o``,
            ``+``, ``x``, …; overlapping points show the earlier glyph).
        series: which tracked series to plot (y is clamped to [0, 1]).
        width / height: chart resolution in characters.
        title: optional heading.
    """
    glyphs = "*o+x#@%&"
    curve_list = [c for c in curves if c.comparisons]
    if not curve_list:
        return title
    max_x = max(c.comparisons[-1] for c in curve_list)
    if max_x <= 0:
        return title
    grid = [[" "] * width for _ in range(height)]
    for index, curve in enumerate(curve_list):
        glyph = glyphs[index % len(glyphs)]
        for col in range(width):
            budget = round(col / (width - 1) * max_x) if width > 1 else max_x
            value = min(max(curve.value_at(budget, series), 0.0), 1.0)
            row = height - 1 - round(value * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append("1.0 ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("    │" + "".join(row))
    lines.append("0.0 ┤" + "".join(grid[-1]))
    lines.append("    └" + "─" * width)
    lines.append(f"     0 comparisons{'':>{max(width - 24, 1)}}{max_x}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {curve.label}"
        for i, curve in enumerate(curve_list)
    )
    lines.append("     " + legend)
    return "\n".join(lines)


def format_sparkline(values: list[float], width: int = 40) -> str:
    """A coarse unicode sparkline of *values* (for quick scans in logs)."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    top = max(values) or 1.0
    return "".join(blocks[round(v / top * (len(blocks) - 1))] for v in values)
