"""Blocking- and matching-quality measures.

The blocking literature's standard triple:

* **PC (pairs completeness)** — fraction of gold matches whose pair
  co-occurs in at least one block (blocking recall);
* **PQ (pairs quality)** — fraction of distinct blocked comparisons that
  are gold matches (blocking precision);
* **RR (reduction ratio)** — 1 − blocked comparisons / brute-force
  comparisons (how much work blocking saved).

Matching quality is the usual precision/recall/F1 over decided pairs,
evaluated against the gold matches (optionally through the transitive
closure of predicted clusters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.block import BlockCollection
from repro.datasets.gold import GoldStandard


@dataclass(frozen=True)
class BlockingQuality:
    """PC/PQ/RR plus the raw counts behind them."""

    pairs_completeness: float
    pairs_quality: float
    reduction_ratio: float
    blocks: int
    distinct_comparisons: int
    total_comparisons: int
    covered_matches: int
    gold_matches: int

    def as_row(self) -> dict[str, str]:
        """Formatted experiment-table row."""
        return {
            "PC": f"{self.pairs_completeness:.3f}",
            "PQ": f"{self.pairs_quality:.4f}",
            "RR": f"{self.reduction_ratio:.3f}",
            "blocks": str(self.blocks),
            "comparisons": str(self.distinct_comparisons),
        }


@dataclass(frozen=True)
class MatchingQuality:
    """Precision/recall/F1 plus raw counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted: int
    gold_matches: int

    def as_row(self) -> dict[str, str]:
        """Formatted experiment-table row."""
        return {
            "precision": f"{self.precision:.3f}",
            "recall": f"{self.recall:.3f}",
            "F1": f"{self.f1:.3f}",
        }


def brute_force_comparisons(size1: int, size2: int | None = None) -> int:
    """Comparison count without blocking (dirty or clean-clean)."""
    if size2 is None:
        return size1 * (size1 - 1) // 2
    return size1 * size2


def evaluate_blocks(
    blocks: BlockCollection,
    gold: GoldStandard,
    collection_size1: int,
    collection_size2: int | None = None,
) -> BlockingQuality:
    """PC/PQ/RR of a block collection against *gold*.

    Args:
        blocks: the block collection to score.
        gold: ground truth.
        collection_size1: size of the (first) input collection.
        collection_size2: size of the second collection for clean-clean ER.
    """
    distinct = blocks.distinct_comparisons()
    return evaluate_comparisons(
        distinct,
        gold,
        collection_size1,
        collection_size2,
        blocks=len(blocks),
        total_comparisons=blocks.total_comparisons(),
    )


def evaluate_comparisons(
    comparisons: set[tuple[str, str]],
    gold: GoldStandard,
    collection_size1: int,
    collection_size2: int | None = None,
    blocks: int = 0,
    total_comparisons: int | None = None,
) -> BlockingQuality:
    """PC/PQ/RR of an arbitrary comparison set (e.g. after meta-blocking)."""
    covered = sum(1 for pair in gold.matches if pair in comparisons)
    gold_count = len(gold.matches)
    distinct_count = len(comparisons)
    brute = brute_force_comparisons(collection_size1, collection_size2)
    return BlockingQuality(
        pairs_completeness=covered / gold_count if gold_count else 0.0,
        pairs_quality=covered / distinct_count if distinct_count else 0.0,
        reduction_ratio=1.0 - distinct_count / brute if brute else 0.0,
        blocks=blocks,
        distinct_comparisons=distinct_count,
        total_comparisons=(
            total_comparisons if total_comparisons is not None else distinct_count
        ),
        covered_matches=covered,
        gold_matches=gold_count,
    )


def evaluate_matches(
    predicted: set[tuple[str, str]],
    gold: GoldStandard,
) -> MatchingQuality:
    """Precision/recall/F1 of predicted matching pairs against *gold*."""
    true_positives = sum(1 for pair in predicted if pair in gold.matches)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(gold.matches) if gold.matches else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return MatchingQuality(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        predicted=len(predicted),
        gold_matches=len(gold.matches),
    )
