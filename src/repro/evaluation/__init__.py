"""Evaluation: blocking quality, matching quality and progressive curves.

* :mod:`repro.evaluation.metrics` — the standard blocking measures (pairs
  completeness PC, pairs quality PQ, reduction ratio RR) and matching
  measures (precision, recall, F1);
* :mod:`repro.evaluation.progressive` — progressive-ER instrumentation:
  recall/benefit as a function of consumed comparison budget, and the
  normalized area under that curve;
* :mod:`repro.evaluation.reporting` — ASCII tables and series matching the
  rows/figures the experiment harness prints.
"""

from repro.evaluation.metrics import (
    BlockingQuality,
    MatchingQuality,
    evaluate_blocks,
    evaluate_comparisons,
    evaluate_matches,
)
from repro.evaluation.progressive import ProgressiveCurve, area_under_curve
from repro.evaluation.reporting import (
    format_table,
    format_series,
    format_progress_chart,
)
from repro.evaluation.clusters import BCubedScore, bcubed, closest_cluster_f1

__all__ = [
    "BlockingQuality",
    "MatchingQuality",
    "evaluate_blocks",
    "evaluate_comparisons",
    "evaluate_matches",
    "ProgressiveCurve",
    "area_under_curve",
    "format_table",
    "format_series",
    "format_progress_chart",
    "BCubedScore",
    "bcubed",
    "closest_cluster_f1",
]
