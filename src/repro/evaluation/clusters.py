"""Cluster-level evaluation: B-cubed and closest-cluster measures.

Pairwise precision/recall over-weights large clusters (a k-cluster holds
k·(k−1)/2 pairs), so dirty-ER evaluations also report **B-cubed**
(Bagga & Baldwin): for every description, the precision/recall of *its
own* predicted cluster against its gold cluster, averaged uniformly over
descriptions.  B-cubed rewards getting small clusters right as much as
large ones and penalizes both over-merging and over-splitting smoothly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class BCubedScore:
    """B-cubed precision/recall/F1."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of B-cubed precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def as_row(self) -> dict[str, str]:
        """Formatted experiment-table row."""
        return {
            "B3 precision": f"{self.precision:.3f}",
            "B3 recall": f"{self.recall:.3f}",
            "B3 F1": f"{self.f1:.3f}",
        }


def _index(clusters: Iterable[frozenset[str]]) -> dict[str, frozenset[str]]:
    index: dict[str, frozenset[str]] = {}
    for cluster in clusters:
        for uri in cluster:
            index[uri] = cluster
    return index


def bcubed(
    predicted: Iterable[frozenset[str]],
    gold: Iterable[frozenset[str]],
    universe: Iterable[str] | None = None,
) -> BCubedScore:
    """B-cubed score of *predicted* clusters against *gold* clusters.

    Args:
        predicted: predicted clustering (clusters may omit singletons).
        gold: reference clustering.
        universe: descriptions to average over; defaults to the union of
            both clusterings.  Descriptions missing from a clustering are
            treated as singletons — the natural ER reading, where an
            unclustered description is its own entity.

    Returns:
        The averaged :class:`BCubedScore`.
    """
    predicted_index = _index(predicted)
    gold_index = _index(gold)
    if universe is None:
        items = set(predicted_index) | set(gold_index)
    else:
        items = set(universe)
    if not items:
        return BCubedScore(0.0, 0.0)

    precision_sum = 0.0
    recall_sum = 0.0
    for uri in items:
        predicted_cluster = predicted_index.get(uri, frozenset((uri,)))
        gold_cluster = gold_index.get(uri, frozenset((uri,)))
        overlap = len(predicted_cluster & gold_cluster)
        precision_sum += overlap / len(predicted_cluster)
        recall_sum += overlap / len(gold_cluster)
    size = len(items)
    return BCubedScore(precision_sum / size, recall_sum / size)


def closest_cluster_f1(
    predicted: list[frozenset[str]],
    gold: list[frozenset[str]],
) -> float:
    """Mean best-match F1: each gold cluster scored against its most
    similar predicted cluster (greedy, not one-to-one).

    A coarse but interpretable "how many entities came out right" number
    used alongside B-cubed in ER studies.
    """
    if not gold:
        return 0.0
    total = 0.0
    for gold_cluster in gold:
        best = 0.0
        for predicted_cluster in predicted:
            overlap = len(gold_cluster & predicted_cluster)
            if overlap == 0:
                continue
            precision = overlap / len(predicted_cluster)
            recall = overlap / len(gold_cluster)
            best = max(best, 2 * precision * recall / (precision + recall))
        total += best
    return total / len(gold)
