"""N-Triples parsing and serialization.

N-Triples (https://www.w3.org/TR/n-triples/) is the line-oriented RDF
syntax that Web-of-data dumps (BTC, DBpedia exports) ship in.  The parser
here supports the full core grammar needed for entity resolution corpora:

* IRIs in angle brackets with ``\\u``/``\\U`` escapes,
* blank nodes (``_:label``),
* literals with escapes, language tags and datatype IRIs,
* comments and blank lines.

Datatypes and language tags are preserved on the :class:`Triple` but the
``object_value`` convenience accessor exposes the plain lexical form, which
is what blocking tokenizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


class NTriplesParseError(ValueError):
    """Raised on malformed N-Triples input, with line diagnostics."""

    def __init__(self, message: str, line_number: int = 0, line: str = "") -> None:
        detail = message
        if line_number:
            detail = f"line {line_number}: {message}"
        if line:
            detail = f"{detail}: {line.strip()!r}"
        super().__init__(detail)
        self.line_number = line_number


@dataclass(frozen=True)
class Triple:
    """One RDF statement.

    ``subject`` is an IRI or blank-node label, ``predicate`` an IRI,
    ``object`` an IRI, blank-node label or literal lexical form.  For
    literal objects, ``is_literal`` is True and ``language``/``datatype``
    carry the qualifiers (empty string when absent).
    """

    subject: str
    predicate: str
    object: str
    is_literal: bool = False
    language: str = ""
    datatype: str = ""

    @property
    def object_value(self) -> str:
        """The object's lexical form (same as ``object``; symmetry helper)."""
        return self.object


def parse_ntriples(text: str | Iterable[str]) -> Iterator[Triple]:
    """Parse N-Triples *text* (a string or iterable of lines) lazily.

    Raises:
        NTriplesParseError: on the first malformed statement.
    """
    # Split on '\n' only: str.splitlines() also breaks on U+0085/U+2028/…,
    # which are legal *inside* literals and must not terminate statements.
    lines = text.split("\n") if isinstance(text, str) else text
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_ntriples_line(stripped, line_number=number)


def parse_ntriples_line(line: str, line_number: int = 0) -> Triple:
    """Parse a single N-Triples statement.

    Raises:
        NTriplesParseError: if the statement is malformed.
    """
    cursor = _Cursor(line, line_number)
    subject = cursor.read_subject()
    cursor.skip_ws(required=True)
    predicate = cursor.read_iri()
    cursor.skip_ws(required=True)
    obj, is_literal, language, datatype = cursor.read_object()
    cursor.skip_ws()
    cursor.expect(".")
    cursor.skip_ws()
    if not cursor.at_end():
        cursor.fail("trailing content after '.'")
    return Triple(subject, predicate, obj, is_literal, language, datatype)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize *triples* back to canonical N-Triples text."""
    return "".join(serialize_triple(t) + "\n" for t in triples)


def serialize_triple(triple: Triple) -> str:
    """One statement, terminated by `` .`` (no newline)."""
    subject = _term(triple.subject)
    predicate = f"<{triple.predicate}>"
    if triple.is_literal:
        obj = '"' + _escape_literal(triple.object) + '"'
        if triple.language:
            obj += f"@{triple.language}"
        elif triple.datatype:
            obj += f"^^<{triple.datatype}>"
    else:
        obj = _term(triple.object)
    return f"{subject} {predicate} {obj} ."


def _term(value: str) -> str:
    if value.startswith("_:"):
        return value
    return f"<{value}>"


def _escape_literal(value: str) -> str:
    out = []
    for ch in value:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\t":
            out.append("\\t")
        else:
            out.append(ch)
    return "".join(out)


class _Cursor:
    """Character-level scanner over one statement line."""

    def __init__(self, line: str, line_number: int) -> None:
        self.line = line
        self.line_number = line_number
        self.pos = 0

    def fail(self, message: str) -> None:
        raise NTriplesParseError(message, self.line_number, self.line)

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        return self.line[self.pos] if self.pos < len(self.line) else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            self.fail(f"expected {ch!r}")
        self.pos += 1

    def skip_ws(self, required: bool = False) -> None:
        start = self.pos
        while self.peek() in (" ", "\t"):
            self.pos += 1
        if required and self.pos == start:
            self.fail("expected whitespace")

    def read_subject(self) -> str:
        if self.peek() == "<":
            return self.read_iri()
        if self.line.startswith("_:", self.pos):
            return self.read_bnode()
        self.fail("subject must be an IRI or blank node")
        raise AssertionError("unreachable")

    def read_bnode(self) -> str:
        start = self.pos
        self.pos += 2  # consume '_:'
        while not self.at_end() and (self.peek().isalnum() or self.peek() in "._-"):
            self.pos += 1
        label = self.line[start : self.pos]
        if label == "_:":
            self.fail("empty blank node label")
        return label

    def read_iri(self) -> str:
        self.expect("<")
        out: list[str] = []
        while True:
            if self.at_end():
                self.fail("unterminated IRI")
            ch = self.line[self.pos]
            self.pos += 1
            if ch == ">":
                break
            if ch == "\\":
                out.append(self._read_escape(unicode_only=True))
            elif ch in ' "{}|^`':
                self.fail(f"character {ch!r} must be escaped inside an IRI")
            else:
                out.append(ch)
        iri = "".join(out)
        if not iri:
            self.fail("empty IRI")
        return iri

    def read_object(self) -> tuple[str, bool, str, str]:
        ch = self.peek()
        if ch == "<":
            return self.read_iri(), False, "", ""
        if self.line.startswith("_:", self.pos):
            return self.read_bnode(), False, "", ""
        if ch == '"':
            return self.read_literal()
        self.fail("object must be an IRI, blank node or literal")
        raise AssertionError("unreachable")

    def read_literal(self) -> tuple[str, bool, str, str]:
        self.expect('"')
        out: list[str] = []
        while True:
            if self.at_end():
                self.fail("unterminated literal")
            ch = self.line[self.pos]
            self.pos += 1
            if ch == '"':
                break
            if ch == "\\":
                out.append(self._read_escape(unicode_only=False))
            else:
                out.append(ch)
        value = "".join(out)
        language = ""
        datatype = ""
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while not self.at_end() and (self.peek().isalnum() or self.peek() == "-"):
                self.pos += 1
            language = self.line[start : self.pos]
            if not language:
                self.fail("empty language tag")
        elif self.line.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.read_iri()
        return value, True, language, datatype

    def _read_escape(self, unicode_only: bool) -> str:
        if self.at_end():
            self.fail("dangling escape")
        ch = self.line[self.pos]
        self.pos += 1
        if ch == "u":
            return self._read_hex(4)
        if ch == "U":
            return self._read_hex(8)
        if not unicode_only and ch in _ESCAPES:
            return _ESCAPES[ch]
        self.fail(f"invalid escape \\{ch}")
        raise AssertionError("unreachable")

    def _read_hex(self, width: int) -> str:
        digits = self.line[self.pos : self.pos + width]
        if len(digits) != width:
            self.fail("truncated unicode escape")
        try:
            code = int(digits, 16)
        except ValueError:
            self.fail(f"invalid unicode escape digits {digits!r}")
            raise AssertionError("unreachable")
        self.pos += width
        try:
            return chr(code)
        except ValueError:
            self.fail(f"code point out of range: {digits}")
            raise AssertionError("unreachable")
