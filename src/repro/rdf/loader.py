"""Turn RDF triples into entity collections.

Grouping triples by subject yields one entity description per subject URI —
the standard Web-of-data framing of ER input (Christophides, Efthymiou,
Stefanidis, *Entity Resolution in the Web of Data*, 2015).  Predicates
become attribute names; IRI objects stay IRIs (feeding the relationship
graph), literal objects become attribute values.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.rdf.ntriples import Triple, parse_ntriples
from repro.rdf.turtle import parse_turtle

_RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"


def collection_from_triples(
    triples: Iterable[Triple],
    name: str = "collection",
    source: str = "",
    skip_blank_nodes: bool = True,
    skip_rdf_type: bool = False,
) -> EntityCollection:
    """Group *triples* by subject into an :class:`EntityCollection`.

    Args:
        triples: statements to group.
        name: collection label.
        source: source tag stamped on every description (defaults to *name*).
        skip_blank_nodes: drop triples whose subject is a blank node —
            blank nodes are document-scoped and not resolvable entities.
        skip_rdf_type: drop ``rdf:type`` statements (types are often
            KB-specific noise for schema-agnostic blocking; keep them by
            default since attribute-clustering blocking can exploit them).
    """
    source = source or name
    collection = EntityCollection(name=name)
    for triple in triples:
        if skip_blank_nodes and triple.subject.startswith("_:"):
            continue
        if skip_rdf_type and triple.predicate == _RDF_TYPE:
            continue
        description = collection.get(triple.subject)
        if description is None:
            description = EntityDescription(triple.subject, source=source)
            collection.add(description)
        description.add(triple.predicate, triple.object)
    return collection


def load_collection(
    path: str,
    name: str = "",
    source: str = "",
    **kwargs,
) -> EntityCollection:
    """Load an entity collection from an ``.nt`` or ``.ttl`` file.

    The syntax is chosen by file extension.  Additional keyword arguments
    are forwarded to :func:`collection_from_triples`.

    Raises:
        ValueError: for unsupported extensions.
        OSError: if the file cannot be read.
    """
    base = os.path.basename(path)
    stem, ext = os.path.splitext(base)
    name = name or stem
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if ext in (".nt", ".ntriples"):
        triples: Iterable[Triple] = parse_ntriples(text)
    elif ext in (".ttl", ".turtle"):
        triples = parse_turtle(text)
    else:
        raise ValueError(f"unsupported RDF extension {ext!r} (use .nt or .ttl)")
    return collection_from_triples(triples, name=name, source=source, **kwargs)
