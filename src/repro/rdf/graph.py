"""An in-memory triple store with SPO/POS/OSP indexes.

The loader and the dataset tooling need efficient "all triples of subject
X" and "all subjects with predicate P" access; a classic three-index design
(as used by every main-memory RDF engine) provides both in O(result).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.rdf.ntriples import Triple, serialize_ntriples


class TripleStore:
    """Indexed set of :class:`~repro.rdf.ntriples.Triple` records.

    Duplicate statements (same s/p/o/qualifiers) are stored once.

    >>> store = TripleStore()
    >>> _ = store.add(Triple("s", "p", "o"))
    >>> len(store)
    1
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: list[Triple] = []
        self._seen: set[Triple] = set()
        self._spo: dict[str, dict[str, list[Triple]]] = {}
        self._pos: dict[str, dict[str, list[Triple]]] = {}
        self._osp: dict[str, dict[str, list[Triple]]] = {}
        for triple in triples:
            self.add(triple)

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._seen

    def add(self, triple: Triple) -> bool:
        """Insert *triple*; returns False if it was already present."""
        if triple in self._seen:
            return False
        self._seen.add(triple)
        self._triples.append(triple)
        self._spo.setdefault(triple.subject, {}).setdefault(triple.predicate, []).append(triple)
        self._pos.setdefault(triple.predicate, {}).setdefault(triple.object, []).append(triple)
        self._osp.setdefault(triple.object, {}).setdefault(triple.subject, []).append(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def subjects(self) -> list[str]:
        """Distinct subjects, in first-seen order."""
        return list(self._spo)

    def predicates(self) -> list[str]:
        """Distinct predicates, in first-seen order."""
        return list(self._pos)

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: str | None = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching the given pattern (None = wildcard).

        Chooses the most selective index available for the bound terms.
        """
        if subject is not None:
            by_pred = self._spo.get(subject, {})
            if predicate is not None:
                candidates: Iterable[Triple] = by_pred.get(predicate, ())
            else:
                candidates = (t for ts in by_pred.values() for t in ts)
            if obj is not None:
                candidates = (t for t in candidates if t.object == obj)
            yield from candidates
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate, {})
            if obj is not None:
                yield from by_obj.get(obj, ())
            else:
                for ts in by_obj.values():
                    yield from ts
            return
        if obj is not None:
            by_subj = self._osp.get(obj, {})
            for ts in by_subj.values():
                yield from ts
            return
        yield from self._triples

    def triples_of(self, subject: str) -> list[Triple]:
        """All triples with the given subject."""
        return list(self.match(subject=subject))

    def objects(self, subject: str, predicate: str) -> list[str]:
        """Object values of (subject, predicate)."""
        return [t.object for t in self.match(subject=subject, predicate=predicate)]

    def to_ntriples(self) -> str:
        """Serialize the whole store to N-Triples text."""
        return serialize_ntriples(self._triples)
