"""A reader for the commonly used Turtle subset.

Turtle is the syntax hand-authored LOD samples usually come in.  The full
grammar is large; corpora for entity resolution exercise a stable subset,
which is what this reader supports:

* ``@prefix`` / ``@base`` directives (and SPARQL-style ``PREFIX``/``BASE``),
* prefixed names and IRIs,
* the ``a`` keyword for ``rdf:type``,
* predicate lists (``;``) and object lists (``,``),
* literals with language tags / datatypes, including long ``\"\"\"`` strings,
* integer/decimal/boolean shorthand literals,
* blank nodes (``_:x``) — but not anonymous ``[...]`` property lists,
  which the loader's corpora do not use (a clear error is raised).

The reader emits the same :class:`~repro.rdf.ntriples.Triple` records as
the N-Triples parser so downstream code is syntax-agnostic.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.rdf.ntriples import NTriplesParseError, Triple

_RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
_XSD = "http://www.w3.org/2001/XMLSchema#"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<iri><[^>]*>)
  | (?P<long_literal>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<literal>"(?:[^"\\\n]|\\.)*")
  | (?P<langtag>@[a-zA-Z][a-zA-Z0-9-]*)
  | (?P<dtype>\^\^)
  | (?P<punct>[.;,\[\]\(\)])
  | (?P<number>[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][\w.-]*)?:(?P<local>[\w.%-]*)
  | (?P<keyword>@?[A-Za-z_][\w-]*)
    """,
    re.VERBOSE,
)

_ESCAPE_RE = re.compile(r"\\(.)|\\u([0-9a-fA-F]{4})|\\U([0-9a-fA-F]{8})")
_ESCAPES = {"t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f", '"': '"', "\\": "\\", "'": "'"}


def parse_turtle(text: str) -> Iterator[Triple]:
    """Parse Turtle *text*, yielding triples in document order.

    Raises:
        NTriplesParseError: on unsupported or malformed syntax.
    """
    return _TurtleReader(text).triples()


def serialize_turtle(
    triples: "Iterable[Triple]",
    prefixes: dict[str, str] | None = None,
) -> str:
    """Serialize *triples* as Turtle, grouped by subject.

    Args:
        triples: statements to write (grouped by subject, predicate lists
            joined with ``;``, object lists with ``,``).
        prefixes: prefix → namespace declarations; matching IRIs are
            compacted to prefixed names.

    The output round-trips through :func:`parse_turtle`.
    """
    prefixes = prefixes or {}

    def compact(iri: str) -> str:
        if iri.startswith("_:"):
            return iri
        for prefix, namespace in prefixes.items():
            if iri.startswith(namespace):
                local = iri[len(namespace):]
                if local and all(ch.isalnum() or ch in "._-" for ch in local):
                    return f"{prefix}:{local}"
        return f"<{iri}>"

    def term(triple: Triple) -> str:
        if not triple.is_literal:
            return compact(triple.object)
        escaped = (
            triple.object.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        rendered = f'"{escaped}"'
        if triple.language:
            rendered += f"@{triple.language}"
        elif triple.datatype:
            rendered += f"^^{compact(triple.datatype)}"
        return rendered

    by_subject: dict[str, dict[str, list[Triple]]] = {}
    for triple in triples:
        by_subject.setdefault(triple.subject, {}).setdefault(
            triple.predicate, []
        ).append(triple)

    lines: list[str] = []
    for prefix, namespace in prefixes.items():
        lines.append(f"@prefix {prefix}: <{namespace}> .")
    if prefixes:
        lines.append("")
    for subject, by_predicate in by_subject.items():
        subject_term = subject if subject.startswith("_:") else compact(subject)
        predicate_lines = []
        for predicate, group in by_predicate.items():
            predicate_term = (
                "a" if predicate == _RDF_TYPE else compact(predicate)
            )
            objects = ", ".join(term(t) for t in group)
            predicate_lines.append(f"    {predicate_term} {objects}")
        lines.append(f"{subject_term}\n" + " ;\n".join(predicate_lines) + " .")
    return "\n".join(lines) + ("\n" if lines else "")


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise NTriplesParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        if match.group("local") is not None and kind in ("local", "name"):
            prefix = match.group("name") or ""
            tokens.append(_Token("pname", f"{prefix}:{match.group('local')}"))
            continue
        assert kind is not None
        value = match.group(kind)
        # '@prefix'/'@base' lexes as a language tag; reclassify directives.
        if kind == "langtag" and value.lower() in ("@prefix", "@base"):
            kind = "keyword"
        tokens.append(_Token(kind, value))
    return tokens


def _unescape(raw: str) -> str:
    def replace(match: re.Match) -> str:
        simple, u4, u8 = match.groups()
        if u4:
            return chr(int(u4, 16))
        if u8:
            return chr(int(u8, 16))
        if simple in _ESCAPES:
            return _ESCAPES[simple]
        raise NTriplesParseError(f"invalid escape \\{simple}")

    return _ESCAPE_RE.sub(replace, raw)


class _TurtleReader:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._pos = 0
        self._prefixes: dict[str, str] = {}
        self._base = ""

    # -- token stream ----------------------------------------------------

    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise NTriplesParseError("unexpected end of Turtle document")
        self._pos += 1
        return token

    def _expect_punct(self, value: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != value:
            raise NTriplesParseError(f"expected {value!r}, got {token.value!r}")

    # -- grammar ------------------------------------------------------------

    def triples(self) -> Iterator[Triple]:
        while self._peek() is not None:
            token = self._peek()
            assert token is not None
            if token.kind == "keyword" and token.value.lower() in ("@prefix", "prefix"):
                self._read_prefix()
            elif token.kind == "keyword" and token.value.lower() in ("@base", "base"):
                self._read_base()
            else:
                yield from self._read_statement()

    def _read_prefix(self) -> None:
        directive = self._next()
        pname = self._next()
        if pname.kind != "pname" or not pname.value.endswith(":"):
            raise NTriplesParseError(f"malformed prefix declaration near {pname.value!r}")
        iri = self._next()
        if iri.kind != "iri":
            raise NTriplesParseError("prefix declaration requires an IRI")
        self._prefixes[pname.value[:-1]] = self._resolve_iri(iri.value)
        if directive.value.startswith("@"):
            self._expect_punct(".")

    def _read_base(self) -> None:
        directive = self._next()
        iri = self._next()
        if iri.kind != "iri":
            raise NTriplesParseError("base declaration requires an IRI")
        self._base = iri.value[1:-1]
        if directive.value.startswith("@"):
            self._expect_punct(".")

    def _read_statement(self) -> Iterator[Triple]:
        subject = self._read_term(position="subject")
        while True:
            predicate = self._read_predicate()
            while True:
                yield self._make_triple(subject, predicate)
                token = self._peek()
                if token is not None and token.kind == "punct" and token.value == ",":
                    self._next()
                    continue
                break
            token = self._peek()
            if token is not None and token.kind == "punct" and token.value == ";":
                self._next()
                # Turtle allows trailing ';' before '.'
                nxt = self._peek()
                if nxt is not None and nxt.kind == "punct" and nxt.value == ".":
                    break
                continue
            break
        self._expect_punct(".")

    def _read_predicate(self) -> str:
        token = self._next()
        if token.kind == "keyword" and token.value == "a":
            return _RDF_TYPE
        if token.kind == "iri":
            return self._resolve_iri(token.value)
        if token.kind == "pname":
            return self._expand_pname(token.value)
        raise NTriplesParseError(f"expected predicate, got {token.value!r}")

    def _read_term(self, position: str) -> str:
        token = self._next()
        if token.kind == "iri":
            return self._resolve_iri(token.value)
        if token.kind == "pname":
            if token.value.startswith("_:"):
                return token.value
            return self._expand_pname(token.value)
        if token.kind == "keyword" and token.value.startswith("_"):
            return token.value
        if token.kind == "punct" and token.value == "[":
            raise NTriplesParseError(
                "anonymous blank-node property lists are outside the supported subset"
            )
        raise NTriplesParseError(f"expected {position}, got {token.value!r}")

    def _make_triple(self, subject: str, predicate: str) -> Triple:
        token = self._next()
        if token.kind in ("iri",):
            return Triple(subject, predicate, self._resolve_iri(token.value))
        if token.kind == "pname":
            if token.value.startswith("_:"):
                return Triple(subject, predicate, token.value)
            return Triple(subject, predicate, self._expand_pname(token.value))
        if token.kind in ("literal", "long_literal"):
            raw = token.value[3:-3] if token.kind == "long_literal" else token.value[1:-1]
            value = _unescape(raw)
            language = ""
            datatype = ""
            nxt = self._peek()
            if nxt is not None and nxt.kind == "langtag":
                language = self._next().value[1:]
            elif nxt is not None and nxt.kind == "dtype":
                self._next()
                dt = self._next()
                if dt.kind == "iri":
                    datatype = self._resolve_iri(dt.value)
                elif dt.kind == "pname":
                    datatype = self._expand_pname(dt.value)
                else:
                    raise NTriplesParseError("datatype must be an IRI")
            return Triple(subject, predicate, value, True, language, datatype)
        if token.kind == "number":
            datatype = _XSD + ("decimal" if "." in token.value or "e" in token.value.lower() else "integer")
            return Triple(subject, predicate, token.value, True, "", datatype)
        if token.kind == "keyword" and token.value in ("true", "false"):
            return Triple(subject, predicate, token.value, True, "", _XSD + "boolean")
        raise NTriplesParseError(f"expected object, got {token.value!r}")

    # -- IRI resolution -----------------------------------------------------

    def _resolve_iri(self, bracketed: str) -> str:
        iri = bracketed[1:-1]
        if self._base and "://" not in iri and not iri.startswith(("urn:", "_:")):
            return self._base + iri
        return iri

    def _expand_pname(self, pname: str) -> str:
        prefix, _, local = pname.partition(":")
        if prefix not in self._prefixes:
            raise NTriplesParseError(f"undeclared prefix {prefix!r}")
        return self._prefixes[prefix] + local
