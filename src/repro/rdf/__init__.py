"""RDF substrate: parsing, storage and loading of Linked Data.

MinoanER resolves entities "described by linked data in the Web (e.g., in
RDF)".  With no network and no third-party RDF stack available, this package
implements the substrate from scratch:

* :mod:`repro.rdf.ntriples` — a line-oriented N-Triples parser/serializer
  (the format LOD dumps such as BTC are published in);
* :mod:`repro.rdf.turtle` — a reader for the commonly used Turtle subset
  (prefixes, ``a``, predicate/object lists);
* :mod:`repro.rdf.graph` — an in-memory triple store with SPO/POS/OSP
  indexes and simple pattern matching;
* :mod:`repro.rdf.loader` — grouping triples by subject into
  :class:`~repro.model.EntityCollection` instances.
"""

from repro.rdf.ntriples import (
    Triple,
    NTriplesParseError,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.rdf.turtle import parse_turtle, serialize_turtle
from repro.rdf.graph import TripleStore
from repro.rdf.loader import collection_from_triples, load_collection

__all__ = [
    "Triple",
    "NTriplesParseError",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "parse_turtle",
    "serialize_turtle",
    "TripleStore",
    "collection_from_triples",
    "load_collection",
]
