"""Deterministic randomness helpers.

Every stochastic component of the reproduction (dataset synthesis, noise
injection, random-order baselines) routes its randomness through these
helpers so that a seed fully determines the output — a requirement for
reproducible experiment tables.
"""

from __future__ import annotations

import hashlib
import random


def deterministic_rng(seed: int | str, *salt: object) -> random.Random:
    """Return a :class:`random.Random` derived from *seed* and *salt* parts.

    Salting lets independent components (e.g. two KBs synthesized from the
    same experiment seed) draw from decorrelated streams while remaining
    reproducible.
    """
    material = repr((seed, salt)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def stable_hash(value: str, buckets: int) -> int:
    """Hash *value* into ``[0, buckets)`` stably across processes.

    Python's builtin :func:`hash` is salted per-process (PYTHONHASHSEED),
    which would make MapReduce partitioning non-deterministic between runs;
    the simulated cluster uses this helper instead, mirroring Hadoop's
    ``HashPartitioner`` determinism.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % buckets


_U64 = (1 << 64) - 1
#: splitmix64 round constants (Steele et al.); shared with the vectorized
#: batch hashing in :mod:`repro.mapreduce.records` — the two must agree.
MIX_GAMMA = 0x9E3779B97F4A7C15
MIX_M1 = 0xBF58476D1CE4E5B9
MIX_M2 = 0x94D049BB133111EB


def stable_hash_int(value: int, buckets: int) -> int:
    """Hash an integer into ``[0, buckets)`` stably across processes.

    A splitmix64 finalizer over the value's low 64 bits: no string
    formatting, no digest allocation — the cheap path MapReduce
    partitioning takes for packed int64 pair keys and dense entity ids.
    Bit-compatible with the vectorized
    :func:`repro.mapreduce.records.stable_hash_int_array`.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    z = (value + MIX_GAMMA) & _U64
    z = ((z ^ (z >> 30)) * MIX_M1) & _U64
    z = ((z ^ (z >> 27)) * MIX_M2) & _U64
    z = z ^ (z >> 31)
    return z % buckets
