"""Deterministic randomness helpers.

Every stochastic component of the reproduction (dataset synthesis, noise
injection, random-order baselines) routes its randomness through these
helpers so that a seed fully determines the output — a requirement for
reproducible experiment tables.
"""

from __future__ import annotations

import hashlib
import random


def deterministic_rng(seed: int | str, *salt: object) -> random.Random:
    """Return a :class:`random.Random` derived from *seed* and *salt* parts.

    Salting lets independent components (e.g. two KBs synthesized from the
    same experiment seed) draw from decorrelated streams while remaining
    reproducible.
    """
    material = repr((seed, salt)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def stable_hash(value: str, buckets: int) -> int:
    """Hash *value* into ``[0, buckets)`` stably across processes.

    Python's builtin :func:`hash` is salted per-process (PYTHONHASHSEED),
    which would make MapReduce partitioning non-deterministic between runs;
    the simulated cluster uses this helper instead, mirroring Hadoop's
    ``HashPartitioner`` determinism.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % buckets
