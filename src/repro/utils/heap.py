"""An addressable binary max-heap.

The progressive scheduler (:mod:`repro.core.scheduler`) keeps every candidate
comparison in a priority queue keyed by its current utility.  The *update*
phase of MinoanER re-weights comparisons whose neighbourhood was touched by a
new match, which requires an efficient *increase-key* / *decrease-key*
operation — something :mod:`heapq` does not offer.  This module provides a
classic addressable binary heap with O(log n) push/pop/update and O(1)
priority lookup by item.

Items must be hashable.  Ties are broken deterministically by insertion
order so that runs are reproducible.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class AddressableMaxHeap(Generic[T]):
    """Binary max-heap supporting priority updates of queued items.

    >>> heap = AddressableMaxHeap()
    >>> heap.push("a", 1.0)
    >>> heap.push("b", 3.0)
    >>> heap.push("c", 2.0)
    >>> heap.update("a", 5.0)
    >>> heap.pop()
    ('a', 5.0)
    >>> heap.pop()
    ('b', 3.0)
    """

    __slots__ = ("_entries", "_positions", "_counter")

    def __init__(self) -> None:
        # Each entry is [priority, tie_breaker, item].
        self._entries: list[list] = []
        self._positions: dict[T, int] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: T) -> bool:
        return item in self._positions

    def priority(self, item: T) -> float:
        """Return the current priority of *item*.

        Raises:
            KeyError: if *item* is not queued.
        """
        return self._entries[self._positions[item]][0]

    def push(self, item: T, priority: float) -> None:
        """Insert *item* with *priority*.

        Raises:
            ValueError: if *item* is already queued (use :meth:`update`).
        """
        if item in self._positions:
            raise ValueError(f"item already queued: {item!r}")
        # Earlier insertions win ties, hence the negated counter for a
        # max-heap ordering on [priority, tie_breaker].
        entry = [priority, -self._counter, item]
        self._counter += 1
        self._entries.append(entry)
        self._positions[item] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def push_or_update(self, item: T, priority: float) -> None:
        """Insert *item*, or change its priority if already queued."""
        if item in self._positions:
            self.update(item, priority)
        else:
            self.push(item, priority)

    def update(self, item: T, priority: float) -> None:
        """Change the priority of a queued *item*.

        Raises:
            KeyError: if *item* is not queued.
        """
        pos = self._positions[item]
        old = self._entries[pos][0]
        self._entries[pos][0] = priority
        if priority > old:
            self._sift_up(pos)
        elif priority < old:
            self._sift_down(pos)

    def increase_if_higher(self, item: T, priority: float) -> bool:
        """Raise the priority of *item* to *priority* if that is higher.

        Returns:
            True if the priority changed.
        """
        pos = self._positions[item]
        if priority <= self._entries[pos][0]:
            return False
        self._entries[pos][0] = priority
        self._sift_up(pos)
        return True

    def add_to_priority(self, item: T, delta: float) -> float:
        """Add *delta* to the priority of a queued *item*.

        Returns:
            The new priority.
        """
        pos = self._positions[item]
        new = self._entries[pos][0] + delta
        self.update(item, new)
        return new

    def peek(self) -> tuple[T, float]:
        """Return ``(item, priority)`` of the maximum without removing it.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._entries:
            raise IndexError("peek from an empty heap")
        entry = self._entries[0]
        return entry[2], entry[0]

    def pop(self) -> tuple[T, float]:
        """Remove and return ``(item, priority)`` of the maximum.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._entries:
            raise IndexError("pop from an empty heap")
        top = self._entries[0]
        last = self._entries.pop()
        del self._positions[top[2]]
        if self._entries:
            self._entries[0] = last
            self._positions[last[2]] = 0
            self._sift_down(0)
        return top[2], top[0]

    def remove(self, item: T) -> float:
        """Remove *item* from the heap and return its priority.

        Raises:
            KeyError: if *item* is not queued.
        """
        pos = self._positions.pop(item)
        entry = self._entries[pos]
        last = self._entries.pop()
        if pos < len(self._entries):
            self._entries[pos] = last
            self._positions[last[2]] = pos
            self._sift_down(pos)
            self._sift_up(pos)
        return entry[0]

    def discard(self, item: T) -> bool:
        """Remove *item* if queued.  Returns True if it was present."""
        if item not in self._positions:
            return False
        self.remove(item)
        return True

    def items(self) -> Iterator[tuple[T, float]]:
        """Iterate over ``(item, priority)`` pairs in arbitrary heap order."""
        for priority, _tie, item in self._entries:
            yield item, priority

    def clear(self) -> None:
        """Drop every queued item."""
        self._entries.clear()
        self._positions.clear()

    # -- internal sifting -------------------------------------------------

    def _ordered_before(self, a: int, b: int) -> bool:
        ea, eb = self._entries[a], self._entries[b]
        return (ea[0], ea[1]) > (eb[0], eb[1])

    def _swap(self, a: int, b: int) -> None:
        entries = self._entries
        entries[a], entries[b] = entries[b], entries[a]
        self._positions[entries[a][2]] = a
        self._positions[entries[b][2]] = b

    def _sift_up(self, pos: int) -> None:
        while pos > 0:
            parent = (pos - 1) >> 1
            if self._ordered_before(pos, parent):
                self._swap(pos, parent)
                pos = parent
            else:
                break

    def _sift_down(self, pos: int) -> None:
        size = len(self._entries)
        while True:
            left = 2 * pos + 1
            right = left + 1
            best = pos
            if left < size and self._ordered_before(left, best):
                best = left
            if right < size and self._ordered_before(right, best):
                best = right
            if best == pos:
                break
            self._swap(pos, best)
            pos = best
