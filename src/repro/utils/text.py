"""Text normalization helpers used by the tokenizer and similarity functions.

Entity descriptions in the Web of Data mix scripts, punctuation conventions
and casing.  Token blocking (and the token-based similarity functions) must
see a canonical form, otherwise trivially-matching descriptions land in
disjoint blocks.  These helpers implement the normalization pipeline used
throughout the reproduction: Unicode accent folding, lower-casing, and
splitting on every non-alphanumeric boundary.
"""

from __future__ import annotations

import re
import unicodedata

# Unicode letters and digits (underscore excluded): Web-of-data values mix
# scripts, and an ASCII-only pattern would make non-Latin descriptions
# invisible to blocking.
_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)
_WS_RE = re.compile(r"\s+")


def strip_accents(text: str) -> str:
    """Fold accented characters to their base form (``é`` → ``e``)."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize(text: str) -> str:
    """Lower-case, accent-fold and collapse whitespace."""
    return _WS_RE.sub(" ", strip_accents(text).lower()).strip()


def token_split(text: str, min_length: int = 1) -> list[str]:
    """Split *text* into normalized alphanumeric tokens.

    Args:
        text: raw attribute value or URI fragment.
        min_length: drop tokens shorter than this (blocking typically uses
            ``min_length=2`` or ``3`` to avoid huge stop-token blocks).

    Returns:
        Tokens in order of appearance, possibly with duplicates.
    """
    tokens = _TOKEN_RE.findall(normalize(text))
    if min_length > 1:
        tokens = [t for t in tokens if len(t) >= min_length]
    return tokens
