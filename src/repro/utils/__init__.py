"""Shared utility data structures and text helpers.

This package hosts the low-level building blocks used across the MinoanER
reproduction: an addressable max-heap used by the comparison scheduler, a
disjoint-set forest used by clustering and the relationship-completeness
benefit model, text normalization used by the tokenizer, and deterministic
random-number helpers used by the dataset synthesizer.
"""

from repro.utils.heap import AddressableMaxHeap
from repro.utils.disjoint_set import DisjointSet
from repro.utils.text import normalize, strip_accents, token_split
from repro.utils.rng import deterministic_rng, stable_hash

__all__ = [
    "AddressableMaxHeap",
    "DisjointSet",
    "normalize",
    "strip_accents",
    "token_split",
    "deterministic_rng",
    "stable_hash",
]
