"""Disjoint-set forest (union-find) with path compression and union by size.

Used by the match-graph clustering (:mod:`repro.matching.clustering`) to
derive resolved entities from pairwise match decisions, and by the
relationship-completeness benefit model (:mod:`repro.core.benefit`) to track
how many *entity graphs* have been fully resolved.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSet(Generic[T]):
    """Union-find over arbitrary hashable items.

    Items are added lazily on first use; :meth:`find` on an unseen item
    creates a singleton set for it.

    >>> ds = DisjointSet()
    >>> ds.union("a", "b")
    True
    >>> ds.connected("a", "b")
    True
    >>> ds.connected("a", "c")
    False
    """

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        """Number of items tracked."""
        return len(self._parent)

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def add(self, item: T) -> bool:
        """Register *item* as a singleton set.  Returns True if it was new."""
        if item in self._parent:
            return False
        self._parent[item] = item
        self._size[item] = 1
        self._count += 1
        return True

    def find(self, item: T) -> T:
        """Return the canonical representative of *item*'s set."""
        self.add(item)
        root = item
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: T, b: T) -> bool:
        """Merge the sets containing *a* and *b*.

        Returns:
            True if a merge happened (they were in different sets).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: T, b: T) -> bool:
        """True if *a* and *b* are in the same set (adds unseen items)."""
        return self.find(a) == self.find(b)

    def size_of(self, item: T) -> int:
        """Size of the set containing *item*."""
        return self._size[self.find(item)]

    def items(self) -> list[T]:
        """All tracked items, in insertion order."""
        return list(self._parent)

    def sets(self) -> Iterator[frozenset[T]]:
        """Iterate over the current sets as frozensets."""
        groups: dict[T, list[T]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        for members in groups.values():
            yield frozenset(members)

    def to_clusters(self) -> list[frozenset[T]]:
        """Return all sets, largest first, deterministic order."""
        clusters = list(self.sets())
        clusters.sort(key=lambda c: (-len(c), sorted(map(repr, c))))
        return clusters
