"""The zero-copy shared-memory data plane of the MapReduce backend.

The process executor used to pay for its parallelism twice: every CSR
chunk, posting array and shuffle batch crossed the process boundary as a
pickle through a pipe, so adding workers added serialization instead of
removing work.  This module is the replacement transport:

* the **driver** owns a :class:`SharedBlockStore` per parallel driver
  call — input arrays are *published* once into
  ``multiprocessing.shared_memory`` segments created **before** the pool
  forks, and per-task output *arenas* are pre-allocated (``/dev/shm``
  pages are lazily committed, so generous arena bounds cost nothing
  until written);
* **workers** receive only :class:`ArrayRef` descriptors —
  ``(segment, dtype, shape, offset)`` — and reconstruct numpy views with
  :func:`attach_array`, zero-copy; map output is gathered straight into
  the task's arena through an :class:`ArenaWriter`, so the shuffle moves
  descriptors through the queues, never materialized batches.

Lifecycle and ownership rules (the contract every driver honours):

1. the store is created, filled and registered with the engine *before*
   any task ships; workers never create segments — attach-only;
2. the driver guarantees ``close()`` + ``unlink()`` in a ``finally``
   block, so success, crash and phase re-drive after a worker death all
   converge to zero surviving ``repro_shm_*`` segments; both calls are
   idempotent and a re-driven phase simply re-attaches (and re-writes
   its arenas — map tasks are pure, so the overwrite is byte-identical);
3. worker attachments are cached per segment and evicted wholesale when
   a segment of a *different* store arrives (one store is live at a
   time per driver call, so the cache stays one store deep).

Fork-only constraint: the plane assumes the ``fork`` start method (the
:class:`~repro.mapreduce.engine.ProcessExecutor` requirement) — children
inherit the driver's resource-tracker connection, so the driver-side
``unlink()`` is the single point of truth for segment disposal and no
tracker leak warnings are emitted for worker attachments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

try:  # pragma: no cover - exercised wherever the int-ID jobs run
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - non-POSIX fallback
    _shared_memory = None  # type: ignore[assignment]

from repro.obs.metrics import Counter, global_registry

#: every segment name starts with this (the CI leak check greps for it)
SEGMENT_PREFIX = "repro_shm"
#: allocation granularity inside a segment (numpy-friendly alignment)
ALIGNMENT = 16

#: process-wide data-plane counters; each process (driver or forked
#: worker) counts its own activity
SEGMENTS_CREATED = Counter()
SEGMENT_BYTES = Counter()
ATTACH_COUNT = Counter()

global_registry().register("repro.mapreduce.shm.segments.count", SEGMENTS_CREATED)
global_registry().register("repro.mapreduce.shm.segment.bytes.count", SEGMENT_BYTES)
global_registry().register("repro.mapreduce.shm.attach.count", ATTACH_COUNT)


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class ArrayRef:
    """A picklable descriptor of one numpy array inside a segment.

    This is the *only* thing that crosses the process boundary for
    published inputs and shuffled batches: attach the segment, overlay
    ``np.ndarray(shape, dtype, buffer, offset)``, and the worker sees
    the driver's bytes without a copy.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Payload bytes the descriptor points at."""
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ArenaRef:
    """A picklable handle to one task's pre-allocated output arena."""

    segment: str
    capacity: int


def shared_memory_available() -> bool:
    """True when the plane can run (numpy + POSIX shared memory)."""
    return np is not None and _shared_memory is not None


class SharedBlockStore:
    """Driver-owned registry of the shared segments behind one job chain.

    Segments are named ``repro_shm_<pid>_<store>_<n>`` so a leak is
    attributable and the test suite (and CI) can assert ``/dev/shm`` is
    clean by prefix alone.  The store is a context manager; leaving the
    ``with`` block closes *and* unlinks every segment.
    """

    _next_store_id = 0

    def __init__(self) -> None:
        if not shared_memory_available():  # pragma: no cover - POSIX container
            raise RuntimeError(
                "SharedBlockStore requires numpy and multiprocessing.shared_memory"
            )
        cls = SharedBlockStore
        self.store_id = f"{SEGMENT_PREFIX}_{os.getpid()}_{cls._next_store_id}"
        cls._next_store_id += 1
        self._segments: dict[str, object] = {}
        self._sequence = 0

    # -- segment creation ----------------------------------------------------

    def _create_segment(self, nbytes: int):
        while True:
            name = f"{self.store_id}_{self._sequence}"
            self._sequence += 1
            try:
                segment = _shared_memory.SharedMemory(
                    name=name, create=True, size=max(int(nbytes), 1)
                )
            except FileExistsError:  # pragma: no cover - stale name collision
                continue
            self._segments[name] = segment
            SEGMENTS_CREATED.inc()
            SEGMENT_BYTES.inc(segment.size)
            return segment

    def publish_arrays(self, *arrays: "np.ndarray") -> tuple[ArrayRef, ...]:
        """Copy *arrays* into one fresh segment; return their descriptors.

        Publication is the single copy the plane ever makes of an input:
        after it, any number of workers (and re-driven phases) read the
        same physical pages.
        """
        flats = [np.ascontiguousarray(array) for array in arrays]
        offsets = []
        cursor = 0
        for flat in flats:
            offsets.append(cursor)
            cursor = _align(cursor + flat.nbytes)
        segment = self._create_segment(cursor)
        refs = []
        for flat, offset in zip(flats, offsets):
            dest = np.ndarray(
                flat.shape, dtype=flat.dtype, buffer=segment.buf, offset=offset
            )
            dest[...] = flat
            refs.append(
                ArrayRef(segment.name, flat.dtype.str, flat.shape, offset)
            )
        return tuple(refs)

    def allocate(self, capacity: int) -> ArenaRef:
        """Pre-allocate one task's output arena (lazily-committed pages)."""
        segment = self._create_segment(capacity)
        return ArenaRef(segment.name, segment.size)

    # -- driver-side access --------------------------------------------------

    def view(self, ref: ArrayRef) -> "np.ndarray":
        """Zero-copy view of *ref* on a segment this store owns."""
        segment = self._segments[ref.segment]
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=segment.buf,
            offset=ref.offset,
        )

    def fetch(self, ref: ArrayRef) -> "np.ndarray":
        """A *copy* of *ref*'s array — safe to use after the store dies."""
        return self.view(ref).copy()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the driver's mappings; idempotent.

        A mapping with live numpy views cannot release its buffer
        (``BufferError``); such handles are skipped — their memory is
        freed when the views go away — but the segment still gets
        unlinked, so nothing survives in ``/dev/shm`` either way.
        """
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live caller views
                pass

    def unlink(self) -> None:
        """Remove every segment from ``/dev/shm``; idempotent."""
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def destroy(self) -> None:
        """``close()`` + ``unlink()`` — the guaranteed-cleanup entry point."""
        self.close()
        self.unlink()
        self._segments = {}

    def __enter__(self) -> "SharedBlockStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()


# ---------------------------------------------------------------------------
# Worker-side attachment
# ---------------------------------------------------------------------------

#: per-process cache of attached segments, keyed by segment name; one
#: store deep by construction (see eviction in :func:`attach_segment`)
_ATTACHED: dict[str, object] = {}


def _store_of(segment: str) -> str:
    return segment.rsplit("_", 1)[0]


def attach_segment(segment: str):
    """The (cached) buffer of *segment*, attaching on first use.

    Attaching a segment from a new store evicts every cached handle of
    older stores first — a long-lived pool worker holds at most one
    driver call's segments mapped.  Eviction tolerates ``BufferError``
    (a straggler view keeps the mapping alive until it is collected).
    """
    handle = _ATTACHED.get(segment)
    if handle is None:
        store = _store_of(segment)
        for name in [n for n in _ATTACHED if _store_of(n) != store]:
            old = _ATTACHED.pop(name)
            try:
                old.close()
            except BufferError:  # pragma: no cover - straggler views
                pass
        handle = _shared_memory.SharedMemory(name=segment, create=False)
        _ATTACHED[segment] = handle
        ATTACH_COUNT.inc()
    return handle.buf


def attach_array(ref: ArrayRef) -> "np.ndarray":
    """Zero-copy numpy view of *ref* in the calling process."""
    return np.ndarray(
        ref.shape,
        dtype=np.dtype(ref.dtype),
        buffer=attach_segment(ref.segment),
        offset=ref.offset,
    )


class ArenaWriter:
    """Bump allocator over one task's arena; works in worker or driver.

    Reservations are :data:`ALIGNMENT`-aligned and never reused — the
    writer is append-only, matching the one-writer-per-arena ownership
    rule (each map/reduce task gets its own arena, so re-driving a phase
    simply rewrites the same bytes).
    """

    def __init__(self, ref: ArenaRef) -> None:
        self._ref = ref
        self._buffer = attach_segment(ref.segment)
        self._cursor = 0

    def reserve(self, dtype, rows: int) -> tuple[ArrayRef, "np.ndarray"]:
        """Claim space for *rows* of *dtype*; returns ``(ref, view)``."""
        dt = np.dtype(dtype)
        nbytes = dt.itemsize * int(rows)
        offset = self._cursor
        if offset + nbytes > self._ref.capacity:
            raise ValueError(
                f"arena {self._ref.segment} overflow: need {offset + nbytes} "
                f"of {self._ref.capacity} bytes"
            )
        self._cursor = _align(offset + nbytes)
        view = np.ndarray(
            (int(rows),), dtype=dt, buffer=self._buffer, offset=offset
        )
        return ArrayRef(self._ref.segment, dt.str, (int(rows),), offset), view

    def write(self, array: "np.ndarray") -> ArrayRef:
        """Copy a 1-D *array* into the arena; returns its descriptor."""
        ref, view = self.reserve(array.dtype, len(array))
        view[...] = array
        return ref


def arena_capacity(rows: int, row_bytes: int, partitions: int, columns: int) -> int:
    """Worst-case arena bytes for *rows* split into per-partition columns.

    Payload plus one alignment pad per reserved array (each of the
    ``partitions × columns`` output arrays rounds up independently).
    """
    return rows * row_bytes + ALIGNMENT * (partitions * columns + 2)


def leaked_segments() -> list[str]:
    """Names of ``repro_shm_*`` segments currently visible in ``/dev/shm``.

    The accounting primitive behind the leak tests and the CI gate:
    after any clean run, crash or re-drive this must come back empty.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-tmpfs platforms
        return []
    return sorted(
        name for name in os.listdir(root) if name.startswith(SEGMENT_PREFIX)
    )
