"""MapReduce token blocking, after Efthymiou et al. (IEEE Big Data 2015) [5].

The parallel formulation of token blocking is the canonical one:

* **map** — each map task tokenizes its slice of the input descriptions
  and emits the assignments as one **columnar record batch** (token,
  side, URI — parallel numpy arrays), routed by the token's stable
  string hash;
* **reduce** — each partition sorts its rows by token (stable, so
  members keep collection order) and every token group becomes a block;
  singleton and one-sided groups are discarded exactly as in the
  sequential algorithm.

This used to ship one Python ``(token, (side, uri))`` tuple per
assignment through the shuffle; the columnar rewrite moves whole
``U``-dtype arrays instead, so the process executor pickles a handful of
buffers per task rather than hundreds of thousands of objects.  The
output is byte-for-byte equivalent (same blocks, same member order, same
primed id views) to :class:`repro.blocking.TokenBlocking` — asserted by
the integration tests — while the engine's metrics expose the shuffle
volume and per-worker skew the paper reports.  Mapper and reducer are
module-level functions over picklable chunks, so the job runs on the
persistent process pool without fork-inheritance tricks.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised throughout this module
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from repro.blocking.block import Block, BlockCollection
from repro.mapreduce.engine import ArrayMapReduceJob, JobMetrics, MapReduceEngine
from repro.mapreduce.records import (
    concat_batches,
    partition_assigned,
    stable_hash_str_array,
)
from repro.model.collection import EntityCollection
from repro.model.interner import EntityInterner
from repro.model.tokenizer import Tokenizer


def split_records(records: list, workers: int) -> list[list]:
    """Contiguous even splits of a record list (like HDFS input splits)."""
    if not records:
        return []
    size, remainder = divmod(len(records), workers)
    splits: list[list] = []
    start = 0
    for worker in range(workers):
        length = size + (1 if worker < remainder else 0)
        if length == 0:
            continue
        splits.append(records[start : start + length])
        start += length
    return splits


def _map_tokenize(chunk, partitions: int, params: dict):
    """Tokenize one slice of descriptions into a routed columnar batch.

    Token order within a description is sorted (set iteration order is
    not deterministic across processes) and rows keep description order,
    so downstream member lists reproduce the sequential builder's.
    """
    tokenizer = params["tokenizer"]
    tokens: list[str] = []
    sides: list[int] = []
    uris: list[str] = []
    for side, description in chunk:
        for token in sorted(tokenizer.token_set(description)):
            tokens.append(token)
            sides.append(side)
            uris.append(description.uri)
    if not tokens:
        return [], len(chunk)
    token_col = np.array(tokens)
    columns = (token_col, np.array(sides, dtype=np.int64), np.array(uris))
    assignment = stable_hash_str_array(token_col, partitions)
    return partition_assigned(columns, assignment, partitions), len(chunk)


def _reduce_token_groups(batches: list, params: dict):
    """Group one partition's assignment rows into (token, members) blocks.

    The stable sort by token preserves row arrival order inside each
    group — task order is split order, so members come out in collection
    order, exactly like the sequential per-token append loop.
    """
    tokens, sides, uris = concat_batches(batches, 3)
    if not len(tokens):
        return [], 0
    order = np.argsort(tokens, kind="stable")
    tokens_s = tokens[order]
    sides_s = sides[order]
    uris_s = uris[order]
    boundary = np.concatenate(([True], tokens_s[1:] != tokens_s[:-1]))
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], len(tokens_s))
    clean_clean = params["clean_clean"]
    drop_singletons = params["drop_singletons"]
    blocks: list[tuple[str, list[str], list[str] | None]] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        side = sides_s[start:end]
        uri = uris_s[start:end]
        side1 = uri[side == 1].tolist()
        if clean_clean:
            side2 = uri[side == 2].tolist()
            if drop_singletons and (not side1 or not side2):
                continue
            blocks.append((str(tokens_s[start]), side1, side2))
        else:
            if drop_singletons and len(side1) < 2:
                continue
            blocks.append((str(tokens_s[start]), side1, None))
    return blocks, len(blocks)


def parallel_token_blocking(
    engine: MapReduceEngine,
    collection1: EntityCollection,
    collection2: EntityCollection | None = None,
    tokenizer: Tokenizer | None = None,
    drop_singletons: bool = True,
) -> tuple[BlockCollection, JobMetrics]:
    """Run token blocking as a columnar MapReduce job on *engine*.

    Args:
        engine: the simulated cluster.
        collection1: first (or only) KB.
        collection2: second KB for clean-clean ER.
        tokenizer: key extractor shared with the sequential implementation.
        drop_singletons: discard comparison-free blocks.

    Returns:
        ``(blocks, job_metrics)``.
    """
    tokenizer = tokenizer or Tokenizer(include_uri_infix=True)
    records: list[tuple[int, object]] = [(1, d) for d in collection1]
    if collection2 is not None:
        records.extend((2, d) for d in collection2)
    job = ArrayMapReduceJob(
        name="parallel-token-blocking",
        mapper=_map_tokenize,
        reducer=_reduce_token_groups,
        params={
            "tokenizer": tokenizer,
            "clean_clean": collection2 is not None,
            "drop_singletons": drop_singletons,
        },
    )
    outputs, metrics = engine.run_array(job, split_records(records, engine.workers))

    names = collection1.name if collection2 is None else f"{collection1.name},{collection2.name}"
    blocks = BlockCollection(name=f"mr-token-blocking({names})")
    # Reduce partitions arrive in partition order; normalize to sorted key
    # order so the result is identical to the sequential builder — and
    # prime the id views in the same pass, exactly as Blocker.build does,
    # so int-ID meta-blocking starts warm on MapReduce-built blocks too.
    merged = [entry for output in outputs for entry in output]
    merged.sort(key=lambda entry: entry[0])
    interner = EntityInterner()
    intern = interner.intern
    id_blocks: list[tuple[list[int], list[int] | None, int]] = []
    for token, side1, side2 in merged:
        block = Block(token, side1, side2) if side2 is not None else Block(token, side1)
        blocks.add(block)
        id_blocks.append(
            (
                list(map(intern, block.entities1)),
                list(map(intern, block.entities2))
                if block.entities2 is not None
                else None,
                block.cardinality(),
            )
        )
    blocks.prime_id_views(interner, id_blocks)
    return blocks, metrics
