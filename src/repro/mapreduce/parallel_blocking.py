"""MapReduce token blocking, after Efthymiou et al. (IEEE Big Data 2015) [5].

The parallel formulation of token blocking is the canonical one:

* **map** — for each entity description, emit ``(token, (side, uri))`` for
  every blocking token of the description;
* **reduce** — each token group becomes a block; singleton and one-sided
  groups are discarded exactly as in the sequential algorithm.

The output is byte-for-byte equivalent (same blocks, same members, same
primed id views) to :class:`repro.blocking.TokenBlocking` — asserted by
the integration tests — while the engine's metrics expose the shuffle
volume and per-worker skew the paper reports.  The job runs on whichever
executor the engine carries: serially simulated by default, or in real
worker processes (mapper/reducer closures are fork-inherited).
"""

from __future__ import annotations

from typing import Iterator

from repro.blocking.block import Block, BlockCollection
from repro.mapreduce.engine import JobMetrics, MapReduceEngine, MapReduceJob
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.model.interner import EntityInterner
from repro.model.tokenizer import Tokenizer


def parallel_token_blocking(
    engine: MapReduceEngine,
    collection1: EntityCollection,
    collection2: EntityCollection | None = None,
    tokenizer: Tokenizer | None = None,
    drop_singletons: bool = True,
) -> tuple[BlockCollection, JobMetrics]:
    """Run token blocking as a MapReduce job on *engine*.

    Args:
        engine: the simulated cluster.
        collection1: first (or only) KB.
        collection2: second KB for clean-clean ER.
        tokenizer: key extractor shared with the sequential implementation.
        drop_singletons: discard comparison-free blocks.

    Returns:
        ``(blocks, job_metrics)``.
    """
    tokenizer = tokenizer or Tokenizer(include_uri_infix=True)
    clean_clean = collection2 is not None

    def mapper(side: int, description: EntityDescription) -> Iterator[tuple[str, tuple[int, str]]]:
        for token in sorted(tokenizer.token_set(description)):
            yield token, (side, description.uri)

    def reducer(token: str, members: list[tuple[int, str]]) -> Iterator[tuple[str, Block]]:
        side1 = [uri for side, uri in members if side == 1]
        side2 = [uri for side, uri in members if side == 2]
        if clean_clean:
            if drop_singletons and (not side1 or not side2):
                return
            yield token, Block(token, side1, side2)
        else:
            if drop_singletons and len(side1) < 2:
                return
            yield token, Block(token, side1)

    job = MapReduceJob(name="parallel-token-blocking", mapper=mapper, reducer=reducer)
    records: list[tuple[int, EntityDescription]] = [(1, d) for d in collection1]
    if collection2 is not None:
        records.extend((2, d) for d in collection2)
    output, metrics = engine.run(job, records)

    names = collection1.name if collection2 is None else f"{collection1.name},{collection2.name}"
    blocks = BlockCollection(name=f"mr-token-blocking({names})")
    # Reduce partitions arrive in partition order; normalize to sorted key
    # order so the result is identical to the sequential builder — and
    # prime the id views in the same pass, exactly as Blocker.build does,
    # so int-ID meta-blocking starts warm on MapReduce-built blocks too.
    interner = EntityInterner()
    intern = interner.intern
    id_blocks: list[tuple[list[int], list[int] | None, int]] = []
    for _token, block in sorted(output, key=lambda kv: kv[0]):
        blocks.add(block)
        id_blocks.append(
            (
                list(map(intern, block.entities1)),
                list(map(intern, block.entities2))
                if block.entities2 is not None
                else None,
                block.cardinality(),
            )
        )
    blocks.prime_id_views(interner, id_blocks)
    return blocks, metrics
