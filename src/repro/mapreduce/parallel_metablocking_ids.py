"""Int-ID MapReduce meta-blocking on the shared-memory data plane.

The retained string-tuple formulation in
:mod:`repro.mapreduce.parallel_metablocking` ships one Python tuple per
implied comparison through the shuffle.  This module is the rebuild on
PR 1's integer backbone, now carried end to end by the zero-copy plane
of :mod:`repro.mapreduce.shm`:

* the driver publishes the collection's CSR id views (and, for pruning,
  the weighted edge table) **once** into shared segments — map tasks
  receive only ``(start, stop, arena)`` plus the published
  :class:`~repro.mapreduce.shm.ArrayRef` descriptors, never pickled
  arrays;
* mappers expand their block range straight from the attached CSR,
  pack every pair into a single ``a << 32 | b`` int64 key, and gather
  the routed columns into their task arena, so the shuffle moves
  :class:`~repro.mapreduce.records.DescriptorBatch` descriptors through
  the queues instead of materialized batches;
* reducers attach their partition's columns zero-copy and write bulky
  output (pair statistics, retention votes) into per-partition reduce
  arenas; only scalar-sized results are pickled back.

**Bit-identity contract.**  Every result — pair statistics, weights,
surviving edges — is bit-identical to the sequential
:class:`~repro.metablocking.graph.BlockingGraph` fast path, for any
worker count and either executor.  Floating-point addition is not
associative, so this needs care at two points:

* **ARCS sums** — every comparison cell ships with its global cell
  index; the reducer orders each pair's cells by that index
  (``lexsort`` keyed on pair then cell) before the sequential
  ``bincount`` fold, reproducing the sequential enumeration's value
  sequence exactly;
* **global/neighbourhood means** — the WEP threshold is folded
  driver-side in pair-table row order (first-seen order, recovered from
  the shuffled statistics via the carried first-cell indices), and the
  entity-centric reducers fold each node's weights in the interleaved
  directed-edge order the sequential pruners use.

Everything a worker touches is a module-level function over arrays and
descriptors, so the multiprocessing executor ships tasks by pickle with
no fork inheritance tricks; segment lifecycle is the drivers'
responsibility — create and publish before the phase, guaranteed
``destroy()`` in a ``finally`` (also registered with the engine as a
safety net), so crashes and re-driven phases leak nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # pragma: no cover - exercised throughout this module
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from repro.blocking.block import BlockCollection
from repro.mapreduce.engine import ArrayMapReduceJob, JobMetrics, MapReduceEngine
from repro.mapreduce.records import DescriptorBatch, concat_batches, partition_batch_into
from repro.mapreduce.shm import (
    ArenaWriter,
    SharedBlockStore,
    arena_capacity,
    attach_array,
)
from repro.metablocking.graph import (
    PairTable,
    WeightedEdge,
    expand_comparison_cells,
    finish_pair_table,
    pack_pair_arrays,
)
from repro.metablocking.pruning import CEP, CNP, PruningScheme, WEP, WNP
from repro.metablocking.weighting import WeightingScheme, weight_pair_table


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - the container ships numpy
        raise RuntimeError(
            "the int-ID MapReduce formulation requires numpy; "
            "use repro.mapreduce.parallel_metablocking instead"
        )


# ---------------------------------------------------------------------------
# Input splits: contiguous ranges over the published arrays
# ---------------------------------------------------------------------------


@dataclass
class _AttachedCSR:
    """The published CSR arrays, re-attached in a worker.

    Shaped exactly like :class:`~repro.blocking.block.BlockIdArrays` as
    far as :func:`expand_comparison_cells` is concerned — the full
    collection, zero-copy; each map task works its ``[start, stop)``
    block range against it.
    """

    cardinality: "np.ndarray"
    offsets1: "np.ndarray"
    offsets2_abs: "np.ndarray"
    bipartite: "np.ndarray"
    sides: "np.ndarray"


def _attach_csr(refs: tuple) -> _AttachedCSR:
    return _AttachedCSR(*(attach_array(ref) for ref in refs))


def _block_ranges(csr, workers: int) -> list[tuple[int, int, int]]:
    """Contiguous ``(start, stop, cells)`` splits, balanced by cell count.

    Token frequencies are Zipfian, so splitting by block *count* leaves
    one mapper holding the stop-word blocks; splitting on the cumulative
    cardinality curve keeps map tasks within one cell-count of even.
    """
    count = len(csr.cardinality)
    if count == 0:
        return []
    cumulative = np.cumsum(csr.cardinality)
    total = int(cumulative[-1])
    targets = [(total * (i + 1)) // workers for i in range(workers)]
    boundaries = np.searchsorted(cumulative, targets, side="left") + 1
    ranges: list[tuple[int, int, int]] = []
    start = 0
    for boundary in boundaries.tolist():
        stop = min(max(boundary, start), count)
        if stop == start:
            continue
        cells_before = int(cumulative[start - 1]) if start else 0
        ranges.append((start, stop, int(cumulative[stop - 1]) - cells_before))
        start = stop
    return ranges


def _row_ranges(rows: int, workers: int) -> list[tuple[int, int]]:
    """Even contiguous ``(start, stop)`` splits of an edge-table row span."""
    size, remainder = divmod(rows, workers)
    ranges: list[tuple[int, int]] = []
    start = 0
    for worker in range(workers):
        length = size + (1 if worker < remainder else 0)
        if length == 0:
            continue
        ranges.append((start, start + length))
        start += length
    return ranges


# ---------------------------------------------------------------------------
# Job 1 — pair statistics (edge-centric aggregation)
# ---------------------------------------------------------------------------

#: per-cell shuffle row: packed key + global cell index + contribution
_CELL_ROW_BYTES = 24
#: pair-statistics reduce row: key + common + arcs + first-cell
_STATS_ROW_BYTES = 32


def _map_pair_cells(chunk, partitions: int, params: dict):
    """Expand one block range's cells from the attached CSR; route by pair.

    Batch columns: packed key, global cell index, per-cell contribution
    (``1/‖b‖``).  No map-side fold: each ``(pair, block)`` incidence is
    a single cell, so shipping cells raw is smaller than shipping folded
    incidences with their provenance — and the reducer's sort restores
    the exact sequential enumeration order from the cell index alone.
    """
    start, stop, arena = chunk
    csr = _attach_csr(params["csr"])
    left, right, contribution, _ordinals, cell_index = expand_comparison_cells(
        csr, start, stop, with_provenance=True
    )
    rows = len(left)
    if not rows:
        return [], 0
    keys = pack_pair_arrays(left, right)
    writer = ArenaWriter(arena)
    routed = partition_batch_into(
        (keys, cell_index, contribution), keys, partitions, writer
    )
    return routed, rows


def _reduce_pair_stats(batches: list[DescriptorBatch], params: dict, arena):
    """Fold one partition's cells into exact per-pair statistics.

    Cells are sorted by (pair, global cell index), so the bincount
    accumulates every pair's ARCS terms in the sequential enumeration
    order — bit-identical floats.  Output columns (key, common, arcs,
    first-cell) go into the partition's reduce arena; only descriptors
    travel back to the driver.
    """
    if not batches:
        return None, 0
    keys, cell_index, contribution = concat_batches(batches, 3)
    order = np.lexsort((cell_index, keys))
    keys_s = keys[order]
    contrib_s = contribution[order]
    new_pair = np.concatenate(([True], keys_s[1:] != keys_s[:-1]))
    group = np.cumsum(new_pair) - 1
    groups = int(group[-1]) + 1
    starts = np.flatnonzero(new_pair)
    arcs = np.bincount(group, weights=contrib_s, minlength=groups)
    common = np.diff(np.append(starts, len(keys_s))).astype(np.int64)
    writer = ArenaWriter(arena)
    refs = (
        writer.write(keys_s[starts]),
        writer.write(common),
        writer.write(arcs),
        writer.write(cell_index[order][starts]),
    )
    return DescriptorBatch(refs, groups), groups


def _empty_pair_table() -> PairTable:
    empty = np.empty(0, dtype=np.int64)
    return PairTable([], empty, empty, empty, np.empty(0, dtype=np.float64), empty)


def parallel_pair_table(
    engine: MapReduceEngine, blocks: BlockCollection
) -> tuple[PairTable, JobMetrics]:
    """Edge-centric MapReduce aggregation into a batch-identical pair table.

    The returned table — row order included — is bit-identical to the
    sequential :func:`~repro.metablocking.graph.pair_table_for` result:
    reducers carry each pair's first global cell index, so the driver can
    restore first-seen enumeration order after the shuffle scattered it.
    """
    _require_numpy()
    csr = blocks.id_arrays()
    assert csr is not None
    ranges = _block_ranges(csr, engine.workers)
    total_cells = int(csr.cardinality.sum()) if len(csr.cardinality) else 0
    if not ranges or not total_cells:
        metrics = JobMetrics(
            job_name="pair-statistics-ids",
            workers=engine.workers,
            executor=engine.executor.name,
        )
        return _empty_pair_table(), metrics

    workers = engine.workers
    store = SharedBlockStore()
    engine.adopt_store(store)
    try:
        csr_refs = store.publish_arrays(
            csr.cardinality, csr.offsets1, csr.offsets2_abs, csr.bipartite, csr.sides
        )
        chunks = [
            (
                start,
                stop,
                store.allocate(arena_capacity(cells, _CELL_ROW_BYTES, workers, 3)),
            )
            for start, stop, cells in ranges
        ]
        job = ArrayMapReduceJob(
            name="pair-statistics-ids",
            mapper=_map_pair_cells,
            reducer=_reduce_pair_stats,
            params={"csr": csr_refs},
            reduce_extras=[
                store.allocate(arena_capacity(total_cells, _STATS_ROW_BYTES, 1, 4))
                for _ in range(workers)
            ],
        )
        outputs, metrics = engine.run_array(job, chunks)
        parts = [
            tuple(store.fetch(ref) for ref in out.refs)
            for out in outputs
            if out is not None and len(out)
        ]
    finally:
        engine.release_store(store)
    if not parts:
        return _empty_pair_table(), metrics
    keys = np.concatenate([p[0] for p in parts])
    common = np.concatenate([p[1] for p in parts])
    arcs = np.concatenate([p[2] for p in parts])
    first_seen = np.concatenate([p[3] for p in parts])
    order = np.argsort(first_seen, kind="stable")
    return finish_pair_table(blocks, keys[order], common[order], arcs[order]), metrics


# ---------------------------------------------------------------------------
# Job 2a — global pruning (WEP threshold filter / CEP distributed top-K)
# ---------------------------------------------------------------------------


def _map_weight_filter(chunk, partitions: int, params: dict):
    """WEP map: keep rows at or above the global mean threshold."""
    start, stop, arena = chunk
    keys_all, weights_all = (attach_array(ref) for ref in params["edges"])
    weights = weights_all[start:stop]
    mask = weights >= params["threshold"]
    rows = (np.flatnonzero(mask) + start).astype(np.int64)
    columns = (rows, keys_all[start:stop][mask])
    writer = ArenaWriter(arena)
    return partition_batch_into(columns, columns[1], partitions, writer), stop - start


def _reduce_row_identity(batches: list[DescriptorBatch], params: dict):
    rows, _keys = concat_batches(batches, 2)
    return rows, len(rows)


def _map_topk(chunk, partitions: int, params: dict):
    """CEP map: local top-K pre-selection (the distributed top-K trick)."""
    start, stop, arena = chunk
    weights_all, rank_a_all, rank_b_all = (
        attach_array(ref) for ref in params["edges"]
    )
    weights = weights_all[start:stop]
    rank_a = rank_a_all[start:stop]
    rank_b = rank_b_all[start:stop]
    top = np.lexsort((rank_b, rank_a, -weights))[: params["k"]]
    columns = (
        (top + start).astype(np.int64),
        weights[top],
        rank_a[top],
        rank_b[top],
    )
    writer = ArenaWriter(arena)
    # One logical reduce group, like the string formulation's "topk" key.
    return (
        partition_batch_into(
            columns, np.zeros(len(top), dtype=np.int64), partitions, writer
        ),
        stop - start,
    )


def _reduce_topk(batches: list[DescriptorBatch], params: dict):
    rows, weights, rank_a, rank_b = concat_batches(batches, 4)
    if not len(rows):
        return np.empty(0, dtype=np.int64), 0
    top = np.lexsort((rank_b, rank_a, -weights.astype(np.float64)))[: params["k"]]
    return rows[top], len(top)


# ---------------------------------------------------------------------------
# Job 2b — entity-centric node retention + vote merge (WNP/CNP)
# ---------------------------------------------------------------------------

#: routed directed-edge row: node + directed index + rank + weight + edge
_EDGE_ROW_BYTES = 40


def _map_route_edges(chunk, partitions: int, params: dict):
    """Route every weighted edge to both endpoints (entity-centric map).

    Batch columns: node id, interleaved directed index (``2·edge`` for
    the left endpoint, ``2·edge + 1`` for the right — the sequential
    pruners' fold order), the *other* endpoint's URI rank, the weight and
    the edge row index.
    """
    start, stop, arena = chunk
    ids_a_all, ids_b_all, rank_a_all, rank_b_all, weights_all = (
        attach_array(ref) for ref in params["edges"]
    )
    ids_a = ids_a_all[start:stop]
    ids_b = ids_b_all[start:stop]
    weights = weights_all[start:stop]
    edge = np.arange(start, stop, dtype=np.int64)
    node = np.concatenate([ids_a, ids_b])
    directed = np.concatenate([2 * edge, 2 * edge + 1])
    neighbor_rank = np.concatenate([rank_b_all[start:stop], rank_a_all[start:stop]])
    weight = np.concatenate([weights, weights])
    edges = np.concatenate([edge, edge])
    columns = (node, directed, neighbor_rank, weight, edges)
    writer = ArenaWriter(arena)
    return partition_batch_into(columns, node, partitions, writer), stop - start


def _reduce_node_retention(batches: list[DescriptorBatch], params: dict, arena):
    """Apply the node-local retention rule to each complete neighbourhood.

    Emits one retention vote (the edge row index) per kept directed
    entry; WNP folds each node's weights in directed order so the mean
    threshold is bit-identical to the sequential vectorized pruner.
    Votes stay in shared memory — the vote-merge job consumes the
    returned descriptors without the driver ever materializing them.
    """
    if not batches:
        return None, 0
    node, directed, neighbor_rank, weight, edges = concat_batches(batches, 5)
    weight = weight.astype(np.float64, copy=False)
    if params["mode"] == "CNP":
        order = np.lexsort((neighbor_rank, -weight, node))
        node_s = node[order]
        boundary = np.concatenate(([True], node_s[1:] != node_s[:-1]))
        group_start = np.flatnonzero(boundary)
        position = (
            np.arange(len(node_s)) - group_start[np.cumsum(boundary) - 1]
        )
        kept = position < params["k"]
    else:  # WNP: per-node mean threshold, folded in directed order
        order = np.lexsort((directed, node))
        node_s = node[order]
        weight_s = weight[order]
        boundary = np.concatenate(([True], node_s[1:] != node_s[:-1]))
        group = np.cumsum(boundary) - 1
        groups = int(group[-1]) + 1
        sums = np.bincount(group, weights=weight_s, minlength=groups)
        counts = np.bincount(group, minlength=groups)
        kept = weight_s >= (sums / counts)[group]
    votes = edges[order][kept]
    writer = ArenaWriter(arena)
    return DescriptorBatch((writer.write(votes),), len(votes)), len(votes)


def _map_votes(chunk, partitions: int, params: dict):
    ref, arena = chunk
    votes = attach_array(ref)
    writer = ArenaWriter(arena)
    return partition_batch_into((votes,), votes, partitions, writer), len(votes)


def _reduce_votes(batches: list[DescriptorBatch], params: dict):
    """Union/reciprocal merge: count endpoint votes per edge."""
    (votes,) = concat_batches(batches, 1)
    if not len(votes):
        return np.empty(0, dtype=np.int64), 0
    edges, counts = np.unique(votes, return_counts=True)
    survivors = edges[counts >= params["required"]]
    return survivors, len(survivors)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _ranked_edges(table: PairTable, weights, rows) -> list[WeightedEdge]:
    """Surviving rows as WeightedEdges in (-weight, pair) order."""
    rank = table.uri_rank
    rows = np.asarray(rows, dtype=np.int64)
    kept_w = weights[rows]
    order = np.lexsort(
        (rank[table.ids_b[rows]], rank[table.ids_a[rows]], -kept_w)
    )
    pairs = table.pairs
    weight_list = kept_w.tolist()
    row_list = rows.tolist()
    return [
        WeightedEdge(pairs[row_list[i]][0], pairs[row_list[i]][1], weight_list[i])
        for i in order.tolist()
    ]


def _node_pruning_survivors(
    engine: MapReduceEngine,
    table: PairTable,
    weights,
    rank_a,
    rank_b,
    params: dict,
) -> tuple["np.ndarray", list[JobMetrics]]:
    """The WNP/CNP retention + vote-merge chain on one shared store."""
    workers = engine.workers
    row_count = len(weights)
    store = SharedBlockStore()
    engine.adopt_store(store)
    try:
        edge_refs = store.publish_arrays(
            table.ids_a, table.ids_b, rank_a, rank_b, weights
        )
        chunks = [
            (
                start,
                stop,
                store.allocate(
                    arena_capacity(2 * (stop - start), _EDGE_ROW_BYTES, workers, 5)
                ),
            )
            for start, stop in _row_ranges(row_count, workers)
        ]
        retention_job = ArrayMapReduceJob(
            name="node-retention-ids",
            mapper=_map_route_edges,
            reducer=_reduce_node_retention,
            params={"edges": edge_refs, **params},
            reduce_extras=[
                store.allocate(arena_capacity(2 * row_count, 8, 1, 1))
                for _ in range(workers)
            ],
        )
        vote_batches, retention_metrics = engine.run_array(retention_job, chunks)
        vote_chunks = [
            (
                batch.refs[0],
                store.allocate(arena_capacity(len(batch), 8, workers, 1)),
            )
            for batch in vote_batches
            if batch is not None and len(batch)
        ]
        vote_job = ArrayMapReduceJob(
            name="vote-merge-ids",
            mapper=_map_votes,
            reducer=_reduce_votes,
            params={"required": params["required"]},
        )
        survivor_parts, vote_metrics = engine.run_array(vote_job, vote_chunks)
    finally:
        engine.release_store(store)
    survivors = (
        np.concatenate(survivor_parts)
        if survivor_parts
        else np.empty(0, dtype=np.int64)
    )
    return survivors, [retention_metrics, vote_metrics]


def parallel_metablocking_ids(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    scheme: WeightingScheme,
    pruner: PruningScheme,
) -> tuple[list[WeightedEdge], list[JobMetrics]]:
    """Int-ID parallel meta-blocking: statistics, weighting, pruning.

    Stage 1 aggregates the pair table edge-centrically; weights are then
    evaluated through the shared
    :func:`~repro.metablocking.weighting.weight_pair_table` path; stage 2
    prunes — WEP/CEP as edge-centric array jobs, WNP/CNP (and their
    reciprocal variants) through the entity-centric retention + vote
    merge chain.  Results are bit-identical to the sequential
    ``pruner.prune(BlockingGraph(blocks, scheme))`` for every worker
    count and executor.

    Returns:
        ``(surviving_edges, [job_metrics...])`` with edges in the
        pruner's deterministic (-weight, pair) order.

    Raises:
        TypeError: for pruning schemes with neither global nor
            node-centric parallel semantics.
    """
    _require_numpy()
    table, stats_metrics = parallel_pair_table(engine, blocks)
    metrics = [stats_metrics]
    weights = weight_pair_table(scheme, blocks, table)
    row_count = len(weights)
    rank = table.uri_rank
    workers = engine.workers

    if isinstance(pruner, (WNP, CNP)):
        if isinstance(pruner, CNP):
            params = {
                "mode": "CNP",
                "k": pruner.node_budget_from_blocks(blocks),
                "required": pruner.required_votes,
            }
        else:
            params = {"mode": "WNP", "required": pruner.required_votes}
        rank_a = rank[table.ids_a] if row_count else np.empty(0, dtype=np.int64)
        rank_b = rank[table.ids_b] if row_count else np.empty(0, dtype=np.int64)
        survivors, prune_metrics = _node_pruning_survivors(
            engine, table, weights, rank_a, rank_b, params
        )
        metrics.extend(prune_metrics)
        return _ranked_edges(table, weights, survivors), metrics

    if isinstance(pruner, WEP):
        # The global mean must reproduce graph.average_weight(): a plain
        # left-to-right Python fold over table-row (first-seen) order.
        weight_list = weights.tolist()
        mean = sum(weight_list) / len(weight_list) if weight_list else 0.0
        keys = (table.ids_a << 32) | table.ids_b if row_count else np.empty(
            0, dtype=np.int64
        )
        store = SharedBlockStore()
        engine.adopt_store(store)
        try:
            edge_refs = store.publish_arrays(keys, weights)
            chunks = [
                (
                    start,
                    stop,
                    store.allocate(arena_capacity(stop - start, 16, workers, 2)),
                )
                for start, stop in _row_ranges(row_count, workers)
            ]
            job = ArrayMapReduceJob(
                name="wep-pruning-ids",
                mapper=_map_weight_filter,
                reducer=_reduce_row_identity,
                params={
                    "edges": edge_refs,
                    "threshold": mean * pruner.threshold_factor,
                },
            )
            outputs, prune_metrics = engine.run_array(job, chunks)
        finally:
            engine.release_store(store)
        metrics.append(prune_metrics)
        survivors = (
            np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)
        )
        return _ranked_edges(table, weights, survivors), metrics

    if isinstance(pruner, CEP):
        k = pruner.budget_from_blocks(blocks)
        rank_a = rank[table.ids_a] if row_count else np.empty(0, dtype=np.int64)
        rank_b = rank[table.ids_b] if row_count else np.empty(0, dtype=np.int64)
        store = SharedBlockStore()
        engine.adopt_store(store)
        try:
            edge_refs = store.publish_arrays(weights, rank_a, rank_b)
            chunks = [
                (
                    start,
                    stop,
                    store.allocate(
                        arena_capacity(min(stop - start, k), 32, workers, 4)
                    ),
                )
                for start, stop in _row_ranges(row_count, workers)
            ]
            job = ArrayMapReduceJob(
                name="cep-pruning-ids",
                mapper=_map_topk,
                reducer=_reduce_topk,
                params={"edges": edge_refs, "k": k},
            )
            outputs, prune_metrics = engine.run_array(job, chunks)
        finally:
            engine.release_store(store)
        metrics.append(prune_metrics)
        survivors = (
            np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)
        )
        return _ranked_edges(table, weights, survivors), metrics

    raise TypeError(
        f"{pruner.name} has no parallel formulation (expected WEP/CEP/WNP/CNP)"
    )
