"""Int-ID MapReduce meta-blocking: the array-native parallel formulation.

The retained string-tuple formulation in
:mod:`repro.mapreduce.parallel_metablocking` ships one Python tuple per
implied comparison through the shuffle.  This module is the rebuild on
PR 1's integer backbone: mappers expand each map split's comparison
cells straight from the collection's CSR id views into flat numpy
arrays, pack every pair into a single ``a << 32 | b`` int64 key, combine
with a sort + bincount fold, and route columnar record batches by
vectorized splitmix64 hashing — no per-record Python objects anywhere
between map input and reduce output.

**Bit-identity contract.**  Every result — pair statistics, weights,
surviving edges — is bit-identical to the sequential
:class:`~repro.metablocking.graph.BlockingGraph` fast path, for any
worker count and either executor.  Floating-point addition is not
associative, so this needs care at two points:

* **ARCS sums** — map-side combining folds cells per ``(pair, block)``
  incidence (contributions inside one incidence are equal values of one
  block, so their fold is order-free *within* the incidence), and the
  reducer re-expands incidences ordered by each pair's global
  first-cell index, reproducing the sequential enumeration's value
  sequence exactly;
* **global/neighbourhood means** — the WEP threshold is folded
  driver-side in pair-table row order (first-seen order, recovered from
  the shuffled statistics via the carried first-cell indices), and the
  entity-centric reducers fold each node's weights in the interleaved
  directed-edge order the sequential pruners use.

Everything a worker touches is a module-level function over arrays, so
the multiprocessing executor ships tasks by pickle with no fork
inheritance tricks.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # pragma: no cover - exercised throughout this module
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from repro.blocking.block import BlockCollection
from repro.mapreduce.engine import ArrayMapReduceJob, JobMetrics, MapReduceEngine
from repro.mapreduce.records import RecordBatch, concat_batches, partition_batch
from repro.metablocking.graph import (
    PairTable,
    WeightedEdge,
    expand_comparison_cells,
    finish_pair_table,
    pack_pair_arrays,
)
from repro.metablocking.pruning import CEP, CNP, PruningScheme, WEP, WNP
from repro.metablocking.weighting import WeightingScheme, weight_pair_table


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - the container ships numpy
        raise RuntimeError(
            "the int-ID MapReduce formulation requires numpy; "
            "use repro.mapreduce.parallel_metablocking instead"
        )


# ---------------------------------------------------------------------------
# Input splits: contiguous block ranges, balanced by implied comparisons
# ---------------------------------------------------------------------------


@dataclass
class _ChunkCSR:
    """A self-contained CSR slice of one map split's blocks.

    Shaped exactly like :class:`~repro.blocking.block.BlockIdArrays` as
    far as :func:`expand_comparison_cells` is concerned, but carrying
    only the split's spans — what crosses the process boundary is the
    split, not the collection.
    """

    cardinality: "np.ndarray"
    offsets1: "np.ndarray"
    offsets2_abs: "np.ndarray"
    bipartite: "np.ndarray"
    sides: "np.ndarray"


def _slice_csr(csr, start: int, stop: int) -> _ChunkCSR:
    side1_lo = int(csr.offsets1[start])
    side1_hi = int(csr.offsets1[stop])
    side2_lo = int(csr.offsets2_abs[start])
    side2_hi = int(csr.offsets2_abs[stop])
    side1_span = side1_hi - side1_lo
    return _ChunkCSR(
        cardinality=csr.cardinality[start:stop],
        offsets1=csr.offsets1[start : stop + 1] - side1_lo,
        offsets2_abs=csr.offsets2_abs[start : stop + 1] - side2_lo + side1_span,
        bipartite=csr.bipartite[start:stop],
        sides=np.concatenate(
            [csr.sides[side1_lo:side1_hi], csr.sides[side2_lo:side2_hi]]
        ),
    )


def _block_chunks(blocks: BlockCollection, workers: int) -> list[tuple]:
    """Contiguous block-range splits, work-balanced by comparison count.

    Token frequencies are Zipfian, so splitting by block *count* leaves
    one mapper holding the stop-word blocks; splitting on the cumulative
    cardinality curve keeps map tasks within one cell-count of even.
    """
    csr = blocks.id_arrays()
    assert csr is not None
    count = len(csr.cardinality)
    if count == 0:
        return []
    cumulative = np.cumsum(csr.cardinality)
    total = int(cumulative[-1])
    targets = [(total * (i + 1)) // workers for i in range(workers)]
    boundaries = np.searchsorted(cumulative, targets, side="left") + 1
    chunks: list[tuple] = []
    start = 0
    for boundary in boundaries.tolist():
        stop = min(max(boundary, start), count)
        if stop == start:
            continue
        cell_base = int(cumulative[start - 1]) if start else 0
        chunks.append((_slice_csr(csr, start, stop), start, cell_base))
        start = stop
    return chunks


def _row_chunks(arrays: tuple, workers: int) -> list[tuple]:
    """Even contiguous row-range splits of parallel edge arrays."""
    rows = len(arrays[0])
    if rows == 0:
        return []
    size, remainder = divmod(rows, workers)
    chunks: list[tuple] = []
    start = 0
    for worker in range(workers):
        length = size + (1 if worker < remainder else 0)
        if length == 0:
            continue
        chunks.append((start, *(a[start : start + length] for a in arrays)))
        start += length
    return chunks


# ---------------------------------------------------------------------------
# Job 1 — pair statistics (edge-centric aggregation)
# ---------------------------------------------------------------------------


def _map_pair_cells(chunk, partitions: int, params: dict):
    """Expand one split's cells; combine per (pair, block); route by pair.

    Batch columns: packed key, block ordinal, cell count, first global
    cell index, per-cell contribution (``1/‖b‖``).
    """
    chunk_csr, ordinal_base, cell_base = chunk
    expanded = expand_comparison_cells(chunk_csr, with_provenance=True)
    left, right, contribution, ordinals, cell_index = expanded
    rows = len(left)
    if not rows:
        return [], 0
    keys = pack_pair_arrays(left, right)
    ordinals = ordinals + ordinal_base
    cell_index = cell_index + cell_base
    # Sort + fold (the PairTable aggregation, scoped to this task): a
    # stable lexsort groups cells by (pair, block); the group's first row
    # keeps the earliest cell index, its size is the cell count.
    order = np.lexsort((ordinals, keys))
    keys_s = keys[order]
    ordinals_s = ordinals[order]
    new_group = np.concatenate(
        ([True], (keys_s[1:] != keys_s[:-1]) | (ordinals_s[1:] != ordinals_s[:-1]))
    )
    starts = np.flatnonzero(new_group)
    cells = np.diff(np.append(starts, rows))
    columns = (
        keys_s[starts],
        ordinals_s[starts],
        cells.astype(np.int64),
        cell_index[order][starts],
        contribution[order][starts],
    )
    return partition_batch(columns, columns[0], partitions), rows


def _reduce_pair_stats(batches: list[RecordBatch], params: dict):
    """Fold one partition's (pair, block) incidences into exact statistics.

    Incidences are ordered by each pair's first-cell index and re-expanded
    to per-cell contributions, so the bincount accumulates every pair's
    ARCS terms in the sequential enumeration order — bit-identical floats.
    """
    keys, ordinals, cells, first_cell, contribution = concat_batches(batches, 5)
    rows = len(keys)
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.int64),
    )
    if not rows:
        return empty, 0
    order = np.lexsort((first_cell, keys))
    keys_s = keys[order]
    first_s = first_cell[order]
    cells_s = cells[order]
    contrib_s = contribution[order]
    new_pair = np.concatenate(([True], keys_s[1:] != keys_s[:-1]))
    group = np.cumsum(new_pair) - 1
    groups = int(group[-1]) + 1
    starts = np.flatnonzero(new_pair)
    per_cell_group = np.repeat(group, cells_s)
    per_cell_contrib = np.repeat(contrib_s, cells_s)
    arcs = np.bincount(per_cell_group, weights=per_cell_contrib, minlength=groups)
    common = np.bincount(group, weights=cells_s, minlength=groups).astype(np.int64)
    return (keys_s[starts], common, arcs, first_s[starts]), groups


def parallel_pair_table(
    engine: MapReduceEngine, blocks: BlockCollection
) -> tuple[PairTable, JobMetrics]:
    """Edge-centric MapReduce aggregation into a batch-identical pair table.

    The returned table — row order included — is bit-identical to the
    sequential :func:`~repro.metablocking.graph.pair_table_for` result:
    reducers carry each pair's first global cell index, so the driver can
    restore first-seen enumeration order after the shuffle scattered it.
    """
    _require_numpy()
    job = ArrayMapReduceJob(
        name="pair-statistics-ids",
        mapper=_map_pair_cells,
        reducer=_reduce_pair_stats,
    )
    outputs, metrics = engine.run_array(job, _block_chunks(blocks, engine.workers))
    parts = [out for out in outputs if out is not None and len(out[0])]
    if not parts:
        empty = np.empty(0, dtype=np.int64)
        table = PairTable(
            [], empty, empty, empty, np.empty(0, dtype=np.float64), empty
        )
        return table, metrics
    keys = np.concatenate([p[0] for p in parts])
    common = np.concatenate([p[1] for p in parts])
    arcs = np.concatenate([p[2] for p in parts])
    first_seen = np.concatenate([p[3] for p in parts])
    order = np.argsort(first_seen, kind="stable")
    return finish_pair_table(blocks, keys[order], common[order], arcs[order]), metrics


# ---------------------------------------------------------------------------
# Job 2a — global pruning (WEP threshold filter / CEP distributed top-K)
# ---------------------------------------------------------------------------


def _map_weight_filter(chunk, partitions: int, params: dict):
    """WEP map: keep rows at or above the global mean threshold."""
    rows_base, keys, weights = chunk
    mask = weights >= params["threshold"]
    kept = np.flatnonzero(mask)
    columns = ((kept + rows_base).astype(np.int64), keys[mask])
    return partition_batch(columns, columns[1], partitions), len(weights)


def _reduce_row_identity(batches: list[RecordBatch], params: dict):
    rows, _keys = concat_batches(batches, 2)
    return rows, len(rows)


def _map_topk(chunk, partitions: int, params: dict):
    """CEP map: local top-K pre-selection (the distributed top-K trick)."""
    rows_base, weights, rank_a, rank_b = chunk
    top = np.lexsort((rank_b, rank_a, -weights))[: params["k"]]
    columns = (
        (top + rows_base).astype(np.int64),
        weights[top],
        rank_a[top],
        rank_b[top],
    )
    # One logical reduce group, like the string formulation's "topk" key.
    return partition_batch(columns, np.zeros(len(top), dtype=np.int64), partitions), len(
        weights
    )


def _reduce_topk(batches: list[RecordBatch], params: dict):
    rows, weights, rank_a, rank_b = concat_batches(batches, 4)
    if not len(rows):
        return np.empty(0, dtype=np.int64), 0
    top = np.lexsort((rank_b, rank_a, -weights.astype(np.float64)))[: params["k"]]
    return rows[top], len(top)


# ---------------------------------------------------------------------------
# Job 2b — entity-centric node retention + vote merge (WNP/CNP)
# ---------------------------------------------------------------------------


def _map_route_edges(chunk, partitions: int, params: dict):
    """Route every weighted edge to both endpoints (entity-centric map).

    Batch columns: node id, interleaved directed index (``2·edge`` for
    the left endpoint, ``2·edge + 1`` for the right — the sequential
    pruners' fold order), the *other* endpoint's URI rank, the weight and
    the edge row index.
    """
    rows_base, ids_a, ids_b, rank_a, rank_b, weights = chunk
    edge = np.arange(len(ids_a), dtype=np.int64) + rows_base
    node = np.concatenate([ids_a, ids_b])
    directed = np.concatenate([2 * edge, 2 * edge + 1])
    neighbor_rank = np.concatenate([rank_b, rank_a])
    weight = np.concatenate([weights, weights])
    edges = np.concatenate([edge, edge])
    columns = (node, directed, neighbor_rank, weight, edges)
    return partition_batch(columns, node, partitions), len(ids_a)


def _reduce_node_retention(batches: list[RecordBatch], params: dict):
    """Apply the node-local retention rule to each complete neighbourhood.

    Emits one retention vote (the edge row index) per kept directed
    entry; WNP folds each node's weights in directed order so the mean
    threshold is bit-identical to the sequential vectorized pruner.
    """
    node, directed, neighbor_rank, weight, edges = concat_batches(batches, 5)
    if not len(node):
        return np.empty(0, dtype=np.int64), 0
    weight = weight.astype(np.float64, copy=False)
    if params["mode"] == "CNP":
        order = np.lexsort((neighbor_rank, -weight, node))
        node_s = node[order]
        boundary = np.concatenate(([True], node_s[1:] != node_s[:-1]))
        group_start = np.flatnonzero(boundary)
        position = (
            np.arange(len(node_s)) - group_start[np.cumsum(boundary) - 1]
        )
        kept = position < params["k"]
    else:  # WNP: per-node mean threshold, folded in directed order
        order = np.lexsort((directed, node))
        node_s = node[order]
        weight_s = weight[order]
        boundary = np.concatenate(([True], node_s[1:] != node_s[:-1]))
        group = np.cumsum(boundary) - 1
        groups = int(group[-1]) + 1
        sums = np.bincount(group, weights=weight_s, minlength=groups)
        counts = np.bincount(group, minlength=groups)
        kept = weight_s >= (sums / counts)[group]
    votes = edges[order][kept]
    return votes, len(votes)


def _map_votes(chunk, partitions: int, params: dict):
    (votes,) = chunk
    return partition_batch((votes,), votes, partitions), len(votes)


def _reduce_votes(batches: list[RecordBatch], params: dict):
    """Union/reciprocal merge: count endpoint votes per edge."""
    (votes,) = concat_batches(batches, 1)
    if not len(votes):
        return np.empty(0, dtype=np.int64), 0
    edges, counts = np.unique(votes, return_counts=True)
    survivors = edges[counts >= params["required"]]
    return survivors, len(survivors)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _ranked_edges(table: PairTable, weights, rows) -> list[WeightedEdge]:
    """Surviving rows as WeightedEdges in (-weight, pair) order."""
    rank = table.uri_rank
    rows = np.asarray(rows, dtype=np.int64)
    kept_w = weights[rows]
    order = np.lexsort(
        (rank[table.ids_b[rows]], rank[table.ids_a[rows]], -kept_w)
    )
    pairs = table.pairs
    weight_list = kept_w.tolist()
    row_list = rows.tolist()
    return [
        WeightedEdge(pairs[row_list[i]][0], pairs[row_list[i]][1], weight_list[i])
        for i in order.tolist()
    ]


def parallel_metablocking_ids(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    scheme: WeightingScheme,
    pruner: PruningScheme,
) -> tuple[list[WeightedEdge], list[JobMetrics]]:
    """Int-ID parallel meta-blocking: statistics, weighting, pruning.

    Stage 1 aggregates the pair table edge-centrically; weights are then
    evaluated through the shared
    :func:`~repro.metablocking.weighting.weight_pair_table` path; stage 2
    prunes — WEP/CEP as edge-centric array jobs, WNP/CNP (and their
    reciprocal variants) through the entity-centric retention + vote
    merge chain.  Results are bit-identical to the sequential
    ``pruner.prune(BlockingGraph(blocks, scheme))`` for every worker
    count and executor.

    Returns:
        ``(surviving_edges, [job_metrics...])`` with edges in the
        pruner's deterministic (-weight, pair) order.

    Raises:
        TypeError: for pruning schemes with neither global nor
            node-centric parallel semantics.
    """
    _require_numpy()
    table, stats_metrics = parallel_pair_table(engine, blocks)
    metrics = [stats_metrics]
    weights = weight_pair_table(scheme, blocks, table)
    row_count = len(weights)
    rank = table.uri_rank

    if isinstance(pruner, (WNP, CNP)):
        if isinstance(pruner, CNP):
            params = {
                "mode": "CNP",
                "k": pruner.node_budget_from_blocks(blocks),
                "required": pruner.required_votes,
            }
        else:
            params = {"mode": "WNP", "required": pruner.required_votes}
        rank_a = rank[table.ids_a] if row_count else np.empty(0, dtype=np.int64)
        rank_b = rank[table.ids_b] if row_count else np.empty(0, dtype=np.int64)
        retention_job = ArrayMapReduceJob(
            name="node-retention-ids",
            mapper=_map_route_edges,
            reducer=_reduce_node_retention,
            params=params,
        )
        vote_chunks, retention_metrics = engine.run_array(
            retention_job,
            _row_chunks(
                (table.ids_a, table.ids_b, rank_a, rank_b, weights), engine.workers
            ),
        )
        vote_job = ArrayMapReduceJob(
            name="vote-merge-ids",
            mapper=_map_votes,
            reducer=_reduce_votes,
            params={"required": pruner.required_votes},
        )
        survivor_parts, vote_metrics = engine.run_array(
            vote_job, [(votes,) for votes in vote_chunks if len(votes)]
        )
        metrics.extend([retention_metrics, vote_metrics])
        survivors = (
            np.concatenate([part for part in survivor_parts])
            if survivor_parts
            else np.empty(0, dtype=np.int64)
        )
        return _ranked_edges(table, weights, survivors), metrics

    if isinstance(pruner, WEP):
        # The global mean must reproduce graph.average_weight(): a plain
        # left-to-right Python fold over table-row (first-seen) order.
        weight_list = weights.tolist()
        mean = sum(weight_list) / len(weight_list) if weight_list else 0.0
        job = ArrayMapReduceJob(
            name="wep-pruning-ids",
            mapper=_map_weight_filter,
            reducer=_reduce_row_identity,
            params={"threshold": mean * pruner.threshold_factor},
        )
        keys = (table.ids_a << 32) | table.ids_b if row_count else np.empty(
            0, dtype=np.int64
        )
        outputs, prune_metrics = engine.run_array(
            job, _row_chunks((keys, weights), engine.workers)
        )
        metrics.append(prune_metrics)
        survivors = (
            np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)
        )
        return _ranked_edges(table, weights, survivors), metrics

    if isinstance(pruner, CEP):
        k = pruner.budget_from_blocks(blocks)
        rank_a = rank[table.ids_a] if row_count else np.empty(0, dtype=np.int64)
        rank_b = rank[table.ids_b] if row_count else np.empty(0, dtype=np.int64)
        job = ArrayMapReduceJob(
            name="cep-pruning-ids",
            mapper=_map_topk,
            reducer=_reduce_topk,
            params={"k": k},
        )
        outputs, prune_metrics = engine.run_array(
            job, _row_chunks((weights, rank_a, rank_b), engine.workers)
        )
        metrics.append(prune_metrics)
        survivors = (
            np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)
        )
        return _ranked_edges(table, weights, survivors), metrics

    raise TypeError(
        f"{pruner.name} has no parallel formulation (expected WEP/CEP/WNP/CNP)"
    )
