"""MapReduce meta-blocking, after Efthymiou et al. (IEEE Big Data 2015) [4].

The paper parallelizes meta-blocking with two families of strategies:

* **edge-centric** — materialize the blocking graph's edges in the shuffle:
  map over blocks emitting one record per implied comparison, carrying that
  block's evidence contribution; combine/reduce sums contributions into the
  per-pair statistics every weighting scheme needs.  Weight computation and
  global pruning (WEP/CEP) then run on the aggregated edge list.

* **entity-centric** — route each entity's complete comparison neighbourhood
  to one reducer: map emits ``(entity, (neighbour, contribution))`` records;
  each reduce group reconstructs one node's weighted adjacency, applies the
  node-local decision (WNP's neighbourhood-average threshold or CNP's
  top-k) and emits the locally retained edges; a final de-duplication pass
  applies the union/reciprocal semantics.

Both produce the same surviving comparisons as the sequential
:mod:`repro.metablocking` implementations (asserted in tests), while the
engine metrics expose their very different shuffle volumes — the trade-off
the paper's evaluation measures.

This module is the retained **string-tuple reference formulation**: one
Python tuple per shuffled record, readable and close to the paper's
pseudocode.  The production path is the int-ID rebuild in
:mod:`repro.mapreduce.parallel_metablocking_ids`, which ships packed
``a << 32 | b`` columnar batches instead and is bit-identical to the
sequential fast path; ``benchmarks/bench_mapreduce.py`` measures the two
formulations against each other.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.blocking.block import BlockCollection
from repro.mapreduce.engine import JobMetrics, MapReduceEngine, MapReduceJob
from repro.metablocking.graph import WeightedEdge
from repro.metablocking.weighting import WeightingScheme
from repro.metablocking.pruning import PruningScheme, WEP, CEP


def parallel_pair_statistics(
    engine: MapReduceEngine,
    blocks: BlockCollection,
) -> tuple[dict[tuple[str, str], tuple[int, float]], JobMetrics]:
    """Edge-centric aggregation of per-pair (common blocks, ARCS) statistics.

    Map emits ``(pair, (1, 1/‖b‖))`` per comparison implied by each block;
    a combiner pre-sums per map task; the reducer finishes the sums.
    """

    def mapper(_key: str, block) -> Iterator[tuple[tuple[str, str], tuple[int, float]]]:
        cardinality = block.cardinality()
        if cardinality == 0:
            return
        contribution = 1.0 / cardinality
        for pair in block.comparisons():
            yield pair, (1, contribution)

    def combine(pair, values) -> Iterator[tuple[tuple[str, str], tuple[int, float]]]:
        total = sum(v[0] for v in values)
        arcs = sum(v[1] for v in values)
        yield pair, (total, arcs)

    job = MapReduceJob(
        name="pair-statistics",
        mapper=mapper,
        reducer=combine,
        combiner=combine,
    )
    records = [(block.key, block) for block in blocks]
    output, metrics = engine.run(job, records)
    return dict(output), metrics


def parallel_metablocking(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    scheme: WeightingScheme,
    pruner: PruningScheme,
) -> tuple[list[WeightedEdge], list[JobMetrics]]:
    """Edge-centric parallel meta-blocking: statistics, weighting, pruning.

    Stage 1 (MapReduce) aggregates pair statistics; stage 2 computes weights
    with *scheme* (globals prepared exactly as sequentially); stage 3 runs
    the global pruning criterion as a second MapReduce job for WEP/CEP, or
    falls back to the sequential pruner for node-centric schemes (use
    :func:`parallel_node_pruning` for those).

    Returns:
        ``(surviving_edges, [job_metrics...])`` with edges in the pruner's
        deterministic order.
    """
    if not isinstance(pruner, (WEP, CEP)):
        # Node-centric schemes route neighbourhoods to reducers instead of
        # pruning globally; they own their whole job chain.
        return parallel_node_pruning(engine, blocks, scheme, pruner)

    stats, stats_metrics = parallel_pair_statistics(engine, blocks)
    metrics = [stats_metrics]

    scheme.prepare(blocks, stats)
    weighted = {
        pair: scheme.weight(pair[0], pair[1], common, arcs)
        for pair, (common, arcs) in stats.items()
    }

    if isinstance(pruner, WEP):
        threshold = (
            (sum(weighted.values()) / len(weighted)) if weighted else 0.0
        ) * pruner.threshold_factor

        def wep_mapper(pair, weight) -> Iterator[tuple[tuple[str, str], float]]:
            if weight >= threshold:
                yield pair, weight

        def identity_reducer(pair, weights) -> Iterator[tuple[tuple[str, str], float]]:
            yield pair, weights[0]

        job = MapReduceJob(name="wep-pruning", mapper=wep_mapper, reducer=identity_reducer)
        output, prune_metrics = engine.run(job, list(weighted.items()))
        metrics.append(prune_metrics)
        survivors = sorted(output, key=lambda kv: (-kv[1], kv[0]))
        return [WeightedEdge(p[0], p[1], w) for p, w in survivors], metrics

    if isinstance(pruner, CEP):
        # Global top-K: each map task pre-selects its local top-K (the
        # standard distributed top-K trick), a single reduce group merges.
        k = pruner.budget_from_blocks(blocks)

        def cep_mapper(pair, weight) -> Iterator[tuple[str, tuple[float, tuple[str, str]]]]:
            yield "topk", (weight, pair)

        def cep_combiner(key, values) -> Iterator[tuple[str, tuple[float, tuple[str, str]]]]:
            values.sort(key=lambda wp: (-wp[0], wp[1]))
            for value in values[:k]:
                yield key, value

        def cep_reducer(key, values) -> Iterator[tuple[tuple[str, str], float]]:
            values.sort(key=lambda wp: (-wp[0], wp[1]))
            for weight, pair in values[:k]:
                yield pair, weight

        job = MapReduceJob(
            name="cep-pruning", mapper=cep_mapper, reducer=cep_reducer, combiner=cep_combiner
        )
        output, prune_metrics = engine.run(job, list(weighted.items()))
        metrics.append(prune_metrics)
        survivors = sorted(output, key=lambda kv: (-kv[1], kv[0]))
        return [WeightedEdge(p[0], p[1], w) for p, w in survivors], metrics

    raise AssertionError("unreachable: pruner dispatched above")


def parallel_node_pruning(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    scheme: WeightingScheme,
    pruner: PruningScheme,
) -> tuple[list[WeightedEdge], list[JobMetrics]]:
    """Entity-centric parallel meta-blocking for WNP/CNP-style pruning.

    Map routes every weighted edge to **both** endpoints; each reduce group
    sees one node's full weighted neighbourhood and applies the node-local
    retention rule; a final reduce merges the two endpoints' votes with the
    pruner's union (1 vote) or reciprocal (2 votes) semantics.

    Raises:
        TypeError: if *pruner* has no node-local semantics (not WNP/CNP
            family).
    """
    from repro.metablocking.pruning import WNP, CNP

    if not isinstance(pruner, (WNP, CNP)):
        raise TypeError(f"{pruner.name} is not a node-centric pruning scheme")

    stats, stats_metrics = parallel_pair_statistics(engine, blocks)
    scheme.prepare(blocks, stats)
    weighted = [
        (pair, scheme.weight(pair[0], pair[1], common, arcs))
        for pair, (common, arcs) in stats.items()
    ]

    if isinstance(pruner, CNP):
        k = pruner.node_budget_from_blocks(blocks)
    else:
        k = 0  # unused for WNP

    def route_mapper(pair, weight) -> Iterator[tuple[str, tuple[str, float]]]:
        left, right = pair
        yield left, (right, weight)
        yield right, (left, weight)

    def node_reducer(node, neighbors) -> Iterator[tuple[tuple[str, str], float]]:
        if isinstance(pruner, CNP):
            ranked = sorted(neighbors, key=lambda nw: (-nw[1], nw[0]))
            retained = ranked[:k]
        else:
            threshold = sum(w for _, w in neighbors) / len(neighbors)
            retained = [(other, w) for other, w in neighbors if w >= threshold]
        for other, weight in retained:
            pair = (node, other) if node < other else (other, node)
            yield pair, weight

    def vote_mapper(pair, weight) -> Iterator[tuple[tuple[str, str], float]]:
        yield pair, weight

    required = pruner.required_votes

    def vote_reducer(pair, weights) -> Iterator[tuple[tuple[str, str], float]]:
        if len(weights) >= required:
            yield pair, weights[0]

    node_job = MapReduceJob(name="node-retention", mapper=route_mapper, reducer=node_reducer)
    node_output, node_metrics = engine.run(node_job, weighted)

    vote_job = MapReduceJob(name="vote-merge", mapper=vote_mapper, reducer=vote_reducer)
    vote_output, vote_metrics = engine.run(vote_job, node_output)

    survivors = sorted(vote_output, key=lambda kv: (-kv[1], kv[0]))
    edges = [WeightedEdge(p[0], p[1], w) for p, w in survivors]
    return edges, [stats_metrics, node_metrics, vote_metrics]
