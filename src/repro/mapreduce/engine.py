"""The MapReduce job runner: one programming model, two executors.

The engine executes a classic Hadoop-style job:

1. the input record list is split into ``workers`` map tasks;
2. each map task runs the **mapper** over its records and, if configured,
   a **combiner** over its local output (grouped by key);
3. map output is **partitioned** by key hash into ``workers`` reduce
   partitions and each partition is **sorted by key** (the shuffle);
4. each reduce task runs the **reducer** over its groups.

Where the work actually happens is pluggable:

* the :class:`SerialExecutor` (default) runs every task in-process in
  deterministic order — the oracle the equivalence suite trusts, with the
  critical-path *time model* (slowest map task plus slowest reduce task,
  in record-cost units) standing in for cluster wall time;
* the :class:`ProcessExecutor` runs map and reduce tasks in real
  ``multiprocessing`` worker processes (fork start method), so wall-clock
  speedup is **measured**, not simulated.  Outputs are identical either
  way: partitioning, key sorting and output ordering are all decided by
  deterministic driver-side logic.

Either way the data movement is real: the engine counts records and
(approximate) bytes crossing the shuffle, so experiments can measure skew
and shuffle volume exactly the way the parallel meta-blocking paper does.

Two job shapes are supported: the record-at-a-time :class:`MapReduceJob`
(any Python key/value types, closure mappers welcome) and the array-native
:class:`ArrayMapReduceJob` whose tasks exchange columnar numpy record
batches (see :mod:`repro.mapreduce.records`) — the int-ID formulation of
parallel meta-blocking runs on the latter.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Iterator

from repro.obs import DISABLED, Observability
from repro.obs.metrics import Counter, MetricsRegistry
from repro.utils.rng import stable_hash, stable_hash_int

#: mapper: (key, value) -> iterable of (key, value)
Mapper = Callable[[Any, Any], Iterable[tuple[Any, Any]]]
#: reducer/combiner: (key, list of values) -> iterable of (key, value)
Reducer = Callable[[Any, list], Iterable[tuple[Any, Any]]]
#: partitioner: (key, partitions) -> partition index
Partitioner = Callable[[Any, int], int]

#: seconds a single executor phase may take before a deadlock is assumed
DEFAULT_TASK_TIMEOUT_S = 600.0


def hash_partitioner(key: Any, partitions: int) -> int:
    """Hadoop-style deterministic hash partitioning.

    Integer keys (packed int64 pairs, dense entity ids, cardinalities)
    are hashed directly through the splitmix64
    :func:`~repro.utils.rng.stable_hash_int` — no ``repr`` string is
    allocated on the hot path.  Every other key type keeps the historical
    ``stable_hash(repr(key))`` route, so partitioning of string-keyed
    jobs is unchanged (asserted by a regression test).

    ``bool`` is an ``int`` subclass but has a distinct ``repr``; the
    exact type check keeps bool keys on the legacy path.
    """
    if type(key) is int:
        return stable_hash_int(key, partitions)
    return stable_hash(repr(key), partitions)


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class Executor(ABC):
    """Runs a phase's tasks and returns their results in task order."""

    #: label recorded in job metrics
    name = "executor"

    @abstractmethod
    def run_tasks(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        """Run zero-argument task callables; results in task order.

        Tasks may be closures over arbitrary driver state.
        """

    def run_specs(self, specs: list[tuple[Callable, tuple]]) -> list[Any]:
        """Run ``(function, args)`` task specs; results in spec order.

        Specs must be picklable (module-level function, array/scalar
        args) — the contract array jobs honour so process pools can ship
        them without fork-inheritance tricks.
        """
        return self.run_tasks([_bind_spec(fn, args) for fn, args in specs])

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent."""


def _bind_spec(fn: Callable, args: tuple) -> Callable[[], Any]:
    return lambda: fn(*args)


class SerialExecutor(Executor):
    """The deterministic in-process oracle: tasks run inline, in order."""

    name = "serial"

    def run_tasks(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        return [task() for task in tasks]


#: fork-inherited task table for closure tasks (set just before the pool
#: forks, so children see it without pickling the closures)
_FORK_TASK_TABLE: list[Callable[[], Any]] | None = None


def _run_fork_task(index: int) -> Any:
    assert _FORK_TASK_TABLE is not None
    return _FORK_TASK_TABLE[index]()


def _apply_spec(spec: tuple[Callable, tuple]) -> Any:
    fn, args = spec
    return fn(*args)


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    import os

    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux POSIX
        return max(1, os.cpu_count() or 1)


class _WorkerLoss(Exception):
    """A pool worker died mid-phase (its in-flight task is lost)."""


class ProcessExecutor(Executor):
    """Real ``multiprocessing`` workers (fork start method, POSIX only).

    Two dispatch routes, one per task shape:

    * **specs** (picklable module-level functions + array args) run on a
      persistent worker pool created lazily on first use — the hot route
      the array jobs take, amortizing pool start-up across jobs;
    * **closure tasks** are not picklable, so each phase stashes them in
      a module global and forks a fresh pool whose children inherit it.

    The *pool size* is capped at the CPUs actually available to this
    process: ``workers`` is the **logical** parallelism (task splits,
    shuffle partitions — all decided driver-side, so results never
    depend on it), while oversubscribing a small machine with more
    CPU-bound processes than cores only buys context-switch cache
    thrash.  Queued tasks drain as slots free up, exactly like map
    slots on a real cluster node.

    Every phase waits with a hard *timeout* so a deadlocked worker fails
    the job instead of hanging the driver (the CI smoke step relies on
    this).

    A worker *dying* mid-phase (OOM kill, SIGKILL, segfault) is treated
    as transient, not fatal: ``multiprocessing.Pool`` silently respawns
    the worker but the task it was running is lost, so the phase would
    otherwise hang until the timeout.  The wait loop watches the pool's
    worker PID set; on a change it tears the pool down and re-drives the
    *whole phase* on a fresh pool, up to ``retry_attempts`` times with
    backoff, before surfacing a ``RuntimeError``.  Safe because map and
    reduce tasks are pure functions of their inputs — re-running a phase
    recomputes identical output.

    Args:
        workers: worker process count (also the pool size).
        task_timeout_s: per-phase timeout in seconds.
        retry_attempts: how many times a phase that lost a worker is
            re-driven before giving up.
        retry_backoff_s: base delay between re-drives (doubles per
            attempt).

    Raises:
        RuntimeError: on construction when the platform has no ``fork``
            start method (use :meth:`available` to probe first).
    """

    name = "process"

    def __init__(
        self,
        workers: int,
        task_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
        retry_attempts: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        if not self.available():
            raise RuntimeError(
                "ProcessExecutor needs the 'fork' multiprocessing start "
                "method (POSIX); use SerialExecutor on this platform"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retry_attempts < 0:
            raise ValueError("retry_attempts must be >= 0")
        self.workers = workers
        self.task_timeout_s = task_timeout_s
        self.retry_attempts = retry_attempts
        self.retry_backoff_s = retry_backoff_s
        self.pool_size = min(workers, _available_cpus())
        self._pool = None

    @staticmethod
    def available() -> bool:
        """True when the fork start method exists on this platform."""
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    # -- dispatch ------------------------------------------------------------

    def run_specs(self, specs: list[tuple[Callable, tuple]]) -> list[Any]:
        # No inline shortcut here, deliberately: even a 1-worker or
        # 1-spec phase runs through the pool, so the measured 1-worker
        # baseline includes the same dispatch + shared-memory transport
        # the multi-worker runs pay — the speedup gate compares the
        # backend as deployed, not an idealized in-process variant.
        if not specs:
            return []
        last_loss = None
        for attempt in range(self.retry_attempts + 1):
            if attempt:
                time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
            pool = self._ensure_pool()
            # One queue round trip per pool slot: when logical tasks
            # outnumber slots (workers > CPUs) the surplus rides along
            # in the same chunk instead of paying per-task dispatch.
            chunksize = -(-len(specs) // self.pool_size)
            result = pool.map_async(_apply_spec, specs, chunksize=chunksize)
            try:
                return self._wait(pool, result)
            except _WorkerLoss as loss:
                # The phase's in-flight tasks are gone with the worker;
                # discard the damaged pool and re-drive from scratch.
                last_loss = loss
                self.close()
        raise RuntimeError(
            f"MapReduce phase lost workers in {self.retry_attempts + 1} "
            f"consecutive attempts ({last_loss})"
        )

    def run_tasks(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        if len(tasks) <= 1 or self.workers <= 1:
            return [task() for task in tasks]
        global _FORK_TASK_TABLE
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        _FORK_TASK_TABLE = tasks
        last_loss = None
        try:
            for attempt in range(self.retry_attempts + 1):
                if attempt:
                    time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
                with ctx.Pool(min(self.pool_size, len(tasks))) as pool:
                    result = pool.map_async(
                        _run_fork_task, range(len(tasks)), chunksize=1
                    )
                    try:
                        return self._wait(pool, result)
                    except _WorkerLoss as loss:
                        last_loss = loss
            raise RuntimeError(
                f"MapReduce phase lost workers in {self.retry_attempts + 1} "
                f"consecutive attempts ({last_loss})"
            )
        finally:
            _FORK_TASK_TABLE = None

    def _wait(self, pool, async_result) -> list[Any]:
        """Wait for a phase; fail fast on deadline or worker loss.

        Polls instead of blocking in ``get`` so a worker death (the
        pool silently replaces the process but its task is lost and the
        result would never become ready) is noticed within one poll
        interval rather than at the phase timeout.
        """
        deadline = time.monotonic() + self.task_timeout_s
        known_pids = {worker.pid for worker in pool._pool}
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"MapReduce phase exceeded {self.task_timeout_s:.0f}s "
                    "(deadlocked or stuck worker)"
                )
            async_result.wait(min(0.05, remaining))
            if async_result.ready():
                return async_result.get(0)
            current_pids = {worker.pid for worker in pool._pool}
            if current_pids != known_pids:
                raise _WorkerLoss(
                    f"worker set changed {sorted(known_pids)} -> "
                    f"{sorted(current_pids)}"
                )

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(self.pool_size)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()


def make_executor(executor: str | Executor, workers: int) -> Executor:
    """Resolve an executor argument: an instance, ``"serial"`` or ``"process"``."""
    if isinstance(executor, Executor):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return ProcessExecutor(workers)
    raise ValueError(
        f"unknown executor {executor!r}; choose 'serial' or 'process'"
    )


# ---------------------------------------------------------------------------
# Jobs and metrics
# ---------------------------------------------------------------------------


@dataclass
class MapReduceJob:
    """A single record-at-a-time MapReduce job description.

    Args:
        name: label for metrics and logs.
        mapper: emits intermediate key/value pairs per input record.
        reducer: folds each key group into output records.
        combiner: optional local pre-aggregation run per map task.
        partitioner: key → reduce-partition routing (hash by default).
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None
    partitioner: Partitioner = hash_partitioner


@dataclass
class ArrayMapReduceJob:
    """An array-native MapReduce job over columnar record batches.

    Mappers and reducers are **module-level functions** (picklable, so
    process pools ship them directly) operating on whole chunks:

    * ``mapper(chunk, partitions, params)`` →
      ``(list of (partition, batch), input_rows)`` — the mapper combines
      locally (sort + bincount fold) and routes each output batch by
      vectorized integer hashing;
    * ``reducer(batches, params)`` → ``(output, output_rows)`` — folds
      one partition's batches.

    Batches expose ``__len__`` (rows crossing the shuffle) and
    ``nbytes`` (shuffle bytes); see :mod:`repro.mapreduce.records`.

    ``reduce_extras``, when set, must hold one picklable value per
    reduce partition; the reducer is then called as
    ``reducer(batches, params, extras[partition])`` — how the
    shared-memory drivers hand each reduce task its own output arena.
    """

    name: str
    mapper: Callable[[Any, int, dict], tuple[list[tuple[int, Any]], int]]
    reducer: Callable[[list, dict], tuple[Any, int]]
    params: dict = field(default_factory=dict)
    reduce_extras: list | None = None


def _counter_property(attr: str):
    """A Counter-backed int field that still supports ``m.x += n``."""

    def getter(self):
        return getattr(self, attr).value

    def setter(self, value):
        getattr(self, attr).value = value

    return property(getter, setter)


#: the Counter-backed JobMetrics count fields, in declaration order
_JOB_COUNT_FIELDS = (
    "map_input_records",
    "map_output_records",
    "combine_output_records",
    "shuffle_records",
    "shuffle_bytes",
    "reduce_groups",
    "reduce_output_records",
)


class JobMetrics:
    """Execution metrics of one job run (the paper's cluster counters).

    The record/byte counts are backed by
    :class:`~repro.obs.metrics.Counter` objects; the public int fields
    are live views onto them, so :meth:`bind` can expose the *same*
    objects through a metrics registry (``metrics.txt`` then shows the
    figures the legacy fields report, identically).
    """

    def __init__(
        self, job_name: str, workers: int, executor: str = "serial"
    ) -> None:
        self.job_name = job_name
        self.workers = workers
        self.executor = executor
        for name in _JOB_COUNT_FIELDS:
            setattr(self, "_" + name, Counter())
        self.map_task_costs: list[int] = []
        self.reduce_task_costs: list[int] = []
        #: payload bytes routed to each reduce partition — one entry per
        #: partition, so the per-worker shuffle load is visible instead
        #: of only the (worker-count-invariant) total
        self.shuffle_partition_bytes: list[int] = []
        #: measured wall-clock seconds of the map / reduce phases (real
        #: time, meaningful for comparing executors; the critical path
        #: below stays the simulated cluster model)
        self.map_wall_s = 0.0
        self.reduce_wall_s = 0.0

    map_input_records = _counter_property("_map_input_records")
    map_output_records = _counter_property("_map_output_records")
    combine_output_records = _counter_property("_combine_output_records")
    shuffle_records = _counter_property("_shuffle_records")
    shuffle_bytes = _counter_property("_shuffle_bytes")
    reduce_groups = _counter_property("_reduce_groups")
    reduce_output_records = _counter_property("_reduce_output_records")

    def bind(self, registry: MetricsRegistry, prefix: str = "repro.mapreduce") -> None:
        """Register the backing counters as ``<prefix>.<field>.count``."""
        for name in _JOB_COUNT_FIELDS:
            registry.register(
                f"{prefix}.{name.replace('_', '.')}.count",
                getattr(self, "_" + name),
            )

    @property
    def wall_s(self) -> float:
        """Measured wall-clock seconds of both phases combined."""
        return self.map_wall_s + self.reduce_wall_s

    @property
    def shuffle_bytes_per_worker(self) -> int:
        """Payload bytes the most-loaded reduce partition receives.

        The figure that actually changes with the worker count: the
        total :attr:`shuffle_bytes` is a property of the workload, but
        each worker only receives its partition's share, so this must
        shrink as workers are added (the bench gates on it).
        """
        return max(self.shuffle_partition_bytes, default=0)

    @property
    def critical_path_cost(self) -> int:
        """Slowest map task + slowest reduce task, in record-cost units.

        This is the simulated parallel wall time; with one worker it
        degenerates to the sequential cost, so
        ``metrics(1).critical_path_cost / metrics(w).critical_path_cost``
        is the simulated speedup at *w* workers.
        """
        map_cost = max(self.map_task_costs, default=0)
        reduce_cost = max(self.reduce_task_costs, default=0)
        return map_cost + reduce_cost

    @property
    def skew(self) -> float:
        """Max/mean reduce-task cost ratio (1.0 = perfectly balanced)."""
        costs = [c for c in self.reduce_task_costs if c > 0]
        if not costs:
            return 1.0
        return max(costs) / (sum(costs) / len(costs))


def _run_record_map_task(
    job: MapReduceJob, split: list[tuple[Any, Any]]
) -> tuple[int, list[tuple[Any, Any]], float]:
    """One map task: mapper over the split, then the optional combiner.

    Returns ``(pre_combine_record_count, task_output, combine_seconds)``
    — the combine time is measured in the worker and travels back with
    the result, so the driver can attribute it without a second clock.
    """
    task_output: list[tuple[Any, Any]] = []
    for key, value in split:
        for out in job.mapper(key, value):
            task_output.append(out)
    raw_count = len(task_output)
    combine_s = 0.0
    if job.combiner is not None:
        t0 = time.perf_counter()
        grouped = _group(task_output)
        combined: list[tuple[Any, Any]] = []
        for key in grouped:
            combined.extend(job.combiner(key, grouped[key]))
        task_output = combined
        combine_s = time.perf_counter() - t0
    return raw_count, task_output, combine_s


def _timed_task(task: Callable[[], Any]) -> tuple[float, Any]:
    """Wrap one closure task: measure its wall in the worker."""
    t0 = time.perf_counter()
    result = task()
    return time.perf_counter() - t0, result


def _timed_spec(fn: Callable, *args) -> tuple[float, Any]:
    """Picklable spec wrapper: ``(duration_s, fn(*args))``."""
    t0 = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - t0, result


def _run_record_reduce_task(
    job: MapReduceJob, grouped: dict[Any, list[Any]]
) -> tuple[list[tuple[Any, Any]], int, int]:
    """One reduce task over a partition's groups, in sorted key order.

    Returns ``(output, task_cost, group_count)``.
    """
    output: list[tuple[Any, Any]] = []
    task_cost = 0
    groups = 0
    for key in sorted(grouped, key=repr):
        values = grouped[key]
        task_cost += len(values)
        groups += 1
        for out in job.reducer(key, values):
            output.append(out)
            task_cost += 1
    return output, task_cost, groups


class MapReduceEngine:
    """Runs job descriptions over in-memory records.

    Args:
        workers: cluster worker count (map and reduce parallelism).
            Must be >= 1.
        executor: where tasks run — ``"serial"`` (deterministic
            in-process oracle, the default), ``"process"`` (real
            ``multiprocessing`` workers) or an :class:`Executor`
            instance.  Results are identical across executors.
        obs: an :class:`~repro.obs.Observability` handle — every job
            then emits a ``mapreduce.job`` span with
            map/combine/shuffle/reduce children (per-task spans carry
            worker-measured durations) plus aggregate record/byte
            counters.  Default: the disabled no-op handle.
    """

    def __init__(
        self,
        workers: int = 4,
        executor: str | Executor = "serial",
        obs: Observability | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.executor = make_executor(executor, workers)
        self.obs = obs if obs is not None else DISABLED
        #: shared-memory stores currently live under this engine's jobs;
        #: drivers adopt/release around their own try/finally so a crash
        #: anywhere still converges to zero surviving segments
        self._stores: set = set()

    def adopt_store(self, store) -> None:
        """Track a :class:`~repro.mapreduce.shm.SharedBlockStore`.

        Adopted stores are destroyed by :meth:`close` if their driver
        did not release them first — the engine-level safety net behind
        the guaranteed ``close()``/``unlink()`` lifecycle.
        """
        self._stores.add(store)

    def release_store(self, store) -> None:
        """Destroy *store* (idempotent) and stop tracking it."""
        store.destroy()
        self._stores.discard(store)

    def close(self) -> None:
        """Release the executor's resources (worker pools, segments)."""
        while self._stores:
            self._stores.pop().destroy()
        self.executor.close()

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        job: MapReduceJob,
        records: Iterable[tuple[Any, Any]],
    ) -> tuple[list[tuple[Any, Any]], JobMetrics]:
        """Execute *job* over *records*.

        Returns:
            ``(output_records, metrics)``.  Output records are ordered by
            reduce partition then sorted key, mirroring part-file order on
            a real cluster — identically for every executor.
        """
        record_list = list(records)
        metrics = JobMetrics(
            job_name=job.name, workers=self.workers, executor=self.executor.name
        )
        metrics.map_input_records = len(record_list)
        obs = self.obs

        with obs.span(
            "mapreduce.job",
            job=job.name,
            workers=self.workers,
            executor=self.executor.name,
        ) as job_span:
            # -- map phase (with per-task combining) ----------------------
            # Record jobs carry closure mappers/reducers (not picklable),
            # so they dispatch as bound tasks: the serial executor calls
            # them inline, the process executor fork-inherits them.
            splits = list(self._split(record_list))
            tasks = [
                partial(_run_record_map_task, job, split) for split in splits
            ]
            if obs.enabled:
                tasks = [partial(_timed_task, task) for task in tasks]
            with obs.timed(
                "mapreduce.map",
                metric="repro.mapreduce.map.seconds",
                tasks=len(tasks),
            ) as timer:
                raw_results = self.executor.run_tasks(tasks)
                if obs.enabled:
                    map_results = []
                    for index, (task_s, result) in enumerate(raw_results):
                        obs.event(
                            "mapreduce.map.task", task_s, worker=index
                        )
                        if job.combiner is not None:
                            obs.event(
                                "mapreduce.combine.task",
                                result[2],
                                worker=index,
                            )
                        map_results.append(result)
                else:
                    map_results = raw_results
            metrics.map_wall_s = timer.duration_s

            # -- shuffle (driver-side, deterministic) ---------------------
            with obs.timed(
                "mapreduce.shuffle", metric="repro.mapreduce.shuffle.seconds"
            ) as shuffle_span:
                partitions: list[dict[Any, list[Any]]] = [
                    dict() for _ in range(self.workers)
                ]
                partition_bytes = [0] * self.workers
                for split, (raw_count, task_output, _combine_s) in zip(
                    splits, map_results
                ):
                    metrics.map_output_records += raw_count
                    metrics.map_task_costs.append(len(split) + raw_count)
                    if job.combiner is not None:
                        metrics.combine_output_records += len(task_output)
                    for key, value in task_output:
                        partition = job.partitioner(key, self.workers)
                        partitions[partition].setdefault(key, []).append(value)
                        metrics.shuffle_records += 1
                        partition_bytes[partition] += _record_size(key, value)
                metrics.shuffle_bytes += sum(partition_bytes)
                metrics.shuffle_partition_bytes = partition_bytes
                shuffle_span.set(
                    records=metrics.shuffle_records,
                    bytes=metrics.shuffle_bytes,
                )

            # -- reduce phase ---------------------------------------------
            tasks = [
                partial(_run_record_reduce_task, job, grouped)
                for grouped in partitions
            ]
            if obs.enabled:
                tasks = [partial(_timed_task, task) for task in tasks]
            with obs.timed(
                "mapreduce.reduce",
                metric="repro.mapreduce.reduce.seconds",
                tasks=len(tasks),
            ) as timer:
                raw_results = self.executor.run_tasks(tasks)
                reduce_results = self._unwrap_timed(
                    raw_results, "mapreduce.reduce.task"
                )
            metrics.reduce_wall_s = timer.duration_s

            output: list[tuple[Any, Any]] = []
            for partition_output, task_cost, groups in reduce_results:
                output.extend(partition_output)
                metrics.reduce_task_costs.append(task_cost)
                metrics.reduce_groups += groups
            metrics.reduce_output_records = len(output)
            job_span.set(
                input_records=metrics.map_input_records,
                output_records=metrics.reduce_output_records,
            )
        self._count_job(metrics)
        return output, metrics

    def run_chain(
        self,
        jobs: list[MapReduceJob],
        records: Iterable[tuple[Any, Any]],
    ) -> tuple[list[tuple[Any, Any]], list[JobMetrics]]:
        """Run *jobs* sequentially, feeding each job's output to the next."""
        current = list(records)
        all_metrics: list[JobMetrics] = []
        for job in jobs:
            current, metrics = self.run(job, current)
            all_metrics.append(metrics)
        return current, all_metrics

    def run_array(
        self,
        job: ArrayMapReduceJob,
        chunks: list[Any],
        chunk_rows: list[int] | None = None,
    ) -> tuple[list[Any], JobMetrics]:
        """Execute an array-native *job* over pre-split input *chunks*.

        Args:
            job: the batch job description.
            chunks: one opaque (picklable) payload per map task.
            chunk_rows: optional per-chunk input row counts for the
                metrics (defaults to the mapper-reported counts).

        Returns:
            ``(per_partition_reduce_outputs, metrics)`` with one output
            per partition, in partition order (empty partitions yield
            the reducer's output over zero batches).
        """
        metrics = JobMetrics(
            job_name=job.name, workers=self.workers, executor=self.executor.name
        )
        obs = self.obs

        with obs.span(
            "mapreduce.job",
            job=job.name,
            workers=self.workers,
            executor=self.executor.name,
        ) as job_span:
            specs = [
                (job.mapper, (chunk, self.workers, job.params))
                for chunk in chunks
            ]
            if obs.enabled:
                # The timing wrapper is a module-level function over the
                # picklable spec, so the process pool ships it unchanged.
                specs = [(_timed_spec, (fn,) + args) for fn, args in specs]
            with obs.timed(
                "mapreduce.map",
                metric="repro.mapreduce.map.seconds",
                tasks=len(specs),
            ) as timer:
                raw_results = self.executor.run_specs(specs)
                map_results = self._unwrap_timed(
                    raw_results, "mapreduce.map.task"
                )
            metrics.map_wall_s = timer.duration_s

            with obs.timed(
                "mapreduce.shuffle", metric="repro.mapreduce.shuffle.seconds"
            ) as shuffle_span:
                partitions: list[list[Any]] = [[] for _ in range(self.workers)]
                partition_bytes = [0] * self.workers
                for index, (routed, input_rows) in enumerate(map_results):
                    if chunk_rows is not None:
                        input_rows = chunk_rows[index]
                    metrics.map_input_records += input_rows
                    task_out = 0
                    for partition, batch in routed:
                        rows = len(batch)
                        partitions[partition].append(batch)
                        task_out += rows
                        metrics.shuffle_records += rows
                        partition_bytes[partition] += batch.nbytes
                    metrics.map_output_records += task_out
                    metrics.combine_output_records += task_out
                    metrics.map_task_costs.append(input_rows + task_out)
                metrics.shuffle_bytes += sum(partition_bytes)
                metrics.shuffle_partition_bytes = partition_bytes
                shuffle_span.set(
                    records=metrics.shuffle_records,
                    bytes=metrics.shuffle_bytes,
                )

            if job.reduce_extras is not None:
                if len(job.reduce_extras) != self.workers:
                    raise ValueError(
                        "reduce_extras must hold one entry per partition "
                        f"({len(job.reduce_extras)} != {self.workers})"
                    )
                specs = [
                    (job.reducer, (batches, job.params, extra))
                    for batches, extra in zip(partitions, job.reduce_extras)
                ]
            else:
                specs = [
                    (job.reducer, (batches, job.params)) for batches in partitions
                ]
            if obs.enabled:
                specs = [(_timed_spec, (fn,) + args) for fn, args in specs]
            with obs.timed(
                "mapreduce.reduce",
                metric="repro.mapreduce.reduce.seconds",
                tasks=len(specs),
            ) as timer:
                raw_results = self.executor.run_specs(specs)
                reduce_results = self._unwrap_timed(
                    raw_results, "mapreduce.reduce.task"
                )
            metrics.reduce_wall_s = timer.duration_s

            outputs: list[Any] = []
            for batches, (output, output_rows) in zip(partitions, reduce_results):
                input_rows = sum(len(batch) for batch in batches)
                metrics.reduce_task_costs.append(input_rows + output_rows)
                metrics.reduce_groups += output_rows
                metrics.reduce_output_records += output_rows
                outputs.append(output)
            job_span.set(
                input_records=metrics.map_input_records,
                output_records=metrics.reduce_output_records,
            )
        self._count_job(metrics)
        return outputs, metrics

    def _unwrap_timed(self, results: list[Any], name: str) -> list[Any]:
        """Emit per-task spans from ``(duration, result)`` wrappers."""
        if not self.obs.enabled:
            return results
        unwrapped = []
        for index, (task_s, result) in enumerate(results):
            self.obs.event(name, task_s, worker=index)
            unwrapped.append(result)
        return unwrapped

    def _count_job(self, metrics: JobMetrics) -> None:
        """Fold one job's counts into the engine's aggregate counters."""
        obs = self.obs
        if not obs.enabled:
            return
        obs.count("repro.mapreduce.jobs.count")
        obs.count(
            "repro.mapreduce.map.input.records.count",
            metrics.map_input_records,
        )
        obs.count(
            "repro.mapreduce.shuffle.records.count", metrics.shuffle_records
        )
        obs.count("repro.mapreduce.shuffle.bytes.count", metrics.shuffle_bytes)
        obs.count(
            "repro.mapreduce.reduce.output.records.count",
            metrics.reduce_output_records,
        )

    def _split(self, records: list[tuple[Any, Any]]) -> Iterator[list[tuple[Any, Any]]]:
        """Round-robin input splits, as contiguous ranges (like HDFS splits)."""
        if not records:
            return
        size, remainder = divmod(len(records), self.workers)
        start = 0
        for worker in range(self.workers):
            length = size + (1 if worker < remainder else 0)
            if length == 0:
                continue
            yield records[start : start + length]
            start += length


def _group(pairs: list[tuple[Any, Any]]) -> dict[Any, list[Any]]:
    grouped: dict[Any, list[Any]] = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    return grouped


def _record_size(key: Any, value: Any) -> int:
    """Approximate serialized record size in bytes."""
    return len(repr(key)) + len(repr(value))
