"""The in-process MapReduce job runner.

The engine executes a classic Hadoop-style job:

1. the input record list is split into ``workers`` map tasks;
2. each map task runs the **mapper** over its records and, if configured,
   a **combiner** over its local output (grouped by key);
3. map output is **partitioned** by key hash into ``workers`` reduce
   partitions and each partition is **sorted by key** (the shuffle);
4. each reduce task runs the **reducer** over its groups.

Everything happens in one process, but the data movement is real: the
engine counts records and (approximate) bytes crossing the shuffle, and a
critical-path time model — the slowest map task plus the slowest reduce
task, in record-cost units — lets experiments measure skew and speedup
exactly the way the parallel meta-blocking paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.utils.rng import stable_hash

#: mapper: (key, value) -> iterable of (key, value)
Mapper = Callable[[Any, Any], Iterable[tuple[Any, Any]]]
#: reducer/combiner: (key, list of values) -> iterable of (key, value)
Reducer = Callable[[Any, list], Iterable[tuple[Any, Any]]]
#: partitioner: (key, partitions) -> partition index
Partitioner = Callable[[Any, int], int]


def hash_partitioner(key: Any, partitions: int) -> int:
    """Hadoop-style deterministic hash partitioning on ``repr(key)``."""
    return stable_hash(repr(key), partitions)


@dataclass
class MapReduceJob:
    """A single MapReduce job description.

    Args:
        name: label for metrics and logs.
        mapper: emits intermediate key/value pairs per input record.
        reducer: folds each key group into output records.
        combiner: optional local pre-aggregation run per map task.
        partitioner: key → reduce-partition routing (hash by default).
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None
    partitioner: Partitioner = hash_partitioner


@dataclass
class JobMetrics:
    """Execution metrics of one job run (the paper's cluster counters)."""

    job_name: str
    workers: int
    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    reduce_groups: int = 0
    reduce_output_records: int = 0
    map_task_costs: list[int] = field(default_factory=list)
    reduce_task_costs: list[int] = field(default_factory=list)

    @property
    def critical_path_cost(self) -> int:
        """Slowest map task + slowest reduce task, in record-cost units.

        This is the simulated parallel wall time; with one worker it
        degenerates to the sequential cost, so
        ``metrics(1).critical_path_cost / metrics(w).critical_path_cost``
        is the simulated speedup at *w* workers.
        """
        map_cost = max(self.map_task_costs, default=0)
        reduce_cost = max(self.reduce_task_costs, default=0)
        return map_cost + reduce_cost

    @property
    def skew(self) -> float:
        """Max/mean reduce-task cost ratio (1.0 = perfectly balanced)."""
        costs = [c for c in self.reduce_task_costs if c > 0]
        if not costs:
            return 1.0
        return max(costs) / (sum(costs) / len(costs))


class MapReduceEngine:
    """Runs :class:`MapReduceJob` descriptions over in-memory records.

    Args:
        workers: number of simulated cluster workers (map and reduce
            parallelism).  Must be >= 1.
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(
        self,
        job: MapReduceJob,
        records: Iterable[tuple[Any, Any]],
    ) -> tuple[list[tuple[Any, Any]], JobMetrics]:
        """Execute *job* over *records*.

        Returns:
            ``(output_records, metrics)``.  Output records are ordered by
            reduce partition then sorted key, mirroring part-file order on
            a real cluster.
        """
        record_list = list(records)
        metrics = JobMetrics(job_name=job.name, workers=self.workers)
        metrics.map_input_records = len(record_list)

        # -- map phase (with per-task combining) --------------------------
        splits = self._split(record_list)
        partitions: list[dict[Any, list[Any]]] = [dict() for _ in range(self.workers)]
        for split in splits:
            task_output: list[tuple[Any, Any]] = []
            for key, value in split:
                for out_key, out_value in job.mapper(key, value):
                    task_output.append((out_key, out_value))
            metrics.map_output_records += len(task_output)
            metrics.map_task_costs.append(len(split) + len(task_output))

            if job.combiner is not None:
                grouped = _group(task_output)
                combined: list[tuple[Any, Any]] = []
                for key in grouped:
                    combined.extend(job.combiner(key, grouped[key]))
                task_output = combined
                metrics.combine_output_records += len(task_output)

            for key, value in task_output:
                partition = job.partitioner(key, self.workers)
                partitions[partition].setdefault(key, []).append(value)
                metrics.shuffle_records += 1
                metrics.shuffle_bytes += _record_size(key, value)

        # -- reduce phase ----------------------------------------------------
        output: list[tuple[Any, Any]] = []
        for grouped in partitions:
            task_cost = 0
            for key in sorted(grouped, key=repr):
                values = grouped[key]
                task_cost += len(values)
                metrics.reduce_groups += 1
                for out in job.reducer(key, values):
                    output.append(out)
                    task_cost += 1
            metrics.reduce_task_costs.append(task_cost)
        metrics.reduce_output_records = len(output)
        return output, metrics

    def run_chain(
        self,
        jobs: list[MapReduceJob],
        records: Iterable[tuple[Any, Any]],
    ) -> tuple[list[tuple[Any, Any]], list[JobMetrics]]:
        """Run *jobs* sequentially, feeding each job's output to the next."""
        current = list(records)
        all_metrics: list[JobMetrics] = []
        for job in jobs:
            current, metrics = self.run(job, current)
            all_metrics.append(metrics)
        return current, all_metrics

    def _split(self, records: list[tuple[Any, Any]]) -> Iterator[list[tuple[Any, Any]]]:
        """Round-robin input splits, as contiguous ranges (like HDFS splits)."""
        if not records:
            return
        size, remainder = divmod(len(records), self.workers)
        start = 0
        for worker in range(self.workers):
            length = size + (1 if worker < remainder else 0)
            if length == 0:
                continue
            yield records[start : start + length]
            start += length


def _group(pairs: list[tuple[Any, Any]]) -> dict[Any, list[Any]]:
    grouped: dict[Any, list[Any]] = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    return grouped


def _record_size(key: Any, value: Any) -> int:
    """Approximate serialized record size in bytes."""
    return len(repr(key)) + len(repr(value))
