"""MapReduce block post-processing: parallel purging and filtering.

On a cluster, block purging and filtering run as MapReduce jobs between
blocking and meta-blocking [5].  Both are reproduced here:

* **parallel purging** — a statistics job aggregates the per-cardinality
  (comparisons, assignments) histogram; the driver computes the adaptive
  threshold exactly as the sequential :class:`~repro.blocking.purging.
  BlockPurging` does (the histogram is tiny, so this mirrors Hadoop
  practice of finishing scalar decisions driver-side); a second job drops
  oversized blocks.
* **parallel filtering** — entity-centric: map emits ``(entity,
  (block_key, cardinality))`` for every assignment, each reduce group
  ranks one entity's blocks and keeps its smallest share, and a final job
  regroups the surviving assignments into blocks.

Outputs are identical to the sequential implementations (asserted in
tests), with the engine metrics exposing the extra shuffle rounds a
cluster pays for post-processing.  The purging statistics job keys its
shuffle by integer cardinality levels, which the engine now routes
through the allocation-free integer hash; both jobs run on either
executor (closures are fork-inherited by the process executor).
"""

from __future__ import annotations

from typing import Iterator

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.mapreduce.engine import JobMetrics, MapReduceEngine, MapReduceJob


def parallel_block_purging(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    purging: BlockPurging | None = None,
) -> tuple[BlockCollection, list[JobMetrics]]:
    """Run block purging as MapReduce jobs on *engine*.

    Returns:
        ``(purged_blocks, [stats_metrics, drop_metrics])``.
    """
    purging = purging or BlockPurging()

    def stats_mapper(_key, block) -> Iterator[tuple[int, tuple[int, int]]]:
        yield block.cardinality(), (block.cardinality(), len(block))

    def stats_reducer(cardinality, values) -> Iterator[tuple[int, tuple[int, int]]]:
        yield cardinality, (
            sum(v[0] for v in values),
            sum(v[1] for v in values),
        )

    stats_job = MapReduceJob(
        name="purging-statistics", mapper=stats_mapper, reducer=stats_reducer,
        combiner=stats_reducer,
    )
    records = [(block.key, block) for block in blocks]
    histogram, stats_metrics = engine.run(stats_job, records)

    threshold = (
        purging.max_cardinality
        if purging.max_cardinality is not None
        else _threshold_from_histogram(dict(histogram), purging.smoothing)
    )

    def drop_mapper(key, block) -> Iterator[tuple[str, Block]]:
        if block.cardinality() <= threshold:
            yield key, block

    def identity_reducer(key, values) -> Iterator[tuple[str, Block]]:
        yield key, values[0]

    drop_job = MapReduceJob(
        name="purging-drop", mapper=drop_mapper, reducer=identity_reducer
    )
    output, drop_metrics = engine.run(drop_job, records)
    purged = BlockCollection(name=f"purged({blocks.name})")
    for _key, block in sorted(output, key=lambda kv: kv[0]):
        purged.add(block)
    return purged, [stats_metrics, drop_metrics]


def _threshold_from_histogram(
    histogram: dict[int, tuple[int, int]], smoothing: float
) -> int:
    """The sequential adaptive-threshold scan over an aggregated histogram."""
    if not histogram:
        return 1
    levels = sorted(histogram)
    cum_comparisons: list[int] = []
    cum_assignments: list[int] = []
    running_comps = 0
    running_assigns = 0
    for level in levels:
        comps, assigns = histogram[level]
        running_comps += comps
        running_assigns += assigns
        cum_comparisons.append(running_comps)
        cum_assignments.append(running_assigns)
    cut = len(levels) - 1
    while cut > 0:
        ratio_with = cum_comparisons[cut] / max(cum_assignments[cut], 1)
        ratio_without = cum_comparisons[cut - 1] / max(cum_assignments[cut - 1], 1)
        if ratio_with <= smoothing * ratio_without:
            break
        cut -= 1
    return levels[cut]


def parallel_block_filtering(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    filtering: BlockFiltering | None = None,
) -> tuple[BlockCollection, list[JobMetrics]]:
    """Run entity-centric block filtering as MapReduce jobs on *engine*.

    Returns:
        ``(filtered_blocks, [retention_metrics, regroup_metrics])``.
    """
    filtering = filtering or BlockFiltering()
    ratio = filtering.ratio
    bipartite = any(block.is_bipartite for block in blocks)

    def assignment_mapper(key, block) -> Iterator[tuple[str, tuple[str, int, int]]]:
        # Ship each assignment with the block's cardinality and the
        # entity's side, so the reducer needs no driver-side state.
        cardinality = block.cardinality()
        for uri in block.entities1:
            yield uri, (key, cardinality, 1)
        if block.entities2 is not None:
            for uri in block.entities2:
                yield uri, (key, cardinality, 2)

    def retention_reducer(uri, assignments) -> Iterator[tuple[str, tuple[str, int]]]:
        limit = max(1, int(ratio * len(assignments) + 0.5))
        ranked = sorted(assignments, key=lambda a: (a[1], a[0]))
        for key, _cardinality, side in ranked[:limit]:
            yield key, (uri, side)

    retention_job = MapReduceJob(
        name="filtering-retention", mapper=assignment_mapper, reducer=retention_reducer
    )
    records = [(block.key, block) for block in blocks]
    retained, retention_metrics = engine.run(retention_job, records)

    def regroup_mapper(key, member) -> Iterator[tuple[str, tuple[str, int]]]:
        yield key, member

    def regroup_reducer(key, members) -> Iterator[tuple[str, Block]]:
        side1 = sorted(uri for uri, side in members if side == 1)
        side2 = sorted(uri for uri, side in members if side == 2)
        if bipartite:
            if side1 and side2:
                yield key, Block(key, side1, side2)
        elif len(side1) >= 2:
            yield key, Block(key, side1)

    regroup_job = MapReduceJob(
        name="filtering-regroup", mapper=regroup_mapper, reducer=regroup_reducer
    )
    output, regroup_metrics = engine.run(regroup_job, retained)
    filtered = BlockCollection(name=f"filtered({blocks.name})")
    for _key, block in sorted(output, key=lambda kv: kv[0]):
        filtered.add(block)
    return filtered, [retention_metrics, regroup_metrics]
