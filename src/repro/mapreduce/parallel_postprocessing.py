"""MapReduce block post-processing: parallel purging and filtering.

On a cluster, block purging and filtering run as MapReduce jobs between
blocking and meta-blocking [5].  Both are reproduced here on the
columnar batch path — per-block and per-assignment rows travel as
parallel numpy arrays, never as per-record Python tuples:

* **parallel purging** — a statistics job aggregates the per-cardinality
  (comparisons, assignments) histogram with a map-side ``np.unique``
  combine; the driver computes the adaptive threshold exactly as the
  sequential :class:`~repro.blocking.purging.BlockPurging` does (the
  histogram is tiny, so this mirrors Hadoop practice of finishing scalar
  decisions driver-side); a second job drops oversized blocks.
* **parallel filtering** — entity-centric: map expands each block into
  assignment rows ``(uri, block_rank, cardinality, side)`` routed by
  entity, each reduce group ranks one entity's blocks and keeps its
  smallest share, and a final job regroups the surviving assignments
  into blocks.

Blocks are identified throughout by their **key rank** (the block key's
position in sorted key order): an int64 column routes through the
allocation-free splitmix hash, and ranking by ``(cardinality, rank)``
reproduces the sequential ``(cardinality, key)`` tie-break exactly.
Outputs are identical to the sequential implementations (asserted in
tests), with the engine metrics exposing the extra shuffle rounds a
cluster pays for post-processing.  Mappers and reducers are module-level
functions over picklable chunks, so both jobs run on the persistent
process pool.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised throughout this module
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.mapreduce.engine import ArrayMapReduceJob, JobMetrics, MapReduceEngine
from repro.mapreduce.parallel_blocking import split_records
from repro.mapreduce.records import (
    concat_batches,
    partition_assigned,
    partition_batch,
    stable_hash_str_array,
)


def _ranked_blocks(blocks: BlockCollection) -> tuple[list[str], dict[str, int]]:
    """Block keys in sorted order plus the key → rank lookup."""
    keys = sorted(block.key for block in blocks)
    return keys, {key: rank for rank, key in enumerate(keys)}


# ---------------------------------------------------------------------------
# Purging
# ---------------------------------------------------------------------------


def _map_purging_stats(chunk, partitions: int, params: dict):
    """Per-level (comparisons, assignments) sums — the map-side combine."""
    cardinality, size = chunk
    if not len(cardinality):
        return [], 0
    levels, inverse = np.unique(cardinality, return_inverse=True)
    comparisons = np.bincount(
        inverse, weights=cardinality.astype(np.float64)
    ).astype(np.int64)
    assignments = np.bincount(inverse, weights=size.astype(np.float64)).astype(
        np.int64
    )
    columns = (levels, comparisons, assignments)
    return partition_batch(columns, levels, partitions), len(cardinality)


def _reduce_purging_stats(batches: list, params: dict):
    """Merge one partition's per-level sums into histogram entries."""
    levels, comparisons, assignments = concat_batches(batches, 3)
    if not len(levels):
        return [], 0
    unique, inverse = np.unique(levels, return_inverse=True)
    comps = np.bincount(inverse, weights=comparisons.astype(np.float64)).astype(
        np.int64
    )
    assigns = np.bincount(inverse, weights=assignments.astype(np.float64)).astype(
        np.int64
    )
    entries = list(zip(unique.tolist(), zip(comps.tolist(), assigns.tolist())))
    return entries, len(entries)


def _map_purging_drop(chunk, partitions: int, params: dict):
    """Keep block ranks at or below the cardinality threshold."""
    rank, cardinality = chunk
    kept = rank[cardinality <= params["threshold"]]
    return partition_batch((kept,), kept, partitions), len(rank)


def _reduce_rank_identity(batches: list, params: dict):
    (ranks,) = concat_batches(batches, 1)
    return ranks, len(ranks)


def parallel_block_purging(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    purging: BlockPurging | None = None,
) -> tuple[BlockCollection, list[JobMetrics]]:
    """Run block purging as columnar MapReduce jobs on *engine*.

    Returns:
        ``(purged_blocks, [stats_metrics, drop_metrics])``.
    """
    purging = purging or BlockPurging()
    keys, _ = _ranked_blocks(blocks)
    by_key = {block.key: block for block in blocks}
    cardinality = np.array(
        [by_key[key].cardinality() for key in keys], dtype=np.int64
    )
    size = np.array([len(by_key[key]) for key in keys], dtype=np.int64)
    ranks = np.arange(len(keys), dtype=np.int64)
    splits = split_records(list(range(len(keys))), engine.workers)
    stat_chunks = [(cardinality[s[0] : s[-1] + 1], size[s[0] : s[-1] + 1]) for s in splits]

    stats_job = ArrayMapReduceJob(
        name="purging-statistics",
        mapper=_map_purging_stats,
        reducer=_reduce_purging_stats,
    )
    outputs, stats_metrics = engine.run_array(stats_job, stat_chunks)
    histogram = dict(entry for output in outputs for entry in output)

    threshold = (
        purging.max_cardinality
        if purging.max_cardinality is not None
        else _threshold_from_histogram(histogram, purging.smoothing)
    )

    drop_chunks = [
        (ranks[s[0] : s[-1] + 1], cardinality[s[0] : s[-1] + 1]) for s in splits
    ]
    drop_job = ArrayMapReduceJob(
        name="purging-drop",
        mapper=_map_purging_drop,
        reducer=_reduce_rank_identity,
        params={"threshold": threshold},
    )
    outputs, drop_metrics = engine.run_array(drop_job, drop_chunks)
    survivors = np.sort(np.concatenate(outputs)) if outputs else ranks[:0]
    purged = BlockCollection(name=f"purged({blocks.name})")
    for rank in survivors.tolist():
        purged.add(by_key[keys[rank]])
    return purged, [stats_metrics, drop_metrics]


def _threshold_from_histogram(
    histogram: dict[int, tuple[int, int]], smoothing: float
) -> int:
    """The sequential adaptive-threshold scan over an aggregated histogram."""
    if not histogram:
        return 1
    levels = sorted(histogram)
    cum_comparisons: list[int] = []
    cum_assignments: list[int] = []
    running_comps = 0
    running_assigns = 0
    for level in levels:
        comps, assigns = histogram[level]
        running_comps += comps
        running_assigns += assigns
        cum_comparisons.append(running_comps)
        cum_assignments.append(running_assigns)
    cut = len(levels) - 1
    while cut > 0:
        ratio_with = cum_comparisons[cut] / max(cum_assignments[cut], 1)
        ratio_without = cum_comparisons[cut - 1] / max(cum_assignments[cut - 1], 1)
        if ratio_with <= smoothing * ratio_without:
            break
        cut -= 1
    return levels[cut]


# ---------------------------------------------------------------------------
# Filtering
# ---------------------------------------------------------------------------


def _map_filter_assignments(chunk, partitions: int, params: dict):
    """Expand one slice of blocks into assignment rows, routed by entity.

    Row order is block order then side-1 before side-2 members — the
    emission order the sequential tie-break relies on.
    """
    uris: list[str] = []
    ranks: list[int] = []
    cards: list[int] = []
    sides: list[int] = []
    for rank, cardinality, entities1, entities2 in chunk:
        uris.extend(entities1)
        ranks.extend([rank] * len(entities1))
        cards.extend([cardinality] * len(entities1))
        sides.extend([1] * len(entities1))
        if entities2 is not None:
            uris.extend(entities2)
            ranks.extend([rank] * len(entities2))
            cards.extend([cardinality] * len(entities2))
            sides.extend([2] * len(entities2))
    if not uris:
        return [], len(chunk)
    uri_col = np.array(uris)
    columns = (
        uri_col,
        np.array(ranks, dtype=np.int64),
        np.array(cards, dtype=np.int64),
        np.array(sides, dtype=np.int64),
    )
    assignment = stable_hash_str_array(uri_col, partitions)
    return partition_assigned(columns, assignment, partitions), len(chunk)


def _reduce_entity_retention(batches: list, params: dict):
    """Keep each entity's smallest-cardinality share of its blocks.

    Ranking by ``(cardinality, block rank)`` equals the sequential
    ``(cardinality, key)`` sort — the rank *is* the key's sorted
    position — and the stable lexsort keeps emission order for the only
    possible tie (one URI on both sides of one block), exactly like
    ``sorted``.
    """
    uris, ranks, cards, sides = concat_batches(batches, 4)
    if not len(uris):
        return None, 0
    order = np.lexsort((ranks, cards, uris))
    uris_s = uris[order]
    boundary = np.concatenate(([True], uris_s[1:] != uris_s[:-1]))
    group_starts = np.flatnonzero(boundary)
    group_sizes = np.diff(np.append(group_starts, len(uris_s)))
    limits = np.maximum(
        1, (params["ratio"] * group_sizes + 0.5).astype(np.int64)
    )
    position = np.arange(len(uris_s)) - np.repeat(group_starts, group_sizes)
    kept = position < np.repeat(limits, group_sizes)
    columns = (ranks[order][kept], uris_s[kept], sides[order][kept])
    return columns, int(kept.sum())


def _map_regroup(chunk, partitions: int, params: dict):
    """Route surviving assignments back to their blocks."""
    ranks, uris, sides = chunk
    return partition_batch((ranks, uris, sides), ranks, partitions), len(ranks)


def _reduce_block_regroup(batches: list, params: dict):
    """Rebuild each block from its surviving members (sorted per side)."""
    ranks, uris, sides = concat_batches(batches, 3)
    if not len(ranks):
        return [], 0
    order = np.lexsort((uris, sides, ranks))
    ranks_s = ranks[order]
    uris_s = uris[order]
    sides_s = sides[order]
    boundary = np.concatenate(([True], ranks_s[1:] != ranks_s[:-1]))
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], len(ranks_s))
    bipartite = params["bipartite"]
    out: list[tuple[int, list[str], list[str] | None]] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        side = sides_s[start:end]
        uri = uris_s[start:end]
        side1 = uri[side == 1].tolist()
        side2 = uri[side == 2].tolist()
        if bipartite:
            if side1 and side2:
                out.append((int(ranks_s[start]), side1, side2))
        elif len(side1) >= 2:
            out.append((int(ranks_s[start]), side1, None))
    return out, len(out)


def parallel_block_filtering(
    engine: MapReduceEngine,
    blocks: BlockCollection,
    filtering: BlockFiltering | None = None,
) -> tuple[BlockCollection, list[JobMetrics]]:
    """Run entity-centric block filtering as columnar MapReduce jobs.

    Returns:
        ``(filtered_blocks, [retention_metrics, regroup_metrics])``.
    """
    filtering = filtering or BlockFiltering()
    keys, rank_of = _ranked_blocks(blocks)
    by_key = {block.key: block for block in blocks}
    bipartite = any(block.is_bipartite for block in blocks)
    # Assignment expansion order must match the sequential map emission:
    # blocks in collection order, side 1 before side 2.
    records = [
        (
            rank_of[block.key],
            block.cardinality(),
            block.entities1,
            block.entities2,
        )
        for block in blocks
    ]

    retention_job = ArrayMapReduceJob(
        name="filtering-retention",
        mapper=_map_filter_assignments,
        reducer=_reduce_entity_retention,
        params={"ratio": filtering.ratio},
    )
    retained, retention_metrics = engine.run_array(
        retention_job, split_records(records, engine.workers)
    )

    regroup_job = ArrayMapReduceJob(
        name="filtering-regroup",
        mapper=_map_regroup,
        reducer=_reduce_block_regroup,
        params={"bipartite": bipartite},
    )
    regroup_chunks = [
        columns for columns in retained if columns is not None and len(columns[0])
    ]
    outputs, regroup_metrics = engine.run_array(regroup_job, regroup_chunks)

    merged = [entry for output in outputs for entry in output]
    merged.sort(key=lambda entry: entry[0])
    filtered = BlockCollection(name=f"filtered({blocks.name})")
    for rank, side1, side2 in merged:
        key = keys[rank]
        filtered.add(Block(key, side1, side2) if side2 is not None else Block(key, side1))
    return filtered, [retention_metrics, regroup_metrics]
