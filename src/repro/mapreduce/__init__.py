"""An in-process MapReduce engine and the parallel ER algorithms on it.

MinoanER "exploits the parallel processing power of a computer cluster via
Hadoop MapReduce" for blocking and meta-blocking [4, 5].  With no cluster
available, this package substitutes a faithful in-process engine that
reproduces the MapReduce **programming model** — mappers, combiners,
hash partitioning, sorted shuffle, reducers, counters — and simulates the
cluster dimension (configurable worker count, per-worker task metrics,
critical-path time model), so the parallel formulations of [4, 5] run
unchanged and their scaling behaviour (E8) can be measured.

* :mod:`repro.mapreduce.engine` — the job runner;
* :mod:`repro.mapreduce.parallel_blocking` — MapReduce token blocking [5];
* :mod:`repro.mapreduce.parallel_metablocking` — MapReduce meta-blocking
  [4], edge-centric and entity-centric strategies.
"""

from repro.mapreduce.engine import (
    MapReduceEngine,
    MapReduceJob,
    JobMetrics,
    hash_partitioner,
)
from repro.mapreduce.parallel_blocking import parallel_token_blocking
from repro.mapreduce.parallel_metablocking import (
    parallel_pair_statistics,
    parallel_metablocking,
    parallel_node_pruning,
)
from repro.mapreduce.parallel_postprocessing import (
    parallel_block_purging,
    parallel_block_filtering,
)

__all__ = [
    "MapReduceEngine",
    "MapReduceJob",
    "JobMetrics",
    "hash_partitioner",
    "parallel_token_blocking",
    "parallel_pair_statistics",
    "parallel_metablocking",
    "parallel_node_pruning",
    "parallel_block_purging",
    "parallel_block_filtering",
]
