"""A MapReduce engine and the parallel ER algorithms on it.

MinoanER "exploits the parallel processing power of a computer cluster via
Hadoop MapReduce" for blocking and meta-blocking [4, 5].  This package
reproduces the MapReduce **programming model** — mappers, combiners, hash
partitioning, sorted shuffle, reducers, counters — with a pluggable
execution dimension:

* the **serial executor** (default) runs every task in-process in
  deterministic order and models the cluster through per-worker task
  metrics and the critical-path time model, so the parallel formulations
  of [4, 5] run unchanged and their scaling behaviour (E8) can be
  simulated exactly;
* the **process executor** runs map/reduce tasks in real
  ``multiprocessing`` workers, so wall-clock speedup is measured.

Two formulations of meta-blocking coexist: the seed's string-tuple jobs
(retained as the readable reference) and the int-ID rebuild whose
mappers exchange packed-``a << 32 | b`` columnar numpy batches — the
production path, bit-identical to the sequential int-ID graph.

* :mod:`repro.mapreduce.engine` — the job runner + executors;
* :mod:`repro.mapreduce.records` — columnar shuffle batches;
* :mod:`repro.mapreduce.shm` — the zero-copy shared-memory data plane;
* :mod:`repro.mapreduce.parallel_blocking` — MapReduce token blocking [5];
* :mod:`repro.mapreduce.parallel_metablocking` — string-tuple meta-blocking
  [4], edge-centric and entity-centric strategies (reference);
* :mod:`repro.mapreduce.parallel_metablocking_ids` — the int-ID rebuild;
* :mod:`repro.mapreduce.parallel_postprocessing` — purging/filtering jobs.
"""

from repro.mapreduce.engine import (
    ArrayMapReduceJob,
    MapReduceEngine,
    MapReduceJob,
    JobMetrics,
    ProcessExecutor,
    SerialExecutor,
    hash_partitioner,
    make_executor,
)
from repro.mapreduce.parallel_blocking import parallel_token_blocking
from repro.mapreduce.parallel_metablocking import (
    parallel_pair_statistics,
    parallel_metablocking,
    parallel_node_pruning,
)
from repro.mapreduce.parallel_metablocking_ids import (
    parallel_metablocking_ids,
    parallel_pair_table,
)
from repro.mapreduce.parallel_postprocessing import (
    parallel_block_purging,
    parallel_block_filtering,
)
from repro.mapreduce.shm import (
    ArrayRef,
    SharedBlockStore,
    attach_array,
    leaked_segments,
    shared_memory_available,
)

__all__ = [
    "ArrayMapReduceJob",
    "MapReduceEngine",
    "MapReduceJob",
    "JobMetrics",
    "ProcessExecutor",
    "SerialExecutor",
    "hash_partitioner",
    "make_executor",
    "parallel_token_blocking",
    "parallel_pair_statistics",
    "parallel_metablocking",
    "parallel_node_pruning",
    "parallel_metablocking_ids",
    "parallel_pair_table",
    "parallel_block_purging",
    "parallel_block_filtering",
    "ArrayRef",
    "SharedBlockStore",
    "attach_array",
    "leaked_segments",
    "shared_memory_available",
]
