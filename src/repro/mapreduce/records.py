"""Columnar record batches for the array-native MapReduce jobs.

The int-ID formulation of parallel meta-blocking never ships Python
tuples through the shuffle: mappers emit *record batches* — parallel
numpy arrays, one row per logical record — and the shuffle routes whole
batches by vectorized integer hashing.  A batch knows its row count
(``len``) and serialized size (``nbytes``), which is what the engine's
shuffle counters read.

Two batch carriers share that interface:

* :class:`RecordBatch` holds the column arrays themselves — the payload
  is pickled when it crosses a process boundary;
* :class:`DescriptorBatch` holds only
  :class:`~repro.mapreduce.shm.ArrayRef` descriptors of columns living
  in shared memory — what crosses the queue is a few hundred bytes of
  descriptor, and the receiving task re-attaches the columns zero-copy.

The partition hash is the same splitmix64 finalizer as the scalar
:func:`repro.utils.rng.stable_hash_int`, evaluated elementwise over a
uint64 array — bit-compatible by construction (asserted in tests), so a
record lands on the same reducer whether it is routed one at a time or a
million rows at once.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised wherever the int-ID jobs run
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from repro.mapreduce.shm import ArenaWriter, ArrayRef, attach_array
from repro.utils.rng import MIX_GAMMA, MIX_M1, MIX_M2, stable_hash


def stable_hash_int_array(values: np.ndarray, buckets: int) -> np.ndarray:
    """Vectorized splitmix64 bucket assignment over an int64/uint64 array.

    Elementwise identical to ``stable_hash_int(v, buckets)`` for every
    row — the bit-compatibility contract the partitioner relies on.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    z = values.astype(np.uint64, copy=True)
    z += np.uint64(MIX_GAMMA)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(MIX_M1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(MIX_M2)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(buckets)).astype(np.int64)


def stable_hash_str_array(values: np.ndarray, buckets: int) -> np.ndarray:
    """Bucket assignment for a string (``U``-dtype) column.

    Row-wise identical to the engine's
    :func:`~repro.mapreduce.engine.hash_partitioner` on string keys
    (``stable_hash(repr(key))``), evaluated once per *unique* value and
    broadcast back — token and URI columns repeat heavily, so the scalar
    hash runs orders of magnitude fewer times than the row count.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    unique, inverse = np.unique(values, return_inverse=True)
    hashes = np.fromiter(
        (stable_hash(repr(value), buckets) for value in unique.tolist()),
        dtype=np.int64,
        count=len(unique),
    )
    return hashes[inverse]


class RecordBatch:
    """A fixed set of parallel column arrays; rows are logical records."""

    __slots__ = ("columns",)

    def __init__(self, *columns: np.ndarray) -> None:
        self.columns = columns

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def nbytes(self) -> int:
        """Serialized payload size crossing the shuffle."""
        return sum(column.nbytes for column in self.columns)


class DescriptorBatch:
    """A batch whose columns live in shared memory; rows are records.

    Only the descriptors are pickled through the shuffle queue; the
    payload stays in ``/dev/shm`` and is re-attached (zero-copy) by
    whichever task consumes the batch.  ``nbytes`` reports the payload
    size the descriptors point at — the figure the engine's per-worker
    shuffle accounting wants — while the bytes physically crossing the
    queue are just the pickled descriptors.
    """

    __slots__ = ("refs", "rows")

    def __init__(self, refs: tuple[ArrayRef, ...], rows: int) -> None:
        self.refs = refs
        self.rows = rows

    def __len__(self) -> int:
        return self.rows

    @property
    def nbytes(self) -> int:
        """Referenced payload bytes (what a materialized shuffle would ship)."""
        return sum(ref.nbytes for ref in self.refs)

    @property
    def columns(self) -> tuple[np.ndarray, ...]:
        """Zero-copy views of the columns in the calling process."""
        return tuple(attach_array(ref) for ref in self.refs)


def _partition_rows(assignment: np.ndarray):
    """Yield ``(partition, row_indices)`` groups in ascending order.

    Row order within a group preserves input order (stable sort) — the
    stability downstream float folds rely on.
    """
    order = np.argsort(assignment, kind="stable")
    sorted_assignment = assignment[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_assignment[1:] != sorted_assignment[:-1]))
    )
    ends = np.append(boundaries[1:], len(order))
    for start, end in zip(boundaries.tolist(), ends.tolist()):
        yield int(sorted_assignment[start]), order[start:end]


def partition_batch(
    columns: tuple[np.ndarray, ...],
    route_keys: np.ndarray,
    partitions: int,
) -> list[tuple[int, RecordBatch]]:
    """Split columnar rows into per-partition batches by key hash.

    Args:
        columns: parallel row arrays to ship.
        route_keys: int64 routing key per row (hashed, not modulo'd).
        partitions: partition count.

    Returns:
        ``(partition, batch)`` entries for non-empty partitions, in
        ascending partition order.
    """
    if not len(route_keys):
        return []
    assignment = stable_hash_int_array(route_keys, partitions)
    return [
        (partition, RecordBatch(*(column[rows] for column in columns)))
        for partition, rows in _partition_rows(assignment)
    ]


def partition_assigned(
    columns: tuple[np.ndarray, ...],
    assignment: np.ndarray,
    partitions: int,
) -> list[tuple[int, RecordBatch]]:
    """Like :func:`partition_batch` but with precomputed partition indices.

    Used by jobs whose routing key is not an int64 column (string tokens
    hash per unique value driver-side into an explicit assignment).
    """
    if not len(assignment):
        return []
    return [
        (partition, RecordBatch(*(column[rows] for column in columns)))
        for partition, rows in _partition_rows(assignment)
    ]


def partition_batch_into(
    columns: tuple[np.ndarray, ...],
    route_keys: np.ndarray,
    partitions: int,
    writer: ArenaWriter,
) -> list[tuple[int, DescriptorBatch]]:
    """Split rows by key hash, gathering straight into a shared arena.

    The shared-memory counterpart of :func:`partition_batch`: each
    partition's columns are gathered with ``np.take(..., out=view)``
    into the task's arena and only :class:`DescriptorBatch` descriptors
    are returned — nothing materialized crosses the queue.
    """
    if not len(route_keys):
        return []
    assignment = stable_hash_int_array(route_keys, partitions)
    order = np.argsort(assignment, kind="stable")
    sorted_assignment = assignment[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_assignment[1:] != sorted_assignment[:-1]))
    )
    ends = np.append(boundaries[1:], len(order))
    # One gather per column into a single reservation; each partition's
    # rows are contiguous in sorted order, so the per-partition column
    # descriptors are carved arithmetically from the same reservation.
    gathered: list[ArrayRef] = []
    for column in columns:
        ref, dest = writer.reserve(column.dtype, len(column))
        np.take(column, order, out=dest)
        gathered.append(ref)
    out = []
    for start, end in zip(boundaries.tolist(), ends.tolist()):
        refs = tuple(
            ArrayRef(
                ref.segment,
                ref.dtype,
                (end - start,),
                ref.offset + start * np.dtype(ref.dtype).itemsize,
            )
            for ref in gathered
        )
        out.append(
            (int(sorted_assignment[start]), DescriptorBatch(refs, end - start))
        )
    return out


def concat_batches(batches: list[RecordBatch], columns: int) -> tuple[np.ndarray, ...]:
    """Concatenate same-shaped batches column-wise (task arrival order).

    Returns *columns* empty int64 arrays when no batches arrived — the
    caller decides dtypes only when rows exist.
    """
    if not batches:
        return tuple(np.empty(0, dtype=np.int64) for _ in range(columns))
    return tuple(
        np.concatenate([batch.columns[i] for batch in batches])
        for i in range(columns)
    )
