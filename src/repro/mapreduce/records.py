"""Columnar record batches for the array-native MapReduce jobs.

The int-ID formulation of parallel meta-blocking never ships Python
tuples through the shuffle: mappers emit *record batches* — parallel
numpy arrays, one row per logical record — and the shuffle routes whole
batches by vectorized integer hashing.  A batch knows its row count
(``len``) and serialized size (``nbytes``), which is what the engine's
shuffle counters read.

The partition hash is the same splitmix64 finalizer as the scalar
:func:`repro.utils.rng.stable_hash_int`, evaluated elementwise over a
uint64 array — bit-compatible by construction (asserted in tests), so a
record lands on the same reducer whether it is routed one at a time or a
million rows at once.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised wherever the int-ID jobs run
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from repro.utils.rng import MIX_GAMMA, MIX_M1, MIX_M2


def stable_hash_int_array(values: np.ndarray, buckets: int) -> np.ndarray:
    """Vectorized splitmix64 bucket assignment over an int64/uint64 array.

    Elementwise identical to ``stable_hash_int(v, buckets)`` for every
    row — the bit-compatibility contract the partitioner relies on.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    z = values.astype(np.uint64, copy=True)
    z += np.uint64(MIX_GAMMA)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(MIX_M1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(MIX_M2)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(buckets)).astype(np.int64)


class RecordBatch:
    """A fixed set of parallel column arrays; rows are logical records."""

    __slots__ = ("columns",)

    def __init__(self, *columns: np.ndarray) -> None:
        self.columns = columns

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def nbytes(self) -> int:
        """Serialized payload size crossing the shuffle."""
        return sum(column.nbytes for column in self.columns)


def partition_batch(
    columns: tuple[np.ndarray, ...],
    route_keys: np.ndarray,
    partitions: int,
) -> list[tuple[int, RecordBatch]]:
    """Split columnar rows into per-partition batches by key hash.

    Args:
        columns: parallel row arrays to ship.
        route_keys: int64 routing key per row (hashed, not modulo'd).
        partitions: partition count.

    Returns:
        ``(partition, batch)`` entries for non-empty partitions, in
        ascending partition order; row order within a partition preserves
        input order (the stability downstream float folds rely on).
    """
    if not len(route_keys):
        return []
    assignment = stable_hash_int_array(route_keys, partitions)
    order = np.argsort(assignment, kind="stable")
    sorted_assignment = assignment[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_assignment[1:] != sorted_assignment[:-1]))
    )
    out: list[tuple[int, RecordBatch]] = []
    ends = np.append(boundaries[1:], len(order))
    for start, end in zip(boundaries.tolist(), ends.tolist()):
        rows = order[start:end]
        partition = int(sorted_assignment[start])
        out.append(
            (partition, RecordBatch(*(column[rows] for column in columns)))
        )
    return out


def concat_batches(batches: list[RecordBatch], columns: int) -> tuple[np.ndarray, ...]:
    """Concatenate same-shaped batches column-wise (task arrival order).

    Returns *columns* empty int64 arrays when no batches arrived — the
    caller decides dtypes only when rows exist.
    """
    if not batches:
        return tuple(np.empty(0, dtype=np.int64) for _ in range(columns))
    return tuple(
        np.concatenate([batch.columns[i] for batch in batches])
        for i in range(columns)
    )
