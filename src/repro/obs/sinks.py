"""Span sinks and text export formats.

Three sinks (in-memory list, bounded ring buffer, JSON-lines file) plus
the two text formats the CLI writes:

* ``trace.jsonl`` — one JSON document per finished span, schema below;
* ``metrics.txt`` — Prometheus-style text exposition of the registry.

The trace JSONL schema (one object per line)::

    {"span_id": int >= 1,          # unique within the trace
     "parent_id": int | null,      # enclosing span, null for roots
     "name": str,                  # dotted operation name
     "start_s": float >= 0,        # offset from tracer creation
     "duration_s": float >= 0,
     "attrs": {str: scalar}}       # free-form attributes

Float samples are rendered with ``repr`` so a parse round-trips to the
identical float — the property the stats-agreement regression tests
lean on.
"""

from __future__ import annotations

import json
from collections import deque

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


class TraceSchemaError(ValueError):
    """A span document violates the trace JSONL schema."""


_SPAN_FIELDS = ("span_id", "parent_id", "name", "start_s", "duration_s", "attrs")


def span_to_dict(span: Span) -> dict:
    """The span's JSONL document."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "attrs": dict(span.attrs),
    }


def validate_span_dict(document: dict) -> dict:
    """Check one span document against the schema; returns it.

    Raises:
        TraceSchemaError: on any missing field, wrong type or bad value.
    """
    if not isinstance(document, dict):
        raise TraceSchemaError(f"span document is not an object: {document!r}")
    missing = [name for name in _SPAN_FIELDS if name not in document]
    if missing:
        raise TraceSchemaError(f"span document missing fields: {missing}")
    span_id = document["span_id"]
    if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 1:
        raise TraceSchemaError(f"span_id must be an int >= 1, got {span_id!r}")
    parent_id = document["parent_id"]
    if parent_id is not None and (
        not isinstance(parent_id, int) or isinstance(parent_id, bool) or parent_id < 1
    ):
        raise TraceSchemaError(
            f"parent_id must be null or an int >= 1, got {parent_id!r}"
        )
    if not isinstance(document["name"], str) or not document["name"]:
        raise TraceSchemaError(f"name must be a non-empty string: {document!r}")
    for key in ("start_s", "duration_s"):
        value = document[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TraceSchemaError(f"{key} must be a number, got {value!r}")
        if value < 0:
            raise TraceSchemaError(f"{key} must be >= 0, got {value!r}")
    if not isinstance(document["attrs"], dict):
        raise TraceSchemaError(f"attrs must be an object: {document!r}")
    return document


def span_from_dict(document: dict) -> Span:
    """Validate and rebuild a :class:`Span` from its JSONL document."""
    validate_span_dict(document)
    return Span(
        span_id=document["span_id"],
        parent_id=document["parent_id"],
        name=document["name"],
        start_s=float(document["start_s"]),
        duration_s=float(document["duration_s"]),
        attrs=dict(document["attrs"]),
    )


class InMemorySink:
    """Collects every span — the default for tests and benchmarks."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)

    def by_name(self) -> dict[str, int]:
        """Span count per name (the span-count-oracle helper)."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def clear(self) -> None:
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)


class RingBufferSink:
    """Keeps only the newest *capacity* spans; counts what it dropped."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.spans: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, span: Span) -> None:
        if len(self.spans) == self.capacity:
            self.dropped += 1
        self.spans.append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)


class JsonlSink:
    """Streams spans to a JSON-lines file as they finish."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")

    def emit(self, span: Span) -> None:
        if self._handle is None:  # pragma: no cover - emit after close
            return
        self._handle.write(
            json.dumps(span_to_dict(span), separators=(",", ":")) + "\n"
        )

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_trace(path: str) -> list[Span]:
    """Read and schema-validate a ``trace.jsonl`` file.

    Raises:
        TraceSchemaError: on any malformed line or schema violation.
        FileNotFoundError: when the file does not exist.
    """
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except ValueError as error:
                raise TraceSchemaError(
                    f"{path}:{number}: not valid JSON: {error}"
                ) from None
            try:
                spans.append(span_from_dict(document))
            except TraceSchemaError as error:
                raise TraceSchemaError(f"{path}:{number}: {error}") from None
    return spans


# -- Prometheus-style text exposition ----------------------------------------


def _sample_name(name: str) -> str:
    """Dotted metric name → Prometheus sample name."""
    return name.replace(".", "_").replace("-", "_")


def _fmt(value) -> str:
    """Exact text form: repr floats round-trip bit-identically."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


#: quantiles rendered per histogram
EXPOSITION_QUANTILES = (0.5, 0.9, 0.99)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every registered metric in Prometheus text format.

    The ``# HELP`` line carries the original dotted name, so
    :func:`parse_metrics_text` can key its result by it.
    """
    lines: list[str] = []
    for name, metric in registry.items():
        sample = _sample_name(name)
        lines.append(f"# HELP {sample} {name}")
        lines.append(f"# TYPE {sample} {metric.kind}")
        if metric.kind in ("counter", "gauge"):
            lines.append(f"{sample} {_fmt(metric.value)}")
        else:
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                lines.append(f'{sample}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            cumulative += metric.bucket_counts[-1]
            lines.append(f'{sample}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{sample}_sum {_fmt(metric.sum)}")
            lines.append(f"{sample}_count {metric.count}")
            for fraction in EXPOSITION_QUANTILES:
                lines.append(
                    f'{sample}{{quantile="{_fmt(fraction)}"}} '
                    f"{_fmt(metric.percentile(fraction))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_number(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)


def parse_metrics_text(text: str) -> dict[str, dict]:
    """Parse :func:`prometheus_text` output back into plain dicts.

    Returns a mapping keyed by the **dotted** metric name:
    counters/gauges get ``{"type", "value"}``; histograms get
    ``{"type", "sum", "count", "buckets", "quantiles"}`` with buckets
    keyed by their ``le`` string and quantiles by fraction.
    """
    dotted: dict[str, str] = {}
    kinds: dict[str, str] = {}
    out: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            sample, _, name = rest.partition(" ")
            dotted[sample] = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            sample, _, kind = rest.partition(" ")
            kinds[sample] = kind
            name = dotted.get(sample, sample)
            if kind == "histogram":
                out[name] = {
                    "type": kind, "sum": 0.0, "count": 0,
                    "buckets": {}, "quantiles": {},
                }
            else:
                out[name] = {"type": kind, "value": 0}
            continue
        sample_part, _, value_text = line.rpartition(" ")
        value = _parse_number(value_text)
        label = None
        if "{" in sample_part:
            sample, _, label_part = sample_part.partition("{")
            label = label_part.rstrip("}")
        else:
            sample = sample_part
        base = sample
        for suffix in ("_bucket", "_sum", "_count"):
            if sample.endswith(suffix) and sample[: -len(suffix)] in kinds:
                base = sample[: -len(suffix)]
                break
        name = dotted.get(base, base)
        entry = out.get(name)
        if entry is None:
            continue
        if entry["type"] in ("counter", "gauge"):
            entry["value"] = value
        elif sample.endswith("_bucket"):
            le = label.partition("=")[2].strip('"') if label else ""
            entry["buckets"][le] = value
        elif sample.endswith("_sum"):
            entry["sum"] = value
        elif sample.endswith("_count"):
            entry["count"] = value
        elif label and label.startswith("quantile="):
            fraction = float(label.partition("=")[2].strip('"'))
            entry["quantiles"][fraction] = value
    return out
