"""Unified observability: span tracing + metrics across every backend.

:class:`Observability` is the one handle instrumented code holds — it
bundles a :class:`~repro.obs.trace.Tracer` (nested spans), a
:class:`~repro.obs.metrics.MetricsRegistry` (counters/gauges/latency
histograms) and the export sinks (``trace.jsonl`` + ``metrics.txt``
under a directory).  Components accept ``obs=None`` and fall back to
the shared :data:`DISABLED` singleton, whose operations are no-ops
except for wall-clock measurement: ``obs.timed(...)`` **always**
yields a real ``duration_s``, so latency accounting that predates the
observability layer (resolver phase splits, workload stats) keeps
working bit-identically with observability off.

Metric naming convention: ``repro.<layer>.<op>.<unit>`` — e.g.
``repro.stream.insert.seconds``, ``repro.durability.wal.append.bytes``,
``repro.mapreduce.shuffle.records.count``.
"""

from __future__ import annotations

import os
import time

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    set_global_registry,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    RingBufferSink,
    TraceSchemaError,
    load_trace,
    parse_metrics_text,
    prometheus_text,
    span_from_dict,
    span_to_dict,
    validate_span_dict,
)
from repro.obs.trace import ManualClock, Span, Tracer

__all__ = [
    "Observability",
    "DISABLED",
    "Tracer",
    "Span",
    "ManualClock",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "set_global_registry",
    "InMemorySink",
    "RingBufferSink",
    "JsonlSink",
    "TraceSchemaError",
    "load_trace",
    "span_to_dict",
    "span_from_dict",
    "validate_span_dict",
    "prometheus_text",
    "parse_metrics_text",
    "DEFAULT_LATENCY_BUCKETS",
]

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.txt"


class _Timed:
    """Enabled-mode timer: span (optional) + histogram (optional) + dt.

    One clock reading pair produces the span duration, the histogram
    observation and :attr:`duration_s` — by construction the same
    float lands in the trace, in ``metrics.txt`` and in any legacy
    latency field fed from it.
    """

    __slots__ = ("_obs", "_name", "_metric", "attrs", "_frame", "_start",
                 "duration_s", "span")

    def __init__(self, obs: "Observability", name, metric, attrs) -> None:
        self._obs = obs
        self._name = name
        self._metric = metric
        self.attrs = attrs
        self.span = None
        self.duration_s = 0.0

    def __enter__(self) -> "_Timed":
        tracer = self._obs.tracer
        if self._name is not None:
            self._frame = tracer.begin(self._name)
            self._start = self._frame[3]
        else:
            self._frame = None
            self._start = tracer.clock()
        return self

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._frame is not None:
            self.span = self._obs.tracer.finish(self._frame, self.attrs)
            self.duration_s = self.span.duration_s
        else:
            self.duration_s = self._obs.tracer.clock() - self._start
        metric = self._metric
        if metric is not None:
            if isinstance(metric, str):
                metric = self._obs.registry.histogram(metric)
            metric.observe(self.duration_s)
        return False


class _NullTimed:
    """Disabled-mode timer: measures wall time, records nothing.

    This is exactly the cost the pre-observability code paid (two
    ``perf_counter`` readings), so instrumentation adds nothing when
    observability is off.
    """

    __slots__ = ("_start", "duration_s")

    def __enter__(self) -> "_NullTimed":
        self._start = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._start
        return False


class Observability:
    """The per-run observability handle: tracer + registry + exporters.

    Args:
        enabled: ``False`` builds the shared-style no-op handle (use
            :data:`DISABLED` instead of constructing one).
        directory: when set, spans stream into
            ``<directory>/trace.jsonl`` as they finish and
            :meth:`flush`/:meth:`close` write
            ``<directory>/metrics.txt``.
        clock: injectable monotonic clock for the tracer
            (:class:`ManualClock` in tests).
        registry: share an existing registry (default: a fresh one).
        sink: an extra span sink (e.g. :class:`InMemorySink`) attached
            alongside the JSONL exporter.
    """

    def __init__(
        self,
        enabled: bool = True,
        directory: str | None = None,
        clock=None,
        registry: MetricsRegistry | None = None,
        sink=None,
    ) -> None:
        self.enabled = enabled
        self.directory = directory
        self._jsonl: JsonlSink | None = None
        if enabled:
            self.registry = registry if registry is not None else MetricsRegistry()
            self.tracer = Tracer(clock=clock)
            if sink is not None:
                self.tracer.add_sink(sink)
            if directory is not None:
                os.makedirs(directory, exist_ok=True)
                self._jsonl = JsonlSink(os.path.join(directory, TRACE_FILENAME))
                self.tracer.add_sink(self._jsonl)
        else:
            self.registry = MetricsRegistry(enabled=False)
            self.tracer = None

    # -- timing ---------------------------------------------------------------

    def timed(self, name: str | None = None, metric=None, **attrs):
        """Context manager measuring one operation.

        Args:
            name: span name (None: metric/measurement only, no span).
            metric: histogram fed the measured duration — a dotted
                registry name or a live :class:`Histogram`.
            attrs: initial span attributes (extend via ``.set()``).

        The yielded object always exposes ``duration_s`` after exit,
        observability on or off.
        """
        if not self.enabled:
            return _NullTimed()
        return _Timed(self, name, metric, attrs)

    def span(self, name: str, **attrs):
        """Span-only :meth:`timed` (trace, no histogram)."""
        if not self.enabled:
            return _NullTimed()
        return _Timed(self, name, None, attrs)

    def event(self, name: str, duration_s: float = 0.0, metric=None, **attrs) -> None:
        """Record a completed span measured elsewhere (worker tasks)."""
        if not self.enabled:
            return
        self.tracer.event(name, duration_s, **attrs)
        if metric is not None:
            if isinstance(metric, str):
                metric = self.registry.histogram(metric)
            metric.observe(duration_s)

    # -- metrics --------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self.registry.histogram(name, buckets)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the counter *name* (no-op when disabled)."""
        if self.enabled:
            self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Observe *value* into the histogram *name* (no-op disabled)."""
        if self.enabled:
            self.registry.histogram(name).observe(value)

    @property
    def span_count(self) -> int:
        """Spans finished so far (0 when disabled)."""
        return self.tracer.span_count if self.tracer is not None else 0

    def metrics_text(self) -> str:
        """The registry's Prometheus-style text exposition."""
        return prometheus_text(self.registry)

    # -- export lifecycle -----------------------------------------------------

    def write_metrics(self) -> str | None:
        """(Re)write ``metrics.txt`` under the directory; returns its path."""
        if not self.enabled or self.directory is None:
            return None
        path = os.path.join(self.directory, METRICS_FILENAME)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.metrics_text())
        return path

    def flush(self) -> None:
        """Persist everything so far: trace to disk, metrics.txt rewritten.

        Safe to call repeatedly; the end-of-run close re-exports on top.
        The streaming runner calls this **before** the WAL closes so an
        interrupted replay still leaves a complete telemetry snapshot.
        """
        if not self.enabled:
            return
        if self._jsonl is not None:
            self._jsonl.flush()
        self.write_metrics()

    def close(self) -> None:
        """Final export: flush, then close the trace file."""
        if not self.enabled:
            return
        self.flush()
        if self._jsonl is not None:
            self._jsonl.close()


#: the shared disabled handle components default to (``obs or DISABLED``)
DISABLED = Observability(enabled=False)
