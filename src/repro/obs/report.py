"""Render observability artifacts: time-attribution tree + metric tables.

``repro obs report D`` reads the ``trace.jsonl`` (and, when present,
``metrics.txt``) a traced run wrote into *D* and renders:

* the **span tree** — spans aggregated by their name-path from the
  root, with call counts, total wall time and the share of the parent's
  time (where did this run spend its time, per stage, across layers);
* the **histogram table** — count/mean/p50/p90/p99 per latency
  histogram, in milliseconds for ``.seconds`` metrics;
* the **counter table** — every counter/gauge total.
"""

from __future__ import annotations

import os

from repro.obs.sinks import load_trace, parse_metrics_text
from repro.obs.trace import Span

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.txt"


class _Node:
    """One aggregation node: all spans sharing a name-path."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: dict[str, "_Node"] = {}


def build_tree(spans: list[Span]) -> _Node:
    """Aggregate spans into a name-path tree (root is synthetic)."""
    by_id = {span.span_id: span for span in spans}
    root = _Node("")
    path_cache: dict[int, tuple[str, ...]] = {}

    def path_of(span: Span) -> tuple[str, ...]:
        cached = path_cache.get(span.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        path = (path_of(parent) if parent is not None else ()) + (span.name,)
        path_cache[span.span_id] = path
        return path

    for span in spans:
        node = root
        for name in path_of(span):
            child = node.children.get(name)
            if child is None:
                child = _Node(name)
                node.children[name] = child
            node = child
        node.count += 1
        node.total_s += span.duration_s
    return root


def _render_node(node: _Node, parent_total: float, depth: int, lines: list[str]) -> None:
    share = (
        f"{100.0 * node.total_s / parent_total:5.1f}%"
        if parent_total > 0
        else "    -%"
    )
    lines.append(
        f"  {'  ' * depth}{node.name} ×{node.count}".ljust(46)
        + f"{node.total_s * 1e3:10.2f} ms  {share}"
    )
    for child in sorted(node.children.values(), key=lambda n: -n.total_s):
        _render_node(child, node.total_s, depth + 1, lines)


def render_tree(spans: list[Span]) -> str:
    """The per-stage time-attribution tree as text."""
    root = build_tree(spans)
    lines = [f"span tree ({len(spans)} spans, aggregated by name path)"]
    total = sum(child.total_s for child in root.children.values())
    for child in sorted(root.children.values(), key=lambda n: -n.total_s):
        _render_node(child, total, 0, lines)
    return "\n".join(lines)


def render_metric_tables(metrics: dict[str, dict]) -> str:
    """Histogram + counter tables from parsed ``metrics.txt`` content."""
    histograms = {k: v for k, v in metrics.items() if v["type"] == "histogram"}
    scalars = {k: v for k, v in metrics.items() if v["type"] != "histogram"}
    lines: list[str] = []
    if histograms:
        lines.append("histograms (ms)")
        header = (
            f"  {'metric'.ljust(44)}{'count':>8}{'mean':>10}"
            f"{'p50':>10}{'p90':>10}{'p99':>10}"
        )
        lines.append(header)
        for name, entry in sorted(histograms.items()):
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            quantiles = entry["quantiles"]
            lines.append(
                f"  {name.ljust(44)}{count:>8}"
                + f"{mean * 1e3:>10.3f}"
                + "".join(
                    f"{quantiles.get(q, 0.0) * 1e3:>10.3f}"
                    for q in (0.5, 0.9, 0.99)
                )
            )
    if scalars:
        if lines:
            lines.append("")
        lines.append("counters")
        for name, entry in sorted(scalars.items()):
            lines.append(f"  {name.ljust(44)}{entry['value']:>14}")
    return "\n".join(lines)


#: serving-tier robustness counters surfaced as a dedicated section
#: (registered by ServingStats.bind; absent in non-serving runs)
_SERVING_ROWS: tuple[tuple[str, str], ...] = (
    ("repro.serving.query.count", "queries served"),
    ("repro.serving.degraded.count", "degraded responses"),
    ("repro.serving.retry.count", "retries"),
    ("repro.serving.hedge.count", "hedged requests"),
    ("repro.serving.hedge.win.count", "hedge wins"),
    ("repro.serving.failover.count", "failovers"),
    ("repro.serving.shard.dead.count", "shard deaths"),
    ("repro.serving.respawn.count", "respawns"),
)


def render_serving_section(metrics: dict[str, dict]) -> str:
    """The serving-tier robustness summary, or "" for non-serving runs.

    Pulls the tier's counters plus the time-to-healthy histogram out of
    the generic tables into one glanceable fault-tolerance section —
    how often the tier retried, hedged, failed over, degraded, and how
    long outages lasted.
    """
    if "repro.serving.query.count" not in metrics:
        return ""
    lines = ["serving tier (fault tolerance)"]
    for name, label in _SERVING_ROWS:
        entry = metrics.get(name)
        if entry is not None and entry["type"] != "histogram":
            lines.append(f"  {label.ljust(44)}{entry['value']:>14}")
    healthy = metrics.get("repro.serving.time.to.healthy.seconds")
    if healthy is not None and healthy["type"] == "histogram":
        count = healthy["count"]
        if count:
            mean_ms = healthy["sum"] / count * 1e3
            p99_ms = healthy["quantiles"].get(0.99, 0.0) * 1e3
            lines.append(
                f"  {'time-to-healthy mean / p99 (ms)'.ljust(44)}"
                f"{f'{mean_ms:.1f} / {p99_ms:.1f}':>14}"
            )
    return "\n".join(lines)


def render_report(directory: str) -> str:
    """The full ``repro obs report`` text for one artifact directory.

    Raises:
        FileNotFoundError: when the directory has no ``trace.jsonl``.
        TraceSchemaError: when the trace violates the JSONL schema.
    """
    trace_path = os.path.join(directory, TRACE_FILENAME)
    if not os.path.exists(trace_path):
        raise FileNotFoundError(
            f"no {TRACE_FILENAME} in {directory!r} — run with --trace-dir first"
        )
    spans = load_trace(trace_path)
    sections = [f"observability report: {directory}", "", render_tree(spans)]
    metrics_path = os.path.join(directory, METRICS_FILENAME)
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            metrics = parse_metrics_text(handle.read())
        if metrics:
            serving = render_serving_section(metrics)
            if serving:
                sections.append("")
                sections.append(serving)
            sections.append("")
            sections.append(render_metric_tables(metrics))
    return "\n".join(sections)
