"""Nested span tracing with an injectable monotonic clock.

A span is one timed operation: name, start offset, duration, free-form
attributes, and the id of the span that was open when it began.  The
tracer keeps the open-span stack, so nesting mirrors the call structure
without any explicit parent plumbing; spans are emitted to the attached
sinks **when they finish**, which puts children before their parents in
the sink stream (the order a streaming consumer can always rely on).

The clock is injectable (:class:`ManualClock`) so tests get bit-stable
start offsets and durations; the default is ``time.perf_counter``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One finished timed operation."""

    span_id: int
    parent_id: int | None
    name: str
    #: start offset in seconds since the tracer was created
    start_s: float
    duration_s: float
    attrs: dict = field(default_factory=dict)


class ManualClock:
    """Deterministic clock for tests: advances only when told to.

    Args:
        start: initial reading.
        step: seconds auto-advanced *after* every reading (0 = frozen);
            a fixed step makes every span duration deterministic.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step
        return reading

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _SpanHandle:
    """Context manager over one tracer span; ``set()`` adds attributes."""

    __slots__ = ("_tracer", "_name", "attrs", "_frame", "span", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self.attrs = attrs
        self.span: Span | None = None
        self.duration_s = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._frame = self._tracer.begin(self._name)
        return self

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span = self._tracer.finish(self._frame, self.attrs)
        self.duration_s = self.span.duration_s
        return False


class Tracer:
    """Produces nested spans; emission is push-based via sinks.

    Args:
        clock: monotonic zero-argument callable (default
            ``time.perf_counter``); inject a :class:`ManualClock` for
            deterministic traces.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self._origin = self.clock()
        self._sinks: list = []
        self._stack: list[int] = []
        self._next_id = 1
        #: spans finished (== emitted) so far
        self.span_count = 0

    def add_sink(self, sink) -> None:
        """Attach a sink; its ``emit(span)`` is called per finished span."""
        self._sinks.append(sink)

    # -- low-level span lifecycle (the facade's timed() drives these) --------

    def begin(self, name: str) -> tuple[int, int | None, str, float]:
        """Open a span; returns the frame ``finish()`` consumes."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        return (span_id, parent_id, name, self.clock())

    def finish(self, frame, attrs: dict | None = None) -> Span:
        """Close the span opened by *frame*; emits and returns it."""
        end = self.clock()
        span_id, parent_id, name, start = frame
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        else:  # pragma: no cover - misnested finish; recover best-effort
            if span_id in self._stack:
                while self._stack and self._stack.pop() != span_id:
                    pass
        span = Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_s=start - self._origin,
            duration_s=end - start,
            attrs=dict(attrs or {}),
        )
        self._emit(span)
        return span

    def span(self, name: str, **attrs) -> _SpanHandle:
        """``with tracer.span("stage") as s: ... s.set(k=v)``"""
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, duration_s: float = 0.0, **attrs) -> Span:
        """Record a completed span whose duration was measured elsewhere.

        Used for work timed inside worker processes: the duration
        travelled back with the result, the span slots under whatever
        is currently open (the phase span).
        """
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        now = self.clock() - self._origin
        span = Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_s=max(0.0, now - duration_s),
            duration_s=duration_s,
            attrs=dict(attrs),
        )
        self._emit(span)
        return span

    def _emit(self, span: Span) -> None:
        self.span_count += 1
        for sink in self._sinks:
            sink.emit(span)
