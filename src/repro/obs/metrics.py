"""Named metric primitives: counters, gauges and latency histograms.

The registry is the process's shared vocabulary of measurements.  Every
metric has a dotted name following the ``repro.<layer>.<op>.<unit>``
convention (``repro.stream.insert.seconds``,
``repro.durability.wal.append.bytes``); the Prometheus-style exposition
in :mod:`repro.obs.sinks` derives its sanitized sample names from it.

Two properties matter for the rest of the system:

* **exact percentiles** — histograms keep the raw observation list in
  addition to the fixed cumulative buckets, and extract percentiles
  with the same nearest-rank rule the streaming workload stats always
  used, so the numbers in ``metrics.txt`` equal the legacy stats rows
  bit for bit (regression-tested);
* **cheap when disabled** — a disabled registry hands out shared no-op
  singletons, so instrumented code paths cost one dict-free method
  call, never allocation or bookkeeping.
"""

from __future__ import annotations

from bisect import bisect_left

#: default latency bucket upper bounds in seconds (Prometheus-ish
#: decade ladder from 100µs to 10s; +Inf is implicit)
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile — identical to the workload stats rule."""
    if not sorted_values:
        return 0.0
    index = min(int(fraction * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


class Counter:
    """A monotonically-increasing (by convention) integer-ish total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket latency histogram that also keeps raw observations.

    The buckets drive the Prometheus-style exposition (cumulative
    ``le`` counts); the raw value list makes percentiles **exact** —
    same nearest-rank rule, and therefore the same floats, as the
    legacy ``WorkloadStats.latency_summary`` rows the streaming layer
    migrated from.
    """

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "values", "sum")

    def __init__(self, buckets: tuple[float, ...] | None = None) -> None:
        self.bounds = tuple(sorted(buckets or DEFAULT_LATENCY_BUCKETS))
        #: per-bucket (non-cumulative) counts; last slot is the +Inf bucket
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.values: list[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.values.append(value)
        self.sum += value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return self.sum / len(self.values) if self.values else 0.0

    def percentile(self, fraction: float) -> float:
        """Exact nearest-rank percentile over the raw observations."""
        return _percentile(sorted(self.values), fraction)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def summary(self) -> dict[str, float]:
        """mean/p50/p95/p99/max — the legacy workload-stats row shape."""
        if not self.values:
            return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        ordered = sorted(self.values)
        return {
            "mean": self.sum / len(ordered),
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
            "max": ordered[-1],
        }


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create metric store keyed by dotted name.

    A disabled registry returns the shared null singletons from every
    accessor and records nothing — instrumented code needs no
    ``if enabled`` guards around metric updates.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get(name, Gauge, "gauge")

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(name, lambda: Histogram(buckets), "histogram")

    def register(self, name: str, metric) -> None:
        """Expose an externally-owned metric object under *name*.

        The same live object is shared — the owner keeps updating it,
        the exposition reads it — which is how legacy stats fields and
        ``metrics.txt`` are guaranteed to agree.  Re-registering a name
        replaces the previous object (a fresh replay owns its metrics).
        """
        if not self.enabled:
            return
        self._metrics[name] = metric

    def get(self, name: str):
        """The metric registered under *name*, or None."""
        return self._metrics.get(name)

    def items(self) -> list[tuple[str, Counter | Gauge | Histogram]]:
        """(name, metric) pairs in sorted name order."""
        return sorted(self._metrics.items())

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


#: the process-global default registry (enabled)
_global_registry = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global default :class:`MetricsRegistry`."""
    return _global_registry


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous
