"""Datasets: synthetic LOD workloads and embedded real-shaped samples.

The paper evaluates on Web-of-data corpora (DBpedia-centred "center of the
LOD cloud" KBs and sparsely interlinked "periphery" KBs).  Without network
access those corpora are substituted by:

* :mod:`repro.datasets.synthetic` — a generator producing pairs of KBs
  with controllable similarity profile (*center* = highly similar
  descriptions sharing many tokens; *periphery* = somehow similar
  descriptions sharing few), proprietary per-KB vocabularies, skewed token
  frequencies, relationship structure (entity graphs) and exact ground
  truth — the statistical regimes the paper's motivation quotes;
* :mod:`repro.datasets.samples` — small hand-curated restaurant and movie
  corpora shipped as N-Triples with gold standards, used by examples and
  integration tests;
* :mod:`repro.datasets.gold` — ground-truth containers and CSV I/O.
"""

from repro.datasets.gold import GoldStandard, load_gold_csv, save_gold_csv
from repro.datasets.synthetic import (
    SyntheticConfig,
    SyntheticDataset,
    synthesize_pair,
    synthesize_dirty,
    CENTER_PROFILE,
    PERIPHERY_PROFILE,
    PerturbationProfile,
)
from repro.datasets.samples import (
    load_restaurants,
    load_movies,
    load_people,
    sample_path,
)

__all__ = [
    "GoldStandard",
    "load_gold_csv",
    "save_gold_csv",
    "SyntheticConfig",
    "SyntheticDataset",
    "synthesize_pair",
    "synthesize_dirty",
    "CENTER_PROFILE",
    "PERIPHERY_PROFILE",
    "PerturbationProfile",
    "load_restaurants",
    "load_movies",
    "load_people",
    "sample_path",
]
