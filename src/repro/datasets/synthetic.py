"""The LOD-cloud workload synthesizer.

Generates pairs of knowledge bases describing an overlapping universe of
real-world entities, with the statistical properties the paper's
motivation section measures on the actual LOD cloud:

* **proprietary vocabularies** — each KB names its properties in its own
  namespace (58.24% of LOD vocabularies are used by exactly one KB), so
  schema-based methods have nothing to align on;
* **semantic/structural diversity** — per-type attribute schemas, partial
  attribute coverage, multi-valued properties;
* **skewed token frequencies** — attribute values mix entity-specific
  words with Zipf-distributed common words, producing the heavy-tailed
  block-size distribution block purging exists for;
* **similarity regimes** — a *center* profile emits highly similar
  description pairs (many common tokens), a *periphery* profile emits
  somehow similar pairs (few common tokens: aggressive attribute dropping
  and per-KB synonym substitution), reproducing the "highly vs somehow
  similar" dichotomy of the companion Big Data 2015 study;
* **relationship structure** — entities form small related groups
  ("entity graphs": e.g. a film, its director, its location) and each KB
  materializes intra-KB references among the descriptions of a group,
  giving the progressive update phase real neighbourhoods to propagate
  evidence along.

Everything is driven by a single integer seed: the same
:class:`SyntheticConfig` always produces byte-identical output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.datasets.gold import GoldStandard
from repro.model.collection import EntityCollection
from repro.model.description import EntityDescription
from repro.utils.rng import deterministic_rng

# ---------------------------------------------------------------------------
# Vocabulary generation
# ---------------------------------------------------------------------------

_CONSONANTS = "bcdfghklmnprstvz"
_VOWELS = "aeiou"


def _make_word(rng: random.Random, syllables: int) -> str:
    return "".join(
        rng.choice(_CONSONANTS) + rng.choice(_VOWELS) for _ in range(syllables)
    )


def _make_vocabulary(rng: random.Random, size: int, syllables: tuple[int, int]) -> list[str]:
    """Generate *size* distinct pseudo-words."""
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < size:
        word = _make_word(rng, rng.randint(*syllables))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def _zipf_choice(rng: random.Random, items: list[str], exponent: float = 1.0) -> str:
    """Draw from *items* with a Zipf-like rank distribution."""
    # Inverse-CDF sampling over ranks: P(rank r) ∝ 1/r^exponent.
    u = rng.random()
    n = len(items)
    # Approximate via the continuous Pareto quantile, clamped to range.
    rank = int(n ** (u ** (1.0 / max(exponent, 1e-9)))) - 1
    return items[min(max(rank, 0), n - 1)]


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PerturbationProfile:
    """How a KB's description of an entity distorts the canonical entity.

    The *center* profile keeps most evidence; the *periphery* profile
    destroys most of it, leaving "somehow similar" pairs that share only a
    couple of tokens.
    """

    #: probability an attribute of the canonical entity is described at all
    attribute_keep: float = 0.9
    #: probability each value token survives (vs being dropped)
    token_keep: float = 0.85
    #: probability a surviving token is replaced by a KB-local synonym
    synonym_rate: float = 0.05
    #: probability of appending a random noise token to a value
    noise_rate: float = 0.05
    #: probability the description URI carries the entity name tokens
    name_bearing_uri: float = 1.0
    #: probability each relationship of the entity is materialized in the KB
    relation_keep: float = 0.9

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range probabilities."""
        for name in (
            "attribute_keep",
            "token_keep",
            "synonym_rate",
            "noise_rate",
            "name_bearing_uri",
            "relation_keep",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


#: highly similar descriptions — the center of the LOD cloud
CENTER_PROFILE = PerturbationProfile(
    attribute_keep=0.92,
    token_keep=0.88,
    synonym_rate=0.04,
    noise_rate=0.05,
    name_bearing_uri=1.0,
    relation_keep=0.9,
)

#: somehow similar descriptions — the sparsely linked periphery
PERIPHERY_PROFILE = PerturbationProfile(
    attribute_keep=0.45,
    token_keep=0.55,
    synonym_rate=0.35,
    noise_rate=0.12,
    name_bearing_uri=0.7,
    relation_keep=0.75,
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of one synthetic clean-clean workload.

    Args:
        entities: size of the real-world entity universe.
        overlap: fraction of the universe described by **both** KBs; the
            rest is split between KB-exclusive entities (noise for ER).
        profile: perturbation profile applied to both KBs (the second KB
            can override it with *profile2*).
        profile2: optional distinct profile for KB2.
        seed: master seed; every draw derives from it.
        entity_types: number of entity types (each with its own schema).
        properties_per_type: attributes in each type's schema.
        name_words: range of words in an entity's name.
        value_words: range of common-vocabulary words per attribute value.
        group_size: range of entity-graph sizes (1 = no relationships).
        common_vocabulary: size of the shared Zipf-distributed vocabulary.
        name_vocabulary: size of the name-word vocabulary.
    """

    entities: int = 300
    overlap: float = 0.7
    profile: PerturbationProfile = CENTER_PROFILE
    profile2: PerturbationProfile | None = None
    seed: int = 42
    entity_types: int = 4
    properties_per_type: int = 6
    name_words: tuple[int, int] = (2, 3)
    value_words: tuple[int, int] = (1, 3)
    group_size: tuple[int, int] = (1, 4)
    common_vocabulary: int = 400
    name_vocabulary: int = 1500

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.entities < 1:
            raise ValueError("entities must be >= 1")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError("overlap must be in [0, 1]")
        if self.group_size[0] < 1 or self.group_size[1] < self.group_size[0]:
            raise ValueError("group_size must be a valid (lo, hi) range with lo >= 1")
        self.profile.validate()
        if self.profile2 is not None:
            self.profile2.validate()


# ---------------------------------------------------------------------------
# The canonical universe
# ---------------------------------------------------------------------------


@dataclass
class _RealEntity:
    """One real-world entity of the canonical universe."""

    entity_id: int
    entity_type: int
    name_tokens: list[str]
    #: property index → list of value tokens
    attributes: dict[int, list[str]]
    #: entity ids this entity is related to (directed, intra-group)
    relations: list[int] = field(default_factory=list)
    group_id: int = 0


def _build_universe(config: SyntheticConfig) -> tuple[list[_RealEntity], list[list[int]]]:
    """Generate the canonical entities and their grouping into entity graphs."""
    vocab_rng = deterministic_rng(config.seed, "vocabulary")
    common_vocab = _make_vocabulary(vocab_rng, config.common_vocabulary, (2, 3))
    name_vocab = _make_vocabulary(vocab_rng, config.name_vocabulary, (2, 4))

    entity_rng = deterministic_rng(config.seed, "entities")
    entities: list[_RealEntity] = []
    for entity_id in range(config.entities):
        entity_type = entity_rng.randrange(config.entity_types)
        name_len = entity_rng.randint(*config.name_words)
        name_tokens = [entity_rng.choice(name_vocab) for _ in range(name_len)]
        attributes: dict[int, list[str]] = {}
        for prop in range(config.properties_per_type):
            value_len = entity_rng.randint(*config.value_words)
            tokens = [
                _zipf_choice(entity_rng, common_vocab) for _ in range(value_len)
            ]
            # One attribute value embeds a name token, making values
            # entity-discriminative the way real labels/titles are.
            if prop == 0:
                tokens = list(name_tokens) + tokens
            attributes[prop] = tokens
        entities.append(
            _RealEntity(entity_id, entity_type, name_tokens, attributes)
        )

    # Partition the universe into entity graphs and wire star relations.
    group_rng = deterministic_rng(config.seed, "groups")
    groups: list[list[int]] = []
    cursor = 0
    while cursor < len(entities):
        size = group_rng.randint(*config.group_size)
        members = list(range(cursor, min(cursor + size, len(entities))))
        group_id = len(groups)
        hub = members[0]
        for member in members:
            entities[member].group_id = group_id
            if member != hub:
                entities[hub].relations.append(member)
                # Half the spokes point back, making some relations mutual.
                if group_rng.random() < 0.5:
                    entities[member].relations.append(hub)
        groups.append(members)
        cursor += size
    return entities, groups


# ---------------------------------------------------------------------------
# KB materialization
# ---------------------------------------------------------------------------


def _kb_property_names(
    config: SyntheticConfig, kb: str
) -> dict[tuple[int, int], str]:
    """Proprietary property URIs: (type, property index) → URI."""
    rng = deterministic_rng(config.seed, "properties", kb)
    names: dict[tuple[int, int], str] = {}
    for entity_type in range(config.entity_types):
        for prop in range(config.properties_per_type):
            local = _make_word(rng, 3)
            names[(entity_type, prop)] = (
                f"http://{kb}.example.org/ontology/{local}"
            )
    return names


def _kb_synonyms(config: SyntheticConfig, kb: str) -> dict[str, str]:
    """KB-local token rewrites (the 'different curation policy' effect)."""
    vocab_rng = deterministic_rng(config.seed, "vocabulary")
    common_vocab = _make_vocabulary(vocab_rng, config.common_vocabulary, (2, 3))
    rng = deterministic_rng(config.seed, "synonyms", kb)
    return {word: _make_word(rng, 3) for word in common_vocab}


def _materialize(
    entity: _RealEntity,
    kb: str,
    uri_by_entity: dict[int, str],
    property_names: dict[tuple[int, int], str],
    synonyms: dict[str, str],
    profile: PerturbationProfile,
    rng: random.Random,
    relation_property: str,
) -> EntityDescription:
    """One KB's description of *entity* (URI pre-assigned in uri_by_entity)."""
    description = EntityDescription(uri_by_entity[entity.entity_id], source=kb)
    for prop, tokens in sorted(entity.attributes.items()):
        if rng.random() > profile.attribute_keep and prop != 0:
            continue  # property 0 (the label) is always described
        surviving: list[str] = []
        for token in tokens:
            if rng.random() > profile.token_keep:
                continue
            if rng.random() < profile.synonym_rate:
                token = synonyms.get(token, token)
            surviving.append(token)
        if not surviving:
            surviving = [tokens[0]]  # a value never vanishes entirely
        if rng.random() < profile.noise_rate:
            surviving.append(_make_word(rng, 2))
        description.add(
            property_names[(entity.entity_type, prop)], " ".join(surviving)
        )
    for target in entity.relations:
        if target in uri_by_entity and rng.random() <= profile.relation_keep:
            description.add(relation_property, uri_by_entity[target])
    return description


def _assign_uris(
    entities: list[_RealEntity],
    members: list[int],
    kb: str,
    profile: PerturbationProfile,
    rng: random.Random,
) -> dict[int, str]:
    uris: dict[int, str] = {}
    for entity_id in members:
        entity = entities[entity_id]
        if rng.random() <= profile.name_bearing_uri:
            infix = "_".join(entity.name_tokens) + f"_{entity_id}"
        else:
            infix = f"node{entity_id}x{rng.randrange(10_000)}"
        uris[entity_id] = f"http://{kb}.example.org/resource/{infix}"
    return uris


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


@dataclass
class SyntheticDataset:
    """A generated clean-clean workload.

    Attributes:
        kb1, kb2: the two entity collections.
        gold: ground truth (matches + clusters + entity graphs).
        config: the generating configuration.
        entity_of: URI → canonical entity id (for analysis).
        shared_entities: ids described by both KBs.
    """

    kb1: EntityCollection
    kb2: EntityCollection
    gold: GoldStandard
    config: SyntheticConfig
    entity_of: dict[str, int]
    shared_entities: list[int]


def synthesize_pair(config: SyntheticConfig) -> SyntheticDataset:
    """Generate a clean-clean ER workload from *config*.

    Raises:
        ValueError: on invalid configuration.
    """
    config.validate()
    entities, groups = _build_universe(config)

    split_rng = deterministic_rng(config.seed, "split")
    ids = list(range(len(entities)))
    split_rng.shuffle(ids)
    shared_count = round(config.overlap * len(ids))
    shared = sorted(ids[:shared_count])
    exclusive = ids[shared_count:]
    # Exclusive entities alternate between the KBs.
    only1 = sorted(exclusive[0::2])
    only2 = sorted(exclusive[1::2])

    profile1 = config.profile
    profile2 = config.profile2 or config.profile

    properties1 = _kb_property_names(config, "kb1")
    properties2 = _kb_property_names(config, "kb2")
    synonyms1: dict[str, str] = {}  # KB1 keeps canonical tokens
    synonyms2 = _kb_synonyms(config, "kb2")
    relation_prop1 = "http://kb1.example.org/ontology/relatedTo"
    relation_prop2 = "http://kb2.example.org/ontology/linksTo"

    rng1 = deterministic_rng(config.seed, "materialize", "kb1")
    rng2 = deterministic_rng(config.seed, "materialize", "kb2")
    members1 = sorted(shared + only1)
    members2 = sorted(shared + only2)
    uris1 = _assign_uris(entities, members1, "kb1", profile1, rng1)
    uris2 = _assign_uris(entities, members2, "kb2", profile2, rng2)

    kb1 = EntityCollection(name="kb1")
    for entity_id in members1:
        kb1.add(
            _materialize(
                entities[entity_id], "kb1", uris1, properties1, synonyms1,
                profile1, rng1, relation_prop1,
            )
        )
    kb2 = EntityCollection(name="kb2")
    for entity_id in members2:
        kb2.add(
            _materialize(
                entities[entity_id], "kb2", uris2, properties2, synonyms2,
                profile2, rng2, relation_prop2,
            )
        )

    clusters: list[frozenset[str]] = []
    cluster_of_entity: dict[int, int] = {}
    for entity_id in shared:
        cluster_of_entity[entity_id] = len(clusters)
        clusters.append(frozenset((uris1[entity_id], uris2[entity_id])))
    entity_graphs: list[frozenset[int]] = []
    for members in groups:
        cluster_ids = frozenset(
            cluster_of_entity[m] for m in members if m in cluster_of_entity
        )
        if cluster_ids:
            entity_graphs.append(cluster_ids)

    gold = GoldStandard(clusters=clusters, entity_graphs=entity_graphs)
    entity_of: dict[str, int] = {}
    for entity_id, uri in uris1.items():
        entity_of[uri] = entity_id
    for entity_id, uri in uris2.items():
        entity_of[uri] = entity_id
    return SyntheticDataset(
        kb1=kb1,
        kb2=kb2,
        gold=gold,
        config=config,
        entity_of=entity_of,
        shared_entities=shared,
    )


def synthesize_dirty(
    config: SyntheticConfig,
    max_duplicates: int = 3,
) -> tuple[EntityCollection, GoldStandard]:
    """Generate a dirty-ER workload: one collection with duplicate clusters.

    Each universe entity receives 1..*max_duplicates* descriptions (drawn
    uniformly), all perturbed with ``config.profile``.

    Returns:
        ``(collection, gold)`` where gold clusters group the duplicate
        descriptions of each entity.
    """
    config.validate()
    if max_duplicates < 1:
        raise ValueError("max_duplicates must be >= 1")
    entities, groups = _build_universe(config)
    profile = config.profile
    properties = _kb_property_names(config, "kb1")
    relation_prop = "http://kb1.example.org/ontology/relatedTo"
    rng = deterministic_rng(config.seed, "dirty")

    collection = EntityCollection(name="dirty")
    clusters: list[frozenset[str]] = []
    cluster_of_entity: dict[int, int] = {}
    # Pre-assign one primary URI per entity so relations can point to it.
    primary_uris = _assign_uris(entities, list(range(len(entities))), "kb1", profile, rng)

    for entity in entities:
        copies = rng.randint(1, max_duplicates)
        copy_uris: list[str] = []
        for copy in range(copies):
            uri_map = dict(primary_uris)
            if copy > 0:
                uri_map[entity.entity_id] = (
                    f"{primary_uris[entity.entity_id]}_v{copy}"
                )
            description = _materialize(
                entity, "kb1", uri_map, properties, {}, profile, rng, relation_prop
            )
            collection.add(description)
            copy_uris.append(description.uri)
        if len(copy_uris) > 1:
            cluster_of_entity[entity.entity_id] = len(clusters)
            clusters.append(frozenset(copy_uris))

    entity_graphs = []
    for members in groups:
        cluster_ids = frozenset(
            cluster_of_entity[m] for m in members if m in cluster_of_entity
        )
        if cluster_ids:
            entity_graphs.append(cluster_ids)
    gold = GoldStandard(clusters=clusters, entity_graphs=entity_graphs)
    return collection, gold


def periphery_config(**overrides) -> SyntheticConfig:
    """Convenience: a periphery-profile configuration."""
    base = SyntheticConfig(profile=PERIPHERY_PROFILE)
    return replace(base, **overrides)


def center_config(**overrides) -> SyntheticConfig:
    """Convenience: a center-profile configuration."""
    base = SyntheticConfig(profile=CENTER_PROFILE)
    return replace(base, **overrides)
