"""Ground-truth containers and CSV I/O.

A :class:`GoldStandard` stores the oracle co-reference information used by
evaluation only (never by the resolution pipeline): the set of matching
pairs and, when available, the grouping of descriptions into real-world
entities and of real-world entities into **entity graphs** (connected
groups of related entities — the unit of the relationship-completeness
benefit).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Iterable

from repro.blocking.block import comparison_pair


@dataclass
class GoldStandard:
    """Oracle co-reference data for one ER task.

    Args:
        matches: canonical matching pairs.
        clusters: optional full clustering — every group of URIs that
            describe the same real-world entity (supersedes *matches* when
            given: matches are derived as all intra-cluster pairs).
        entity_graphs: optional grouping of cluster ids into related
            groups; each entry lists the clusters (by index into
            *clusters*) forming one real-world entity graph.
    """

    matches: set[tuple[str, str]] = field(default_factory=set)
    clusters: list[frozenset[str]] = field(default_factory=list)
    entity_graphs: list[frozenset[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.clusters and not self.matches:
            self.matches = set(self.pairs_from_clusters())

    def __len__(self) -> int:
        """Number of matching pairs."""
        return len(self.matches)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self.matches

    def is_match(self, uri_a: str, uri_b: str) -> bool:
        """True if the two URIs co-refer according to the gold standard."""
        return comparison_pair(uri_a, uri_b) in self.matches

    def pairs_from_clusters(self) -> Iterable[tuple[str, str]]:
        """All intra-cluster pairs."""
        for cluster in self.clusters:
            members = sorted(cluster)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    yield comparison_pair(members[i], members[j])

    def cluster_index(self) -> dict[str, int]:
        """URI → cluster id (only for URIs covered by *clusters*)."""
        index: dict[str, int] = {}
        for cluster_id, cluster in enumerate(self.clusters):
            for uri in cluster:
                index[uri] = cluster_id
        return index

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[str, str]]) -> "GoldStandard":
        """Build from raw (possibly unordered) pair tuples."""
        return GoldStandard(
            matches={comparison_pair(a, b) for a, b in pairs}
        )


def load_gold_csv(path: str) -> GoldStandard:
    """Load a two-column CSV of matching URI pairs (header optional).

    Lines whose first field is ``uri1``/``id1`` (case-insensitive) are
    treated as headers and skipped.
    """
    pairs: set[tuple[str, str]] = set()
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for row in csv.reader(handle):
            if len(row) < 2:
                continue
            first = row[0].strip()
            if first.lower() in ("uri1", "id1", "left"):
                continue
            pairs.add(comparison_pair(first, row[1].strip()))
    return GoldStandard(matches=pairs)


def save_gold_csv(gold: GoldStandard, path: str) -> None:
    """Write the matching pairs as a two-column CSV with a header."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["uri1", "uri2"])
        for left, right in sorted(gold.matches):
            writer.writerow([left, right])
