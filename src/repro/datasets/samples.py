"""Embedded sample corpora.

Two hand-curated clean-clean corpora ship with the package as N-Triples
plus gold CSVs:

* **restaurants** — the classic ER demonstration domain: two directories
  describing overlapping sets of restaurants with different schemas,
  abbreviation conventions (``Street``/``St``) and coverage; 14 gold
  matches, a few single-KB venues as noise.
* **movies** — films *and* their directors across a DBpedia-like KB
  (name-bearing URIs, rich attributes) and a Freebase-like KB (opaque
  ``/m/…`` ids, sparse labels, several abbreviated titles).  Films
  reference their directors inside each KB, so the corpus exercises the
  progressive update phase: a director match is evidence for the films
  that cite them — including films whose abbreviated titles token
  blocking alone scores poorly.
"""

from __future__ import annotations

import os

from repro.datasets.gold import GoldStandard, load_gold_csv
from repro.model.collection import EntityCollection
from repro.rdf.loader import load_collection

_DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def sample_path(filename: str) -> str:
    """Absolute path of a shipped data file.

    Raises:
        FileNotFoundError: if the file is not part of the package data.
    """
    path = os.path.join(_DATA_DIR, filename)
    if not os.path.exists(path):
        raise FileNotFoundError(f"no packaged sample file {filename!r}")
    return path


def load_restaurants() -> tuple[EntityCollection, EntityCollection, GoldStandard]:
    """The restaurants corpus: ``(kb_a, kb_b, gold)``."""
    kb_a = load_collection(sample_path("restaurants_a.nt"), name="restaurants-a")
    kb_b = load_collection(sample_path("restaurants_b.nt"), name="restaurants-b")
    gold = load_gold_csv(sample_path("restaurants_gold.csv"))
    return kb_a, kb_b, gold


def load_movies() -> tuple[EntityCollection, EntityCollection, GoldStandard]:
    """The movies corpus (films + directors): ``(kb_a, kb_b, gold)``."""
    kb_a = load_collection(sample_path("movies_a.nt"), name="movies-a")
    kb_b = load_collection(sample_path("movies_b.nt"), name="movies-b")
    gold = load_gold_csv(sample_path("movies_gold.csv"))
    return kb_a, kb_b, gold


def load_people() -> tuple[EntityCollection, EntityCollection, GoldStandard]:
    """The people corpus (researchers + institutions), shipped as Turtle.

    Exercises the Turtle loading path end to end; people reference their
    institutions inside each KB (``affiliation`` / ``memberOf``), several
    names are abbreviated on one side ("E. Marchetti"), and each side has
    one researcher with no counterpart.
    """
    kb_a = load_collection(sample_path("people_a.ttl"), name="people-a")
    kb_b = load_collection(sample_path("people_b.ttl"), name="people-b")
    gold = load_gold_csv(sample_path("people_gold.csv"))
    return kb_a, kb_b, gold
