"""MinoanER reproduction: progressive entity resolution in the Web of Data.

A from-scratch Python implementation of the platform described in
V. Efthymiou, K. Stefanidis, V. Christophides, *"Minoan ER: Progressive
Entity Resolution in the Web of Data"* (EDBT 2016), together with every
substrate the platform depends on: an RDF stack, schema-agnostic blocking
and meta-blocking, a simulated MapReduce cluster for the parallel
algorithms, matching, the progressive scheduling/update core with
quality-aware benefit models, the baselines it is evaluated against, a
LOD-cloud workload synthesizer and the evaluation harness.

Quickstart (the declarative facade — one spec, any backend)::

    from repro import Pipeline, PipelineSpec, load_movies

    kb_a, kb_b, gold = load_movies()
    spec = PipelineSpec.from_dict({
        "weighting": "ARCS", "pruning": "CNP",
        "matching": {"budget": 500, "benefit": "entity-coverage"},
    })
    report = Pipeline.run(spec, kb_a, kb_b, gold=gold)
    print(report.summary())

The original object-construction path remains supported::

    from repro import MinoanER, CostBudget

    platform = MinoanER(budget=CostBudget(500), benefit="entity-coverage")
    result = platform.resolve(kb_a, kb_b, gold=gold)
"""

from repro.model import (
    EntityDescription,
    EntityCollection,
    EntityInterner,
    Tokenizer,
    infer_stop_tokens,
)
from repro.rdf import (
    parse_ntriples,
    parse_turtle,
    serialize_turtle,
    TripleStore,
    load_collection,
)
from repro.blocking import (
    Block,
    BlockCollection,
    TokenBlocking,
    PrefixInfixSuffixBlocking,
    AttributeClusteringBlocking,
    BlockPurging,
    BlockFiltering,
    CompositeBlocking,
    QGramsBlocking,
)
from repro.metablocking import BlockingGraph, make_scheme, make_pruner
from repro.matching import (
    SimilarityIndex,
    ThresholdMatcher,
    OracleMatcher,
    EnsembleMatcher,
    MatchGraph,
)
from repro.mapreduce import MapReduceEngine, parallel_token_blocking
from repro.core import (
    CostBudget,
    ProgressiveER,
    ProgressiveSession,
    MinoanER,
    make_benefit,
    NeighborEvidencePropagator,
    NeighborAwareMatcher,
    static_strategy,
    dynamic_strategy,
    hybrid_strategy,
)
from repro.datasets import (
    GoldStandard,
    SyntheticConfig,
    synthesize_pair,
    synthesize_dirty,
    load_restaurants,
    load_movies,
    CENTER_PROFILE,
    PERIPHERY_PROFILE,
)
from repro.evaluation import (
    evaluate_blocks,
    evaluate_matches,
    bcubed,
    ProgressiveCurve,
    format_table,
    format_series,
)
from repro.baselines import (
    random_order_baseline,
    oracle_order_baseline,
    batch_baseline,
    AltowimProgressiveER,
)
from repro.stream import (
    StreamingEntityStore,
    StreamResolver,
    WorkloadDriver,
)

# The declarative facade (imported last: it resolves the components
# registered by the subpackages above into the registry).
from repro.api import (
    Pipeline,
    PipelineSpec,
    RunReport,
    register,
    registry,
)

__version__ = "1.1.0"

__all__ = [
    "Pipeline",
    "PipelineSpec",
    "RunReport",
    "registry",
    "register",
    "EntityDescription",
    "EntityCollection",
    "EntityInterner",
    "Tokenizer",
    "parse_ntriples",
    "parse_turtle",
    "TripleStore",
    "load_collection",
    "Block",
    "BlockCollection",
    "TokenBlocking",
    "PrefixInfixSuffixBlocking",
    "AttributeClusteringBlocking",
    "BlockPurging",
    "BlockFiltering",
    "BlockingGraph",
    "make_scheme",
    "make_pruner",
    "SimilarityIndex",
    "ThresholdMatcher",
    "MatchGraph",
    "MapReduceEngine",
    "parallel_token_blocking",
    "CostBudget",
    "ProgressiveER",
    "StreamingEntityStore",
    "StreamResolver",
    "WorkloadDriver",
    "MinoanER",
    "make_benefit",
    "NeighborEvidencePropagator",
    "static_strategy",
    "dynamic_strategy",
    "hybrid_strategy",
    "GoldStandard",
    "SyntheticConfig",
    "synthesize_pair",
    "synthesize_dirty",
    "load_restaurants",
    "load_movies",
    "CENTER_PROFILE",
    "PERIPHERY_PROFILE",
    "evaluate_blocks",
    "evaluate_matches",
    "bcubed",
    "ProgressiveCurve",
    "ProgressiveSession",
    "OracleMatcher",
    "EnsembleMatcher",
    "NeighborAwareMatcher",
    "CompositeBlocking",
    "QGramsBlocking",
    "serialize_turtle",
    "infer_stop_tokens",
    "format_table",
    "format_series",
    "random_order_baseline",
    "oracle_order_baseline",
    "batch_baseline",
    "AltowimProgressiveER",
]
