"""E1 — Figure 1: the end-to-end MinoanER pipeline.

Runs the full framework of the poster's Figure 1 (blocking →
meta-blocking → scheduling/matching/update on a budget) on the movies
corpus and reports per-stage sizes plus final quality — the architecture
walk-through every other experiment decomposes.
"""

from __future__ import annotations

from conftest import report

from repro.api import Pipeline, PipelineSpec
from repro.evaluation.reporting import format_table

#: the whole E1 experiment as one declarative object
SPEC = PipelineSpec.from_dict(
    {
        "weighting": "ARCS",
        "pruning": "CNP",
        "matching": {
            "matcher": {"name": "threshold", "params": {"threshold": 0.35}},
            "budget": 500,
        },
    }
)


def run_pipeline(movies):
    kb_a, kb_b, gold = movies
    return Pipeline.run(SPEC, kb_a, kb_b, gold=gold), gold


def test_e1_pipeline(benchmark, movies):
    result, gold = benchmark(run_pipeline, movies)
    quality = result.match_quality
    rows = [dict(stage=k, value=v) for k, v in result.summary().items()]
    rows.extend(dict(stage=k, value=v) for k, v in quality.as_row().items())
    report(
        "e1_pipeline",
        format_table(rows, title="E1  MinoanER pipeline on movies (Figure 1)"),
    )
    assert quality.f1 >= 0.85
