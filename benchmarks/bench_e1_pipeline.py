"""E1 — Figure 1: the end-to-end MinoanER pipeline.

Runs the full framework of the poster's Figure 1 (blocking →
meta-blocking → scheduling/matching/update on a budget) on the movies
corpus and reports per-stage sizes plus final quality — the architecture
walk-through every other experiment decomposes.
"""

from __future__ import annotations

from conftest import report

from repro.core.budget import CostBudget
from repro.core.pipeline import MinoanER
from repro.evaluation.metrics import evaluate_matches
from repro.evaluation.reporting import format_table


def run_pipeline(movies):
    kb_a, kb_b, gold = movies
    platform = MinoanER(budget=CostBudget(500), match_threshold=0.35)
    return platform.resolve(kb_a, kb_b, gold=gold), gold


def test_e1_pipeline(benchmark, movies):
    result, gold = benchmark(run_pipeline, movies)
    quality = evaluate_matches(result.matched_pairs(), gold)
    rows = [dict(stage=k, value=v) for k, v in result.summary().items()]
    rows.extend(dict(stage=k, value=v) for k, v in quality.as_row().items())
    report(
        "e1_pipeline",
        format_table(rows, title="E1  MinoanER pipeline on movies (Figure 1)"),
    )
    assert quality.f1 >= 0.85
