"""E5 — Progressive recall figure: recall vs consumed comparison budget.

The headline progressive-ER comparison: MinoanER's benefit-aware scheduler
(static and dynamic variants) against the random-order lower bound, the
blocking-native batch order, the Altowim-style progressive relational ER
baseline [1], and the oracle upper bound — on the center workload with a
real (threshold) matcher.  Shape to check: oracle ≥ dynamic ≥ static >
altowim > batch ≈ random at every budget, with the gap widest at small
budgets (that is what "progressive" buys).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.baselines.altowim import AltowimProgressiveER
from repro.baselines.ordered import (
    batch_baseline,
    oracle_order_baseline,
    random_order_baseline,
)
from repro.core.budget import CostBudget
from repro.core.pipeline import MinoanER
from repro.core.strategies import dynamic_strategy, static_strategy
from repro.evaluation.reporting import format_series, format_table
from repro.matching.matcher import ThresholdMatcher
from repro.matching.similarity import SimilarityIndex


@pytest.fixture(scope="module")
def setup(center):
    platform = MinoanER()
    _, processed = platform.block(center.kb1, center.kb2)
    edges = platform.meta_block(processed)
    index = SimilarityIndex([center.kb1, center.kb2])
    matcher = ThresholdMatcher(index, threshold=0.35)
    budget = CostBudget(max(50, len(edges) // 2))
    return processed, edges, matcher, budget


def run_all(center, setup):
    processed, edges, matcher, budget = setup
    collections = [center.kb1, center.kb2]
    gold = center.gold
    curves = {}
    curves["minoan-dynamic"] = dynamic_strategy(matcher, budget=budget).run(
        edges, collections, gold=gold, label="minoan-dynamic"
    )
    curves["minoan-static"] = static_strategy(matcher, budget=budget).run(
        edges, collections, gold=gold, label="minoan-static"
    )
    curves["altowim"] = AltowimProgressiveER(window_size=20).run(
        processed, matcher, collections, budget, gold
    )
    curves["random"] = random_order_baseline(edges, matcher, collections, budget, gold)
    curves["batch"] = batch_baseline(edges, matcher, collections, budget, gold)
    curves["oracle"] = oracle_order_baseline(edges, matcher, collections, gold, budget)
    return curves


def test_e5_progressive_recall(benchmark, center, setup):
    processed, edges, matcher, budget = setup
    results = run_all(center, setup)

    benchmark(
        lambda: dynamic_strategy(matcher, budget=budget).run(
            edges, [center.kb1, center.kb2], gold=center.gold
        )
    )

    series = format_series(
        [r.curve for r in results.values()],
        series="recall",
        points=10,
        title="E5  Progressive recall vs comparisons",
    )
    auc_rows = [
        {
            "strategy": name,
            "AUC": f"{r.curve.auc('recall', budget.max_cost):.3f}",
            "final recall": f"{r.curve.final('recall'):.3f}",
            "comparisons": str(r.comparisons_executed),
        }
        for name, r in results.items()
    ]
    report(
        "e5_progressive",
        series + "\n\n" + format_table(auc_rows, title="AUC@budget", first_column="strategy"),
    )

    auc = {name: r.curve.auc("recall", budget.max_cost) for name, r in results.items()}
    # The paper's qualitative ordering.
    assert auc["oracle"] >= auc["minoan-dynamic"] - 1e-9
    assert auc["minoan-dynamic"] >= auc["minoan-static"] - 0.02
    assert auc["minoan-static"] > auc["random"]
    assert auc["minoan-static"] > auc["batch"]
    assert auc["minoan-dynamic"] > auc["altowim"]
