"""E2 — Blocking-quality table (per the companion Big Data 2015 study [5]).

Compares the schema-agnostic blocking methods on the center and periphery
workloads: token blocking, attribute-clustering blocking,
prefix-infix(-suffix) blocking and its total-description variant.  Rows
report PC, PQ, RR, block and comparison counts — the shape to check is
token blocking's near-perfect PC at low PQ, attribute clustering trading
a little PC for much better PQ, and URI-based keys degrading gracefully
at the periphery (where many URIs are opaque).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
)
from repro.evaluation.metrics import evaluate_blocks
from repro.evaluation.reporting import format_table


def blockers():
    return [
        TokenBlocking(),
        AttributeClusteringBlocking(),
        PrefixInfixSuffixBlocking(),
        PrefixInfixSuffixBlocking(include_literals=True),
    ]


def run_experiment(datasets) -> list[dict[str, str]]:
    rows = []
    for regime, dataset in datasets.items():
        for blocker in blockers():
            blocks = blocker.build(dataset.kb1, dataset.kb2)
            quality = evaluate_blocks(
                blocks, dataset.gold, len(dataset.kb1), len(dataset.kb2)
            )
            row = {"workload": regime, "method": blocker.name}
            row.update(quality.as_row())
            rows.append(row)
    return rows


@pytest.fixture(scope="module")
def table(center, periphery):
    return run_experiment({"center": center, "periphery": periphery})


def test_e2_blocking_quality(benchmark, center, table):
    benchmark(lambda: TokenBlocking().build(center.kb1, center.kb2))
    report(
        "e2_blocking",
        format_table(table, title="E2  Blocking methods: PC / PQ / RR", first_column="workload"),
    )
    by_key = {(r["workload"], r["method"]): r for r in table}
    # Token blocking is the recall ceiling on both regimes.
    assert float(by_key[("center", "token-blocking")]["PC"]) >= 0.95
    # Attribute clustering must not produce more comparisons than token blocking.
    assert int(by_key[("center", "attribute-clustering")]["comparisons"]) <= int(
        by_key[("center", "token-blocking")]["comparisons"]
    )
    # URI-only blocking loses recall at the periphery (opaque URIs).
    assert float(by_key[("periphery", "prefix-infix-suffix")]["PC"]) < float(
        by_key[("center", "prefix-infix-suffix")]["PC"]
    )
