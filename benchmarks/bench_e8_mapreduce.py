"""E8 — MapReduce scaling figure (per the parallel blocking/meta-blocking
papers [4, 5]).

Runs parallel token blocking and both parallel meta-blocking strategies on
the simulated cluster at 1, 2, 4 and 8 workers, reporting the simulated
critical-path cost (slowest map task + slowest reduce task), the derived
speedup over one worker, shuffle volume and reduce skew.  Shape to check:
speedup grows with workers but sub-linearly (skewed token distributions
leave stragglers — the effect [4] dedicates its load-balancing discussion
to), and the entity-centric strategy ships more shuffle data than the
edge-centric one on the same input.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.evaluation.reporting import format_table
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.parallel_blocking import parallel_token_blocking
from repro.mapreduce.parallel_metablocking import (
    parallel_metablocking,
    parallel_node_pruning,
)
from repro.metablocking.pruning import CNP, WEP
from repro.metablocking.weighting import ARCS

WORKERS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def processed_blocks(center):
    blocks = TokenBlocking().build(center.kb1, center.kb2)
    return BlockFiltering().process(BlockPurging().process(blocks))


def run_experiment(center, processed_blocks):
    rows = []
    base_costs: dict[str, int] = {}

    def add(job: str, workers: int, metrics_list) -> None:
        cost = sum(m.critical_path_cost for m in metrics_list)
        shuffle_records = sum(m.shuffle_records for m in metrics_list)
        shuffle_bytes = sum(m.shuffle_bytes for m in metrics_list)
        skew = max(m.skew for m in metrics_list)
        if workers == 1:
            base_costs[job] = cost
        rows.append(
            {
                "job": job,
                "workers": str(workers),
                "critical path": str(cost),
                "speedup": f"{base_costs[job] / cost:.2f}x",
                "shuffle records": str(shuffle_records),
                "shuffle KiB": f"{shuffle_bytes / 1024:.0f}",
                "max skew": f"{skew:.2f}",
            }
        )

    for workers in WORKERS:
        engine = MapReduceEngine(workers=workers)
        _, blocking_metrics = parallel_token_blocking(engine, center.kb1, center.kb2)
        add("token blocking", workers, [blocking_metrics])
        _, edge_metrics = parallel_metablocking(
            engine, processed_blocks, ARCS(), WEP()
        )
        add("meta-blocking (edge-centric WEP)", workers, edge_metrics)
        _, node_metrics = parallel_node_pruning(
            engine, processed_blocks, ARCS(), CNP()
        )
        add("meta-blocking (entity-centric CNP)", workers, node_metrics)
    return rows


def test_e8_mapreduce_scaling(benchmark, center, processed_blocks):
    rows = run_experiment(center, processed_blocks)

    benchmark(
        lambda: parallel_token_blocking(
            MapReduceEngine(workers=4), center.kb1, center.kb2
        )
    )

    report(
        "e8_mapreduce",
        format_table(rows, title="E8  Simulated MapReduce scaling", first_column="job"),
    )

    by_key = {(r["job"], r["workers"]): r for r in rows}
    for job in (
        "token blocking",
        "meta-blocking (edge-centric WEP)",
        "meta-blocking (entity-centric CNP)",
    ):
        costs = [int(by_key[(job, str(w))]["critical path"]) for w in WORKERS]
        # More workers never increase the simulated wall time...
        assert costs[-1] < costs[0]
        # ...but speedup is sub-linear (skew leaves stragglers).
        speedup8 = float(by_key[(job, "8")]["speedup"].rstrip("x"))
        assert 1.0 < speedup8 <= 8.0
    # Entity-centric meta-blocking ships each edge to both endpoints:
    # strictly more shuffle volume than the edge-centric strategy.
    assert int(by_key[("meta-blocking (entity-centric CNP)", "4")]["shuffle records"]) > int(
        by_key[("meta-blocking (edge-centric WEP)", "4")]["shuffle records"]
    )
