"""E9 — Center vs periphery table (the paper's motivating measurement).

Quantifies the "highly similar vs somehow similar" dichotomy the poster's
introduction builds on: the token-overlap distribution of gold matching
pairs in each regime, and what that does to token blocking.  Shape to
check: center matches share many tokens (high mean Jaccard, almost no
low-evidence pairs) and token blocking ranks them into few, repeated
blocks; periphery matches share few tokens — a visible fraction shares at
most two — which is exactly the population the update phase (E7) targets.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.blocking import TokenBlocking
from repro.evaluation.metrics import evaluate_blocks
from repro.evaluation.reporting import format_table
from repro.matching.similarity import SimilarityIndex


def profile_rows(label, dataset) -> dict[str, str]:
    index = SimilarityIndex([dataset.kb1, dataset.kb2])
    overlaps = []
    low_evidence = 0
    for left, right in sorted(dataset.gold.matches):
        common = len(index.common_tokens(left, right))
        overlaps.append(index.jaccard(left, right))
        if common <= 2:
            low_evidence += 1
    blocks = TokenBlocking().build(dataset.kb1, dataset.kb2)
    quality = evaluate_blocks(blocks, dataset.gold, len(dataset.kb1), len(dataset.kb2))
    matches = len(dataset.gold.matches)
    return {
        "workload": label,
        "mean match Jaccard": f"{sum(overlaps) / len(overlaps):.3f}",
        "min match Jaccard": f"{min(overlaps):.3f}",
        "matches with <=2 common tokens": f"{low_evidence}/{matches}",
        "token-blocking PC": quality.as_row()["PC"],
        "comparisons": quality.as_row()["comparisons"],
    }


@pytest.fixture(scope="module")
def table(center, periphery):
    return [profile_rows("center", center), profile_rows("periphery", periphery)]


def test_e9_lod_profiles(benchmark, center, table):
    benchmark(lambda: SimilarityIndex([center.kb1, center.kb2]))
    report(
        "e9_lod_profiles",
        format_table(
            table,
            title="E9  Highly vs somehow similar descriptions (center vs periphery)",
            first_column="workload",
        ),
    )
    center_row, periphery_row = table
    assert float(center_row["mean match Jaccard"]) > float(
        periphery_row["mean match Jaccard"]
    )
    center_low = int(center_row["matches with <=2 common tokens"].split("/")[0])
    periphery_low = int(periphery_row["matches with <=2 common tokens"].split("/")[0])
    assert periphery_low > center_low
