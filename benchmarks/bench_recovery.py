"""Perf — crash recovery: WAL overhead and snapshot-bounded restart.

Replays the churn scenario (inserts + queries + retractions) on the
center synthetic workload through a durability-equipped
:class:`repro.stream.StreamResolver`, then kills and recovers it, and
measures:

* **WAL overhead per insert** — mean insert latency with write-ahead
  logging (fsync per event) against the in-memory baseline, plus the
  log's bytes-per-record footprint;
* **recovery time vs snapshot cadence** — for each ``snapshot_every``
  setting the replay is abandoned mid-flight (no clean-shutdown sync)
  and :func:`repro.stream.durability.recover` is timed cold.

Two properties are gated:

* **bit-identity** — every recovered state equals the uninterrupted
  in-memory replay of the same event prefix (``capture_state`` dicts
  compare equal);
* **strictly fewer events** — with snapshots enabled, recovery replays
  strictly fewer WAL records than the full history.

Results are printed and written as a ``BENCH_recovery.json`` artifact
at the repository root (CI uploads it per run).  Run either way::

    pytest benchmarks/bench_recovery.py -s
    PYTHONPATH=src python benchmarks/bench_recovery.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_recovery.json")

from repro.datasets import SyntheticConfig, synthesize_pair
from repro.stream import StreamResolver, WorkloadDriver
from repro.stream.durability import Durability, capture_state, recover
from repro.stream.workload import SCENARIOS

CENTER = SyntheticConfig(entities=200, overlap=0.7, seed=42)
SCENARIO = "churn"
#: snapshot cadences swept by the restart section (None = WAL only)
SNAPSHOT_INTERVALS: list[int | None] = [None, 200, 50]
#: durable insert latency may exceed the in-memory baseline by at most
#: this factor (fsync per event on CI disks is the dominant term)
OVERHEAD_BAR = 25.0


def _capture(stack) -> dict:
    return capture_state(
        stack.store, stack.index, stack.pairs, stack.view, stack.view_pairs
    )


def _replay(events, durability: Durability | None = None):
    resolver = StreamResolver(clean_clean=True, durability=durability)
    stats = WorkloadDriver(resolver).run(events, scenario=SCENARIO)
    return resolver, stats


def run_benchmark() -> dict:
    dataset = synthesize_pair(CENTER)
    events = SCENARIOS[SCENARIO](dataset.kb1, dataset.kb2)

    baseline, baseline_stats = _replay(events)
    reference_state = _capture(baseline)
    baseline_insert = baseline_stats.latency_summary("insert")

    results: dict = {
        "workload": {
            "profile": "center",
            "scenario": SCENARIO,
            "entities": len(dataset.kb1) + len(dataset.kb2),
            "events": baseline_stats.events,
            "inserts": baseline_stats.inserts,
            "deletes": baseline_stats.deletes,
            "queries": baseline_stats.queries,
        },
    }

    with tempfile.TemporaryDirectory() as scratch:
        # -- WAL overhead per insert (fsync per event, no snapshots) ---------
        wal_dir = os.path.join(scratch, "overhead")
        durable, durable_stats = _replay(
            events, Durability(wal_dir, fsync_every=1)
        )
        durable.durability.close()
        durable_insert = durable_stats.latency_summary("insert")
        wal_bytes = os.path.getsize(os.path.join(wal_dir, "wal.log"))
        wal_records = durable.durability.wal.record_count
        results["wal_overhead"] = {
            "baseline_insert_mean_us": round(baseline_insert["mean"] * 1e6, 2),
            "durable_insert_mean_us": round(durable_insert["mean"] * 1e6, 2),
            "overhead_us_per_insert": round(
                (durable_insert["mean"] - baseline_insert["mean"]) * 1e6, 2
            ),
            "overhead_ratio": round(
                durable_insert["mean"] / baseline_insert["mean"], 2
            )
            if baseline_insert["mean"] > 0
            else 0.0,
            "overhead_bar": OVERHEAD_BAR,
            "wal_bytes": wal_bytes,
            "wal_records": wal_records,
            "bytes_per_record": round(wal_bytes / max(wal_records, 1), 1),
        }

        # -- recovery time vs snapshot cadence -------------------------------
        sweep = []
        for interval in SNAPSHOT_INTERVALS:
            directory = os.path.join(scratch, f"restart-{interval}")
            crashed, _stats = _replay(
                events,
                Durability(directory, fsync_every=1, snapshot_every=interval),
            )
            crashed.durability.abandon()  # die without the shutdown sync

            t0 = time.perf_counter()
            recovered = recover(directory)
            recovery_s = time.perf_counter() - t0
            report = recovered.report
            sweep.append(
                {
                    "snapshot_every": interval,
                    "recovery_ms": round(recovery_s * 1e3, 3),
                    "snapshot_lsn": report.snapshot_lsn,
                    "wal_records": report.wal_records,
                    "replayed_events": report.replayed_events,
                    "replayed_fraction": round(
                        report.replayed_events / max(report.wal_records, 1), 4
                    ),
                    "state_identical": _capture(recovered) == reference_state,
                    "strictly_fewer": report.replayed_events
                    < report.wal_records,
                }
            )
        results["recovery_by_snapshot_interval"] = sweep

    results["state_identical_ok"] = all(e["state_identical"] for e in sweep)
    results["strictly_fewer_ok"] = all(
        e["strictly_fewer"]
        for e in sweep
        if e["snapshot_every"] is not None
    )
    results["overhead_ok"] = (
        results["wal_overhead"]["overhead_ratio"] <= OVERHEAD_BAR
    )
    return results


def format_report(results: dict) -> str:
    workload = results["workload"]
    overhead = results["wal_overhead"]
    lines = [
        "crash recovery: WAL overhead + snapshot-bounded restart "
        "(center workload, churn)",
        "",
        f"{workload['inserts']} inserts + {workload['deletes']} deletes + "
        f"{workload['queries']} queries",
        "",
        f"insert mean: {overhead['baseline_insert_mean_us']:.1f} us in-memory "
        f"vs {overhead['durable_insert_mean_us']:.1f} us durable "
        f"(+{overhead['overhead_us_per_insert']:.1f} us, "
        f"{overhead['overhead_ratio']:.2f}x, bar <= "
        f"{overhead['overhead_bar']:.0f}x)",
        f"WAL: {overhead['wal_records']} records, {overhead['wal_bytes']} bytes "
        f"({overhead['bytes_per_record']:.0f} bytes/record)",
        "",
    ]
    for entry in results["recovery_by_snapshot_interval"]:
        cadence = entry["snapshot_every"] or "WAL only"
        lines.append(
            f"[snapshot_every={cadence}] recovery {entry['recovery_ms']:.1f} ms, "
            f"replayed {entry['replayed_events']}/{entry['wal_records']} records "
            f"({entry['replayed_fraction']:.0%}) from snapshot LSN "
            f"{entry['snapshot_lsn']}"
        )
    lines.append("")
    lines.append(f"recovered state bit-identical: {results['state_identical_ok']}")
    lines.append(
        "snapshots replay strictly fewer events: "
        f"{results['strictly_fewer_ok']}"
    )
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_perf_recovery():
    """Pytest entry point: replay, crash, recover; assert the gates."""
    from conftest import report

    results = run_benchmark()
    report("perf_recovery", format_report(results))
    write_artifact(results)
    assert results["state_identical_ok"]
    assert results["strictly_fewer_ok"]
    assert results["overhead_ok"], results["wal_overhead"]


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    ok = (
        results["state_identical_ok"]
        and results["strictly_fewer_ok"]
        and results["overhead_ok"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
