"""E3 — Block post-processing table: purging and filtering.

Sweeps block purging (off / adaptive / explicit) and block filtering
ratios over token blocks on the center workload.  The shape: purging
removes the stop-token head of the distribution (huge RR gain, PC intact);
filtering then trims each entity's least selective blocks, trading a
little PC for further comparison savings as the ratio drops.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.evaluation.metrics import evaluate_blocks
from repro.evaluation.reporting import format_table


@pytest.fixture(scope="module")
def raw_blocks(center):
    return TokenBlocking().build(center.kb1, center.kb2)


def run_experiment(center, raw_blocks) -> list[dict[str, str]]:
    sizes = (len(center.kb1), len(center.kb2))
    rows = []

    def add(label: str, blocks) -> None:
        row = {"configuration": label}
        row.update(evaluate_blocks(blocks, center.gold, *sizes).as_row())
        rows.append(row)

    add("raw token blocks", raw_blocks)
    purged = BlockPurging().process(raw_blocks)
    add("purging (adaptive)", purged)
    add("purging (cardinality<=100)", BlockPurging(max_cardinality=100).process(raw_blocks))
    for ratio in (1.0, 0.8, 0.6, 0.5):
        add(
            f"purging + filtering r={ratio}",
            BlockFiltering(ratio=ratio).process(purged),
        )
    return rows


def test_e3_block_postprocessing(benchmark, center, raw_blocks):
    rows = run_experiment(center, raw_blocks)

    def postprocess():
        return BlockFiltering(0.8).process(BlockPurging().process(raw_blocks))

    benchmark(postprocess)
    report(
        "e3_purging",
        format_table(rows, title="E3  Block purging + filtering sweep", first_column="configuration"),
    )
    by_label = {r["configuration"]: r for r in rows}
    raw = by_label["raw token blocks"]
    adaptive = by_label["purging (adaptive)"]
    # Purging must preserve (nearly) all recall while cutting comparisons.
    assert float(adaptive["PC"]) >= float(raw["PC"]) - 0.02
    assert int(adaptive["comparisons"]) < int(raw["comparisons"])
    # Filtering is monotone: lower ratio, fewer comparisons.
    counts = [
        int(by_label[f"purging + filtering r={r}"]["comparisons"])
        for r in (1.0, 0.8, 0.6, 0.5)
    ]
    assert counts == sorted(counts, reverse=True)
