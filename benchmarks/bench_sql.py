"""Perf — relational backend vs the in-memory sequential reference.

The SQL backend (:mod:`repro.sqlbackend`) compiles purging, filtering,
pair enumeration, weighting and pruning to SQL over sqlite (and DuckDB
when installed).  Two properties per engine:

* **bit-identity** (gating) — the pruned edge list equals the
  sequential reference float-for-float on the synthetic center
  workload, for every weighting scheme swept;
* **stage walls** (non-gating, trajectory only) — per-stage wall times
  for load+postprocess, weighting and pruning, against the python
  pipeline's equivalents.  Shared runners are too noisy for a hard
  wall bar; the artifact tracks the trend.

Results are printed and written as a ``BENCH_sql.json`` artifact at the
repository root (CI uploads it per run).  Run either way::

    pytest benchmarks/bench_sql.py -s
    PYTHONPATH=src python benchmarks/bench_sql.py
"""

from __future__ import annotations

import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_sql.json")

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets import SyntheticConfig, synthesize_pair
from repro.metablocking import BlockingGraph, make_pruner, make_scheme
from repro.sqlbackend import SqlMetaBlocker, duckdb_available

CENTER = SyntheticConfig(entities=400, overlap=0.7, seed=42)
#: schemes swept for the bit-identity gate (pruner fixed to CNP)
SCHEMES = ("ARCS", "CBS", "ECBS", "EJS", "JS", "X2")
PRUNER = "CNP"


def _triples(edges):
    return [(e.left, e.right, e.weight) for e in edges]


def _python_reference(raw):
    """The sequential pipeline, timed per stage."""
    t0 = time.perf_counter()
    processed = BlockFiltering().process(BlockPurging().process(raw))
    postprocess_s = time.perf_counter() - t0
    out = {"postprocess_ms": round(postprocess_s * 1e3, 3), "schemes": {}}
    reference = {}
    for scheme_name in SCHEMES:
        t0 = time.perf_counter()
        graph = BlockingGraph(processed, make_scheme(scheme_name))
        edges = make_pruner(PRUNER).prune(graph)
        out["schemes"][scheme_name] = {
            "wall_ms": round((time.perf_counter() - t0) * 1e3, 3),
            "edges": len(edges),
        }
        reference[scheme_name] = _triples(edges)
    return out, reference


def _sql_run(raw, engine, reference):
    """One engine: load once, sweep every scheme, gate on bit-identity."""
    out = {"schemes": {}}
    with SqlMetaBlocker(engine=engine) as mb:
        t0 = time.perf_counter()
        mb.prepare(raw, BlockPurging(), BlockFiltering())
        out["load_postprocess_ms"] = round((time.perf_counter() - t0) * 1e3, 3)
        t0 = time.perf_counter()
        mb.build_pairs()
        out["pairs_ms"] = round((time.perf_counter() - t0) * 1e3, 3)
        for scheme_name in SCHEMES:
            t0 = time.perf_counter()
            mb.weight(make_scheme(scheme_name))
            weight_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            edges = mb.prune(make_pruner(PRUNER))
            prune_s = time.perf_counter() - t0
            out["schemes"][scheme_name] = {
                "weight_ms": round(weight_s * 1e3, 3),
                "prune_ms": round(prune_s * 1e3, 3),
                "edges": len(edges),
                "bit_identical": _triples(edges) == reference[scheme_name],
            }
    out["bit_identical"] = all(
        entry["bit_identical"] for entry in out["schemes"].values()
    )
    return out


def run_benchmark() -> dict:
    dataset = synthesize_pair(CENTER)
    raw = TokenBlocking().build(dataset.kb1, dataset.kb2)
    python, reference = _python_reference(raw)
    results = {
        "workload": {
            "profile": "center",
            "entities": len(dataset.kb1) + len(dataset.kb2),
            "blocks": len(raw),
            "pruner": PRUNER,
        },
        "python": python,
        "engines": {"sqlite": _sql_run(raw, "sqlite", reference)},
    }
    if duckdb_available():
        results["engines"]["duckdb"] = _sql_run(raw, "duckdb", reference)
    results["bit_identical"] = all(
        entry["bit_identical"] for entry in results["engines"].values()
    )
    return results


def gates_ok(results: dict) -> bool:
    return results["bit_identical"]


def format_report(results: dict) -> str:
    workload = results["workload"]
    lines = [
        "sql backend: per-stage walls + bit-identity (center workload)",
        "",
        f"[workload] {workload['entities']} entities, "
        f"{workload['blocks']} raw blocks, pruner {workload['pruner']}",
        f"[python] postprocess {results['python']['postprocess_ms']:.2f} ms",
    ]
    for engine_name, engine in sorted(results["engines"].items()):
        lines.append(
            f"[{engine_name}] load+postprocess "
            f"{engine['load_postprocess_ms']:.2f} ms, "
            f"pairs {engine['pairs_ms']:.2f} ms"
        )
        for scheme_name in SCHEMES:
            sql = engine["schemes"][scheme_name]
            ref = results["python"]["schemes"][scheme_name]
            status = "identical" if sql["bit_identical"] else "DIVERGED"
            lines.append(
                f"  [{scheme_name}] python {ref['wall_ms']:.2f} ms vs "
                f"weight {sql['weight_ms']:.2f} + prune "
                f"{sql['prune_ms']:.2f} ms, {sql['edges']} edges: {status}"
            )
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_perf_sql():
    """Pytest entry point: assert the bit-identity gate per engine."""
    from conftest import report

    results = run_benchmark()
    report("perf_sql", format_report(results))
    write_artifact(results)
    assert results["bit_identical"], results["engines"]


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    return 0 if gates_ok(results) else 1


if __name__ == "__main__":
    sys.exit(main())
