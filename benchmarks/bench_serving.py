"""Perf — sharded serving tier: scaling, tail latency, recovery time.

Drives the uniform arrival+query scenario on the center synthetic
workload through :class:`repro.serving.Router` tiers and measures:

* **throughput by shard count** — closed-loop replay (each event
  dispatched as soon as the previous answer lands) at 1/2/4 shards;
* **tail latency under open-loop load** — wrk2-style constant arrival
  rate with latency measured from the *scheduled* arrival (coordinated
  omission corrected), reported per period;
* **recovery time** — a SIGKILL is injected mid-run; the supervisor's
  outage-detected → shard-live-again histogram is the recovery cost.

Four properties are gated:

* **bit-identity** — the multi-shard tier's merged results equal a
  replayed single-store oracle, float-for-float (strict, always on);
* **zero degraded after recovery** — once the killed shard is live
  again no query is served from partial coverage (strict, always on);
* **throughput scaling floor** — the widest tier must reach at least
  ``SCALING_FLOOR`` of single-shard throughput (the merge adds IPC cost;
  the floor asserts sharding is never catastrophically slower) — only
  gated on machines with >= 4 CPUs, like the MapReduce speedup gate;
* **bounded recovery** — worst observed time-to-healthy stays under a
  generous wall-clock bar sized for shared CI runners.

Results are printed and written as a ``BENCH_serving.json`` artifact at
the repository root (CI uploads it per run).  Run either way::

    pytest benchmarks/bench_serving.py -s
    PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_serving.json")

from repro.datasets import SyntheticConfig, synthesize_pair
from repro.serving import (
    RetryPolicy,
    Router,
    parse_fault,
    run_open_loop,
    verify_equivalence,
)
from repro.stream.workload import SCENARIOS

CENTER = SyntheticConfig(entities=200, overlap=0.7, seed=42)
SCENARIO = "uniform"
#: shard widths swept by the closed-loop throughput section
SHARD_COUNTS = (1, 2, 4)
#: open-loop arrival rate for the latency and recovery sections
TARGET_EPS = 300.0
#: widest tier must keep at least this fraction of 1-shard throughput
#: (generous: the gate is "sharding never craters", not "sharding wins"
#: — the sample workload is far below the per-shard saturation point
#: where partitioned weighing pays off)
SCALING_FLOOR = 0.5
#: p99 end-to-end latency bar under open-loop load (generous for CI)
TAIL_P99_BAR_MS = 500.0
#: worst-case outage-detected -> live-again bar (includes the 0.5 s
#: heartbeat deadline, the respawn fork, WAL-free rebuild and re-drive)
RECOVERY_BAR_S = 10.0


def _events():
    dataset = synthesize_pair(CENTER)
    return SCENARIOS[SCENARIO](dataset.kb1, dataset.kb2)


def _drive_closed_loop(router, events):
    """Replay every event as fast as answers land; returns elapsed s."""
    t0 = time.perf_counter()
    for event in events:
        if event.kind == "delete":
            router.delete(event.description.uri)
        else:
            router.resolve(
                event.description,
                event.source,
                ingest=event.kind == "insert",
            )
    return time.perf_counter() - t0


def _queries_of(events, limit=30):
    sample = [
        (event.description, event.source)
        for event in events
        if event.kind == "query"
    ]
    return sample[:limit]


def run_benchmark() -> dict:
    events = _events()
    cpu_count = os.cpu_count() or 1
    results: dict = {
        "workload": {
            "profile": "center",
            "scenario": SCENARIO,
            "events": len(events),
            "queries": sum(1 for e in events if e.kind == "query"),
            "cpu_count": cpu_count,
        },
    }

    # -- closed-loop throughput by shard count + bit-identity gate -------
    sweep = []
    identical = True
    for n_shards in SHARD_COUNTS:
        # Always include a genuinely sharded width (the merge path is
        # what the bit-identity gate exists for); skip only widths that
        # would just time-share a saturated box.
        if n_shards > max(2, cpu_count):
            continue
        with Router(n_shards, query_timeout_s=30.0) as router:
            elapsed = _drive_closed_loop(router, events)
            verdict = verify_equivalence(router, _queries_of(events))
        identical = identical and verdict.ok
        sweep.append(
            {
                "shards": n_shards,
                "elapsed_s": round(elapsed, 3),
                "events_per_s": round(len(events) / elapsed, 1),
                "bit_identical": verdict.ok,
                "queries_checked": verdict.checked,
            }
        )
    results["throughput_by_shards"] = sweep
    base_eps = sweep[0]["events_per_s"]
    widest = sweep[-1]
    results["scaling"] = {
        "base_shards": sweep[0]["shards"],
        "widest_shards": widest["shards"],
        "ratio": round(widest["events_per_s"] / base_eps, 3),
        "floor": SCALING_FLOOR,
        "gated": cpu_count >= 4 and len(sweep) > 1,
    }

    # -- open-loop tail latency at the target rate -----------------------
    with Router(2, query_timeout_s=30.0) as router:
        report = run_open_loop(router, events, rate_eps=TARGET_EPS)
        latencies = sorted(report.latencies_s())
        p99_ms = latencies[min(int(0.99 * len(latencies)), len(latencies) - 1)] * 1e3
        results["tail_latency"] = {
            "target_eps": TARGET_EPS,
            "achieved_eps": round(report.achieved_eps, 1),
            "p50_ms": round(latencies[len(latencies) // 2] * 1e3, 3),
            "p99_ms": round(p99_ms, 3),
            "max_ms": round(latencies[-1] * 1e3, 3),
            "bar_ms": TAIL_P99_BAR_MS,
            "periods": report.period_rows(),
        }

    # -- injected kill: recovery time + zero degraded after recovery -----
    kill_at = max(len(events) // 3, 1)
    fault = parse_fault(f"kill:1@e={kill_at}")
    router = Router(
        2, query_timeout_s=30.0, heartbeat_deadline_s=0.5,
        retry=RetryPolicy(attempts=3, timeout_s=0.5),
    )
    try:
        report = run_open_loop(
            router, events, rate_eps=TARGET_EPS, faults=[fault]
        )
        recovered_at = max(
            (at - report.start_monotonic
             for _, event, at in router.supervisor.events if event == "live"),
            default=0.0,
        )
        healthy = router.stats.time_to_healthy_hist
        summary = healthy.summary() if healthy.count else {}
        verdict = verify_equivalence(router, _queries_of(events))
        results["recovery"] = {
            "fault": fault.spec(),
            "fired": fault.fired,
            "shard_deaths": router.stats.shard_deaths,
            "respawns": router.stats.respawns,
            "failovers": router.stats.failovers,
            "time_to_healthy_ms": {
                key: round(value * 1e3, 3) for key, value in summary.items()
            },
            "recovered_at_s": round(recovered_at, 3),
            "degraded_after_recovery": report.degraded_after(recovered_at),
            "degraded_total": report.degraded_queries,
            "post_recovery_bit_identical": verdict.ok,
            "bar_s": RECOVERY_BAR_S,
        }
    finally:
        router.close()

    results["bit_identical_ok"] = (
        identical and results["recovery"]["post_recovery_bit_identical"]
    )
    results["zero_degraded_after_recovery_ok"] = (
        results["recovery"]["degraded_after_recovery"] == 0
        and results["recovery"]["respawns"] >= 1
    )
    results["scaling_ok"] = (
        not results["scaling"]["gated"]
        or results["scaling"]["ratio"] >= SCALING_FLOOR
    )
    results["tail_ok"] = results["tail_latency"]["p99_ms"] <= TAIL_P99_BAR_MS
    results["recovery_ok"] = (
        not results["recovery"]["fired"]
        or results["recovery"]["time_to_healthy_ms"].get("max", 0.0)
        <= RECOVERY_BAR_S * 1e3
    )
    return results


def format_report(results: dict) -> str:
    workload = results["workload"]
    lines = [
        "sharded serving tier: throughput, tail latency, recovery "
        f"(center workload, {workload['scenario']})",
        "",
        f"{workload['events']} events ({workload['queries']} queries), "
        f"{workload['cpu_count']} cpu(s)",
        "",
    ]
    for entry in results["throughput_by_shards"]:
        lines.append(
            f"[shards={entry['shards']}] {entry['events_per_s']:.0f} ev/s "
            f"({entry['elapsed_s']:.2f} s), bit-identical: "
            f"{entry['bit_identical']} ({entry['queries_checked']} checked)"
        )
    scaling = results["scaling"]
    lines.append(
        f"scaling {scaling['widest_shards']} vs {scaling['base_shards']} "
        f"shards: {scaling['ratio']:.2f}x (floor {scaling['floor']:.2f}x, "
        f"{'gated' if scaling['gated'] else 'informational'})"
    )
    tail = results["tail_latency"]
    lines.append("")
    lines.append(
        f"open loop @ {tail['target_eps']:.0f} ev/s (achieved "
        f"{tail['achieved_eps']:.0f}): p50 {tail['p50_ms']:.1f} ms, "
        f"p99 {tail['p99_ms']:.1f} ms, max {tail['max_ms']:.1f} ms "
        f"(bar <= {tail['bar_ms']:.0f} ms)"
    )
    recovery = results["recovery"]
    healthy = recovery["time_to_healthy_ms"]
    lines.append("")
    lines.append(
        f"injected {recovery['fault']}: {recovery['shard_deaths']} death(s), "
        f"{recovery['respawns']} respawn(s), {recovery['failovers']} "
        f"failover(s)"
    )
    if healthy:
        lines.append(
            f"time-to-healthy: mean {healthy.get('mean', 0.0):.1f} ms, "
            f"max {healthy.get('max', 0.0):.1f} ms "
            f"(bar <= {recovery['bar_s'] * 1e3:.0f} ms)"
        )
    lines.append(
        f"degraded queries after recovery: "
        f"{recovery['degraded_after_recovery']} "
        f"({recovery['degraded_total']} total during outage)"
    )
    lines.append("")
    lines.append(f"merged results bit-identical: {results['bit_identical_ok']}")
    lines.append(
        "zero degraded after recovery: "
        f"{results['zero_degraded_after_recovery_ok']}"
    )
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_perf_serving():
    """Pytest entry point: sweep, load, kill; assert the gates."""
    from conftest import report

    results = run_benchmark()
    report("perf_serving", format_report(results))
    write_artifact(results)
    assert results["bit_identical_ok"]
    assert results["zero_degraded_after_recovery_ok"], results["recovery"]
    assert results["scaling_ok"], results["scaling"]
    assert results["tail_ok"], results["tail_latency"]
    assert results["recovery_ok"], results["recovery"]


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    ok = (
        results["bit_identical_ok"]
        and results["zero_degraded_after_recovery_ok"]
        and results["scaling_ok"]
        and results["tail_ok"]
        and results["recovery_ok"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
