"""E4 — Meta-blocking matrix (per the parallel meta-blocking paper [4]).

Crosses the five weighting schemes with the four canonical pruning
algorithms on post-processed center blocks.  Expected shape: node-centric
pruning (WNP/CNP) retains recall far better than edge-centric pruning at
comparable comparison counts; CEP/WEP achieve the highest PQ; ARCS and
ECBS are the strongest weighting signals.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.api import Pipeline, PipelineSpec, registry
from repro.evaluation.metrics import evaluate_comparisons
from repro.evaluation.reporting import format_table

#: every registered weighting scheme x the four canonical pruners
WEIGHTING = tuple(registry.names("weighting"))
PRUNING = ("WEP", "CEP", "WNP", "CNP")
BASE_SPEC = PipelineSpec()


@pytest.fixture(scope="module")
def processed_blocks(center):
    return Pipeline(BASE_SPEC).block(center.kb1, center.kb2)[1]


@pytest.fixture(scope="module")
def periphery_blocks(periphery):
    return Pipeline(BASE_SPEC).block(periphery.kb1, periphery.kb2)[1]


def matrix_rows(dataset, blocks, workload: str) -> list[dict[str, str]]:
    sizes = (len(dataset.kb1), len(dataset.kb2))
    rows = []
    for scheme_name in WEIGHTING:
        for pruner_name in PRUNING:
            cell = Pipeline(
                BASE_SPEC.with_components(weighting=scheme_name, pruning=pruner_name)
            )
            edges = cell.meta_block(blocks)
            quality = evaluate_comparisons(
                {e.pair for e in edges}, dataset.gold, *sizes
            )
            row = {
                "workload": workload,
                "weighting": scheme_name,
                "pruning": pruner_name,
            }
            row.update(quality.as_row())
            row["retained"] = str(len(edges))
            rows.append(row)
    return rows


def run_experiment(center, processed_blocks) -> list[dict[str, str]]:
    return matrix_rows(center, processed_blocks, "center")


def test_e4_metablocking_matrix(
    benchmark, center, periphery, processed_blocks, periphery_blocks
):
    rows = run_experiment(center, processed_blocks)
    rows += matrix_rows(periphery, periphery_blocks, "periphery")

    def arcs_cnp():
        return Pipeline(BASE_SPEC).meta_block(processed_blocks)

    benchmark(arcs_cnp)
    report(
        "e4_metablocking",
        format_table(
            rows,
            title="E4  Meta-blocking: weighting x pruning",
            first_column="workload",
        ),
    )
    # Recall sensitivity appears at the periphery: node-centric pruning
    # preserves at least as much PC as edge-centric WEP for every scheme.
    periphery_rows = {
        (r["weighting"], r["pruning"]): r for r in rows if r["workload"] == "periphery"
    }
    for scheme_name in WEIGHTING:
        assert float(periphery_rows[(scheme_name, "CNP")]["PC"]) >= float(
            periphery_rows[(scheme_name, "WEP")]["PC"]
        ) - 0.02
    by_key = {
        (r["weighting"], r["pruning"]): r for r in rows if r["workload"] == "center"
    }
    for scheme_name in WEIGHTING:
        # Every configuration prunes the comparison space.
        for pruner_name in PRUNING:
            assert (
                int(by_key[(scheme_name, pruner_name)]["comparisons"])
                <= len(processed_blocks.distinct_comparisons())
            )
        # Node-centric pruning keeps recall at or above edge-centric CEP.
        assert float(by_key[(scheme_name, "CNP")]["PC"]) >= float(
            by_key[(scheme_name, "CEP")]["PC"]
        ) - 0.05
    # Every pruned set improves PQ over the unpruned blocks.
    baseline_pq = len(center.gold.matches) / len(
        processed_blocks.distinct_comparisons()
    )
    for row in rows:
        assert float(row["PQ"]) >= baseline_pq * 0.9
