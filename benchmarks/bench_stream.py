"""Perf — streaming ingest + query-time resolution on the center workload.

Replays the three arrival/query scenarios (uniform, bursty, skewed)
against :class:`repro.stream.StreamResolver` on the center synthetic
workload (300 entities, overlap 0.7 — the experiment-scale fixture),
measuring throughput and per-event latency.  Two properties are gated:

* **flatness** — the median per-insert latency of the last stream
  quartile must stay within ``FLATNESS_BAR``× the first quartile's:
  inserts are amortized O(delta), not O(corpus);
* **equivalence** — after the replay, the streamed state's processed
  blocks and ARCS/CNP pruned edges must be bit-identical to the batch
  pipeline over the same corpus.

A third section measures the **incremental processed view**: per query,
the amortized cost of serving purge/filter survivors from
``IncrementalProcessedView`` (serve + its share of periodic exact
reconciliation) against recomputing ``purge + filter`` from a fresh
snapshot — the pre-view query-time path.  Gated: the view's amortized
per-query cost stays flat across stream quartiles
(``VIEW_FLATNESS_BAR``) and cheaper in total than the recompute
baseline, whose cost grows with stream length; the reconciled view
must be bit-identical to ``snapshot_processed()``.

Results are printed, persisted under ``benchmarks/output/`` and written
as a ``BENCH_stream.json`` artifact at the repository root (CI uploads
it per run).  Run either way::

    pytest benchmarks/bench_stream.py -s
    PYTHONPATH=src python benchmarks/bench_stream.py
"""

from __future__ import annotations

import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_stream.json")

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets import SyntheticConfig, synthesize_pair
from repro.api import registry
from repro.metablocking import BlockingGraph
from repro.stream import StreamResolver, WorkloadDriver
from repro.stream.workload import SCENARIOS

#: median last-quartile insert latency may exceed the first quartile's by
#: at most this factor (generous: shared runners are noisy, and block
#: sizes legitimately grow a little with the corpus)
FLATNESS_BAR = 10.0
#: the view's amortized per-query processed cost (serve + reconcile
#: share) may drift across stream quartiles by at most this factor
VIEW_FLATNESS_BAR = 2.0
#: the recompute baseline must grow at least this much across quartiles
#: (it is O(corpus) per query; ~4x is typical at this stream length)
RECOMPUTE_GROWTH_MIN = 1.2
CENTER = SyntheticConfig(entities=300, overlap=0.7, seed=42)


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def _quartile_medians(values: list[float]) -> list[float]:
    if not values:
        return [0.0, 0.0, 0.0, 0.0]
    quarter = max(1, len(values) // 4)
    return [
        _median(values[start : start + quarter])
        for start in range(0, 4 * quarter, quarter)
    ]


def _check_equivalence(resolver: StreamResolver) -> bool:
    """Streamed state vs batch pipeline on the same corpus (bit-exact)."""
    kb1, kb2 = resolver.store.collections
    raw = TokenBlocking().build(kb1, kb2)
    processed = BlockFiltering().process(BlockPurging().process(raw))
    snapshot = resolver.index.snapshot_processed()
    if snapshot.keys() != processed.keys():
        return False
    for key in processed.keys():
        ours, theirs = snapshot[key], processed[key]
        if ours.entities1 != theirs.entities1 or ours.entities2 != theirs.entities2:
            return False
    batch_edges = registry.create("pruner", "CNP").prune(
        BlockingGraph(processed, registry.create("weighting", "ARCS"))
    )
    return resolver.pruned_edges("ARCS", "CNP") == batch_edges


def _quartile_means(values: list[float]) -> list[float]:
    if not values:
        return [0.0, 0.0, 0.0, 0.0]
    quarter = max(1, len(values) // 4)
    out = []
    for start in range(0, 4 * quarter, quarter):
        chunk = values[start : start + quarter]
        out.append(sum(chunk) / len(chunk) if chunk else 0.0)
    return out


def run_processed_view_benchmark() -> dict:
    """Amortized processed-view query cost vs per-query recompute.

    Replays the uniform arrival/query sequence against two independent
    stream states: one maintaining an ``IncrementalProcessedView``
    (with an attached ``SurvivorPairTable``, so the measured cost
    includes survivor-stat upkeep), one recomputing purge + filter from
    a fresh snapshot per query — the pre-view serving path.  Each
    reconciliation's cost is spread over the queries it covered
    (amortization), then per-query costs are summarized by stream
    quartile.
    """
    import time

    from repro.stream import (
        IncrementalBlockIndex,
        IncrementalProcessedView,
        StreamingEntityStore,
        SurvivorPairTable,
    )

    dataset = synthesize_pair(CENTER)
    events = SCENARIOS["uniform"](dataset.kb1, dataset.kb2)

    store_v = StreamingEntityStore(sources=(dataset.kb1.name, dataset.kb2.name))
    index_v = IncrementalBlockIndex(store_v)
    view = IncrementalProcessedView(index_v)
    SurvivorPairTable(view)

    store_b = StreamingEntityStore(sources=(dataset.kb1.name, dataset.kb2.name))
    index_b = IncrementalBlockIndex(store_b)

    serve_costs: list[float] = []
    recompute_costs: list[float] = []
    #: (query ordinal at reconcile time, reconcile seconds)
    reconcile_events: list[tuple[int, float]] = []
    for event in events:
        if event.kind == "insert":
            store_v.insert(event.description, event.source)
            store_b.insert(event.description.copy(), event.source)
            continue
        target_id = store_v.interner.id_of(event.description.uri)
        t0 = time.perf_counter()
        if view.due:
            view.reconcile()
            reconcile_events.append(
                (len(serve_costs), time.perf_counter() - t0)
            )
            t0 = time.perf_counter()
        view.partners_of(target_id)
        serve_costs.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        BlockFiltering().process(BlockPurging().process(index_b.snapshot()))
        recompute_costs.append(time.perf_counter() - t0)

    # Amortize: spread each reconcile over the queries since the
    # previous one (the staleness window it repaired).
    amortized = list(serve_costs)
    previous = 0
    for ordinal, cost in reconcile_events:
        if ordinal > previous:
            share = cost / (ordinal - previous)
            for i in range(previous, ordinal):
                amortized[i] += share
            previous = ordinal
        elif amortized:
            # No queries since the last reconcile: charge the adjacent one.
            amortized[min(ordinal, len(amortized) - 1)] += cost

    view_quartiles = _quartile_means(amortized)
    recompute_quartiles = _quartile_means(recompute_costs)
    view_flatness = (
        view_quartiles[-1] / view_quartiles[0] if view_quartiles[0] > 0 else 0.0
    )
    recompute_growth = (
        recompute_quartiles[-1] / recompute_quartiles[0]
        if recompute_quartiles[0] > 0
        else 0.0
    )

    # Equivalence: the reconciled view is bit-identical to the exact
    # processed snapshot (same keys, members, cardinalities, id views).
    view.reconcile()
    exact = index_v.snapshot_processed()
    rebuilt = view._build_collection()
    equivalence_ok = rebuilt.keys() == exact.keys()
    if equivalence_ok:
        for key in exact.keys():
            ours, theirs = rebuilt[key], exact[key]
            if (
                ours.entities1 != theirs.entities1
                or ours.entities2 != theirs.entities2
                or ours.cardinality() != theirs.cardinality()
            ):
                equivalence_ok = False
                break
    equivalence_ok = equivalence_ok and rebuilt.id_blocks() == exact.id_blocks()

    return {
        "queries": len(serve_costs),
        "reconciles": len(reconcile_events),
        "reconcile_total_ms": round(
            sum(cost for _, cost in reconcile_events) * 1e3, 4
        ),
        "amortized_query_cost_us_by_quartile": [
            round(q * 1e6, 2) for q in view_quartiles
        ],
        "recompute_cost_us_by_quartile": [
            round(q * 1e6, 2) for q in recompute_quartiles
        ],
        "view_total_ms": round(
            (sum(serve_costs) + sum(c for _, c in reconcile_events)) * 1e3, 4
        ),
        "recompute_total_ms": round(sum(recompute_costs) * 1e3, 4),
        "view_flatness_ratio": round(view_flatness, 2),
        "view_flatness_bar": VIEW_FLATNESS_BAR,
        "recompute_growth_ratio": round(recompute_growth, 2),
        "recompute_growth_min": RECOMPUTE_GROWTH_MIN,
        "equivalence_ok": equivalence_ok,
    }


def run_benchmark() -> dict:
    dataset = synthesize_pair(CENTER)
    results: dict = {
        "workload": {
            "profile": "center",
            "entities": len(dataset.kb1) + len(dataset.kb2),
        },
        "scenarios": {},
    }
    for scenario_name, make_events in sorted(SCENARIOS.items()):
        resolver = StreamResolver(clean_clean=True)
        resolver.store.collections[0].name = dataset.kb1.name
        resolver.store.collections[1].name = dataset.kb2.name
        events = make_events(dataset.kb1, dataset.kb2)
        stats = WorkloadDriver(resolver).run(events, scenario=scenario_name)
        insert = stats.latency_summary("insert")
        query = stats.latency_summary("query")
        quartiles = _quartile_medians(stats.insert_latencies_s)
        entry = {
            "events": stats.events,
            "inserts": stats.inserts,
            "queries": stats.queries,
            "matches_found": stats.matches_found,
            "comparisons": stats.comparisons,
            "throughput_events_per_s": round(stats.throughput_eps, 1),
            "insert_latency_ms": {k: round(v * 1e3, 4) for k, v in insert.items()},
            "query_latency_ms": {k: round(v * 1e3, 4) for k, v in query.items()},
            "insert_median_ms_by_quartile": [round(q * 1e3, 4) for q in quartiles],
            "flatness_ratio": (
                round(quartiles[-1] / quartiles[0], 2) if quartiles[0] > 0 else 0.0
            ),
        }
        if scenario_name == "uniform":
            entry["equivalence_ok"] = _check_equivalence(resolver)
        results["scenarios"][scenario_name] = entry
    uniform = results["scenarios"]["uniform"]
    results["flatness_ratio"] = uniform["flatness_ratio"]
    results["flatness_bar"] = FLATNESS_BAR
    results["equivalence_ok"] = uniform["equivalence_ok"]
    results["processed_view"] = run_processed_view_benchmark()
    return results


def processed_view_ok(results: dict) -> bool:
    """All processed-view gates: flat, cheaper than recompute, exact."""
    section = results["processed_view"]
    return (
        section["equivalence_ok"]
        and section["view_flatness_ratio"] <= VIEW_FLATNESS_BAR
        and section["recompute_growth_ratio"] >= RECOMPUTE_GROWTH_MIN
        and section["view_total_ms"] < section["recompute_total_ms"]
    )


def format_report(results: dict) -> str:
    lines = ["streaming ER: ingest + query replay (center workload)", ""]
    for name, entry in results["scenarios"].items():
        lines.append(
            f"[{name}] {entry['inserts']} inserts + {entry['queries']} queries   "
            f"{entry['throughput_events_per_s']:.0f} events/s   "
            f"{entry['matches_found']} matches"
        )
        insert = entry["insert_latency_ms"]
        query = entry["query_latency_ms"]
        lines.append(
            f"  insert median-by-quartile (ms): "
            + " ".join(f"{q:8.4f}" for q in entry["insert_median_ms_by_quartile"])
            + f"   (ratio {entry['flatness_ratio']:.2f}x)"
        )
        lines.append(
            f"  insert mean {insert['mean']:.4f} ms  p95 {insert['p95']:.4f} ms   "
            f"query mean {query['mean']:.4f} ms  p95 {query['p95']:.4f} ms"
        )
        lines.append("")
    lines.append(
        f"flatness (last/first quartile, bar <= {results['flatness_bar']:.0f}x): "
        f"{results['flatness_ratio']:.2f}x"
    )
    lines.append(f"stream == batch equivalence: {results['equivalence_ok']}")
    view = results["processed_view"]
    lines.append("")
    lines.append(
        f"[processed view] {view['queries']} queries, "
        f"{view['reconciles']} reconciles "
        f"({view['reconcile_total_ms']:.2f} ms total)"
    )
    lines.append(
        "  amortized view cost by quartile (us):  "
        + " ".join(f"{q:9.2f}" for q in view["amortized_query_cost_us_by_quartile"])
        + f"   (ratio {view['view_flatness_ratio']:.2f}x, "
        f"bar <= {view['view_flatness_bar']:.1f}x)"
    )
    lines.append(
        "  recompute baseline by quartile (us):   "
        + " ".join(f"{q:9.2f}" for q in view["recompute_cost_us_by_quartile"])
        + f"   (grows {view['recompute_growth_ratio']:.2f}x)"
    )
    lines.append(
        f"  totals: view {view['view_total_ms']:.2f} ms vs "
        f"recompute {view['recompute_total_ms']:.2f} ms"
    )
    lines.append(
        f"  reconciled view == snapshot_processed: {view['equivalence_ok']}"
    )
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_perf_stream():
    """Pytest entry point: replay, assert flatness and equivalence."""
    from conftest import report

    results = run_benchmark()
    report("perf_stream", format_report(results))
    write_artifact(results)
    assert results["equivalence_ok"]
    assert results["flatness_ratio"] <= FLATNESS_BAR
    assert processed_view_ok(results), results["processed_view"]


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    ok = (
        results["equivalence_ok"]
        and results["flatness_ratio"] <= FLATNESS_BAR
        and processed_view_ok(results)
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
