"""Perf — streaming ingest + query-time resolution on the center workload.

Replays the three arrival/query scenarios (uniform, bursty, skewed)
against :class:`repro.stream.StreamResolver` on the center synthetic
workload (300 entities, overlap 0.7 — the experiment-scale fixture),
measuring throughput and per-event latency.  Two properties are gated:

* **flatness** — the median per-insert latency of the last stream
  quartile must stay within ``FLATNESS_BAR``× the first quartile's:
  inserts are amortized O(delta), not O(corpus);
* **equivalence** — after the replay, the streamed state's processed
  blocks and ARCS/CNP pruned edges must be bit-identical to the batch
  pipeline over the same corpus.

Results are printed, persisted under ``benchmarks/output/`` and written
as a ``BENCH_stream.json`` artifact at the repository root (CI uploads
it per run).  Run either way::

    pytest benchmarks/bench_stream.py -s
    PYTHONPATH=src python benchmarks/bench_stream.py
"""

from __future__ import annotations

import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_stream.json")

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets import SyntheticConfig, synthesize_pair
from repro.metablocking import BlockingGraph, make_pruner, make_scheme
from repro.stream import StreamResolver, WorkloadDriver
from repro.stream.workload import SCENARIOS

#: median last-quartile insert latency may exceed the first quartile's by
#: at most this factor (generous: shared runners are noisy, and block
#: sizes legitimately grow a little with the corpus)
FLATNESS_BAR = 10.0
CENTER = SyntheticConfig(entities=300, overlap=0.7, seed=42)


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def _quartile_medians(values: list[float]) -> list[float]:
    if not values:
        return [0.0, 0.0, 0.0, 0.0]
    quarter = max(1, len(values) // 4)
    return [
        _median(values[start : start + quarter])
        for start in range(0, 4 * quarter, quarter)
    ]


def _check_equivalence(resolver: StreamResolver) -> bool:
    """Streamed state vs batch pipeline on the same corpus (bit-exact)."""
    kb1, kb2 = resolver.store.collections
    raw = TokenBlocking().build(kb1, kb2)
    processed = BlockFiltering().process(BlockPurging().process(raw))
    snapshot = resolver.index.snapshot_processed()
    if snapshot.keys() != processed.keys():
        return False
    for key in processed.keys():
        ours, theirs = snapshot[key], processed[key]
        if ours.entities1 != theirs.entities1 or ours.entities2 != theirs.entities2:
            return False
    batch_edges = make_pruner("CNP").prune(BlockingGraph(processed, make_scheme("ARCS")))
    return resolver.pruned_edges("ARCS", "CNP") == batch_edges


def run_benchmark() -> dict:
    dataset = synthesize_pair(CENTER)
    results: dict = {
        "workload": {
            "profile": "center",
            "entities": len(dataset.kb1) + len(dataset.kb2),
        },
        "scenarios": {},
    }
    for scenario_name, make_events in sorted(SCENARIOS.items()):
        resolver = StreamResolver(clean_clean=True)
        resolver.store.collections[0].name = dataset.kb1.name
        resolver.store.collections[1].name = dataset.kb2.name
        events = make_events(dataset.kb1, dataset.kb2)
        stats = WorkloadDriver(resolver).run(events, scenario=scenario_name)
        insert = stats.latency_summary("insert")
        query = stats.latency_summary("query")
        quartiles = _quartile_medians(stats.insert_latencies_s)
        entry = {
            "events": stats.events,
            "inserts": stats.inserts,
            "queries": stats.queries,
            "matches_found": stats.matches_found,
            "comparisons": stats.comparisons,
            "throughput_events_per_s": round(stats.throughput_eps, 1),
            "insert_latency_ms": {k: round(v * 1e3, 4) for k, v in insert.items()},
            "query_latency_ms": {k: round(v * 1e3, 4) for k, v in query.items()},
            "insert_median_ms_by_quartile": [round(q * 1e3, 4) for q in quartiles],
            "flatness_ratio": (
                round(quartiles[-1] / quartiles[0], 2) if quartiles[0] > 0 else 0.0
            ),
        }
        if scenario_name == "uniform":
            entry["equivalence_ok"] = _check_equivalence(resolver)
        results["scenarios"][scenario_name] = entry
    uniform = results["scenarios"]["uniform"]
    results["flatness_ratio"] = uniform["flatness_ratio"]
    results["flatness_bar"] = FLATNESS_BAR
    results["equivalence_ok"] = uniform["equivalence_ok"]
    return results


def format_report(results: dict) -> str:
    lines = ["streaming ER: ingest + query replay (center workload)", ""]
    for name, entry in results["scenarios"].items():
        lines.append(
            f"[{name}] {entry['inserts']} inserts + {entry['queries']} queries   "
            f"{entry['throughput_events_per_s']:.0f} events/s   "
            f"{entry['matches_found']} matches"
        )
        insert = entry["insert_latency_ms"]
        query = entry["query_latency_ms"]
        lines.append(
            f"  insert median-by-quartile (ms): "
            + " ".join(f"{q:8.4f}" for q in entry["insert_median_ms_by_quartile"])
            + f"   (ratio {entry['flatness_ratio']:.2f}x)"
        )
        lines.append(
            f"  insert mean {insert['mean']:.4f} ms  p95 {insert['p95']:.4f} ms   "
            f"query mean {query['mean']:.4f} ms  p95 {query['p95']:.4f} ms"
        )
        lines.append("")
    lines.append(
        f"flatness (last/first quartile, bar <= {results['flatness_bar']:.0f}x): "
        f"{results['flatness_ratio']:.2f}x"
    )
    lines.append(f"stream == batch equivalence: {results['equivalence_ok']}")
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_perf_stream():
    """Pytest entry point: replay, assert flatness and equivalence."""
    from conftest import report

    results = run_benchmark()
    report("perf_stream", format_report(results))
    write_artifact(results)
    assert results["equivalence_ok"]
    assert results["flatness_ratio"] <= FLATNESS_BAR


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    ok = results["equivalence_ok"] and results["flatness_ratio"] <= FLATNESS_BAR
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
