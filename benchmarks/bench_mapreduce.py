"""Perf — MapReduce meta-blocking: formulations, executors, worker sweep.

Measures the parallel layer on the center synthetic workload:

* **formulation** — the int-ID record-batch formulation
  (:mod:`repro.mapreduce.parallel_metablocking_ids`) against the seed's
  string-tuple jobs, at one worker on the serial executor: wall clock
  and shuffle bytes.  Gated: the int-ID formulation must win both.
* **executor sweep** — the int-ID formulation at 1/2/4 workers on the
  ``multiprocessing`` executor, *measured* wall clock (pool warm), on a
  larger center workload so per-task compute dominates IPC.  The gate is
  **hard** whenever the process executor exists: 4-worker wall must beat
  1-worker wall (the shared-memory data plane makes multi-worker pay for
  itself even on one core — chunked sorts do less total work and nothing
  is pickled), per-worker shuffle bytes must strictly shrink as workers
  are added, and no ``repro_shm_*`` segment may survive the run.  The
  stronger ``SPEEDUP_BAR``× bar applies additionally when the machine
  actually has >= 4 CPUs.
* **equivalence** — parallel CNP edges must equal the sequential
  ``BlockingGraph`` pruning bit for bit (always gated).

Results are printed, persisted under ``benchmarks/output/`` and written
as a ``BENCH_mapreduce.json`` artifact at the repository root (CI uploads
it per run).  Run either way::

    pytest benchmarks/bench_mapreduce.py -s
    PYTHONPATH=src python benchmarks/bench_mapreduce.py
"""

from __future__ import annotations

import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_mapreduce.json")

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets import SyntheticConfig, synthesize_pair
from repro.mapreduce import (
    MapReduceEngine,
    ProcessExecutor,
    leaked_segments,
    parallel_metablocking,
    parallel_metablocking_ids,
)
from repro.api import registry
from repro.metablocking import BlockingGraph

#: required 4-worker measured speedup when >= 4 CPUs are available
SPEEDUP_BAR = 1.5
#: formulation comparison workload (the experiment-scale fixture)
CENTER = SyntheticConfig(entities=300, overlap=0.7, seed=42)
#: executor sweep workload (larger: per-task compute must dominate IPC)
CENTER_LARGE = SyntheticConfig(entities=2000, overlap=0.7, seed=42)
WORKER_SWEEP = (1, 2, 4)
#: best-of count — the hard 4w-vs-1w gate needs the noise floor below
#: the single-core win margin, so this errs high
REPEATS = 5


def _blocks(config: SyntheticConfig):
    dataset = synthesize_pair(config)
    raw = TokenBlocking().build(dataset.kb1, dataset.kb2)
    return BlockFiltering().process(BlockPurging().process(raw))


def _run(runner, engine, blocks, scheme_name: str, pruner_name: str):
    started = time.perf_counter()
    edges, metrics = runner(
        engine, blocks, registry.create("weighting", scheme_name), registry.create("pruner", pruner_name)
    )
    elapsed = time.perf_counter() - started
    return edges, metrics, elapsed


def _best_run(runner, engine, blocks, scheme_name: str, pruner_name: str):
    """Best-of-N wall clock (first call also warms engine pools/caches)."""
    best = None
    for _ in range(REPEATS):
        edges, metrics, elapsed = _run(runner, engine, blocks, scheme_name, pruner_name)
        if best is None or elapsed < best[2]:
            best = (edges, metrics, elapsed)
    return best


def run_benchmark() -> dict:
    results: dict = {
        "workloads": {
            "formulation": {"profile": "center", "entities": CENTER.entities * 2},
            "sweep": {"profile": "center", "entities": CENTER_LARGE.entities * 2},
        },
        "cpu_count": os.cpu_count() or 1,
        "speedup_bar": SPEEDUP_BAR,
    }

    # -- formulation comparison (1 worker, serial executor) ----------------
    blocks = _blocks(CENTER)
    formulation: dict = {}
    for name, runner in (
        ("string", parallel_metablocking),
        ("int", parallel_metablocking_ids),
    ):
        engine = MapReduceEngine(workers=1)
        edges, metrics, elapsed = _best_run(runner, engine, blocks, "ARCS", "CNP")
        formulation[name] = {
            "wall_ms": round(elapsed * 1e3, 2),
            "shuffle_bytes": sum(m.shuffle_bytes for m in metrics),
            "shuffle_records": sum(m.shuffle_records for m in metrics),
            "edges": len(edges),
        }
    results["formulation"] = formulation
    results["int_beats_string_wall"] = (
        formulation["int"]["wall_ms"] < formulation["string"]["wall_ms"]
    )
    results["int_beats_string_shuffle"] = (
        formulation["int"]["shuffle_bytes"] < formulation["string"]["shuffle_bytes"]
    )

    # -- equivalence (always gated) ----------------------------------------
    sequential = registry.create("pruner", "CNP").prune(
        BlockingGraph(blocks, registry.create("weighting", "ARCS"))
    )
    with MapReduceEngine(workers=3, executor="serial") as engine:
        parallel, _, _ = _run(
            parallel_metablocking_ids, engine, blocks, "ARCS", "CNP"
        )
    results["equivalence_ok"] = [
        (e.pair, e.weight) for e in sequential
    ] == [(e.pair, e.weight) for e in parallel]

    # -- multiprocessing worker sweep --------------------------------------
    sweep: dict = {}
    process_available = ProcessExecutor.available()
    results["process_executor_available"] = process_available
    if process_available:
        large = _blocks(CENTER_LARGE)
        for workers in WORKER_SWEEP:
            with MapReduceEngine(workers=workers, executor="process") as engine:
                edges, metrics, elapsed = _best_run(
                    parallel_metablocking_ids, engine, large, "ARCS", "CNP"
                )
            sweep[str(workers)] = {
                "wall_ms": round(elapsed * 1e3, 2),
                "shuffle_bytes": sum(m.shuffle_bytes for m in metrics),
                "shuffle_bytes_per_worker": sum(
                    m.shuffle_bytes_per_worker for m in metrics
                ),
                "edges": len(edges),
            }
        results["measured_speedup_4w"] = round(
            sweep["1"]["wall_ms"] / sweep["4"]["wall_ms"], 2
        )
        results["sweep_4w_beats_1w"] = (
            sweep["4"]["wall_ms"] < sweep["1"]["wall_ms"]
        )
        per_worker = [
            sweep[str(workers)]["shuffle_bytes_per_worker"]
            for workers in WORKER_SWEEP
        ]
        results["shuffle_bytes_per_worker_decreasing"] = all(
            later < earlier for earlier, later in zip(per_worker, per_worker[1:])
        )
    results["worker_sweep"] = sweep
    # The gate is hard whenever the sweep can run at all: the
    # shared-memory data plane must make 4 workers beat 1 even on a
    # single core (less total sort work, zero pickled payload) — the
    # old >= 4 CPU condition let the regression ship silently on small
    # runners.  The 1.5x speedup bar additionally applies with >= 4 CPUs.
    results["speedup_gated"] = process_available
    results["leaked_shm_segments"] = leaked_segments()
    return results


def format_report(results: dict) -> str:
    lines = ["MapReduce meta-blocking: formulations + executor sweep", ""]
    formulation = results["formulation"]
    for name in ("string", "int"):
        entry = formulation[name]
        lines.append(
            f"[{name:>6}] 1-worker wall {entry['wall_ms']:8.1f} ms   "
            f"shuffle {entry['shuffle_bytes'] / 1024:8.0f} KiB "
            f"({entry['shuffle_records']} records)   {entry['edges']} edges"
        )
    lines.append(
        f"int-ID wins: wall={results['int_beats_string_wall']} "
        f"shuffle={results['int_beats_string_shuffle']}"
    )
    lines.append("")
    if results["worker_sweep"]:
        for workers, entry in results["worker_sweep"].items():
            lines.append(
                f"[process x{workers}] wall {entry['wall_ms']:8.1f} ms   "
                f"shuffle/worker {entry['shuffle_bytes_per_worker'] / 1024:7.0f} KiB   "
                f"{entry['edges']} edges"
            )
        lines.append(
            f"measured 4-worker speedup: {results['measured_speedup_4w']:.2f}x "
            f"(4w beats 1w: {results['sweep_4w_beats_1w']}, "
            f"per-worker shuffle decreasing: "
            f"{results['shuffle_bytes_per_worker_decreasing']}, "
            f"bar {results['speedup_bar']:.1f}x, gated={results['speedup_gated']}, "
            f"{results['cpu_count']} cpu(s))"
        )
    else:
        lines.append("process executor unavailable: sweep skipped")
    lines.append(f"parallel == sequential equivalence: {results['equivalence_ok']}")
    lines.append(f"leaked shm segments: {results['leaked_shm_segments'] or 'none'}")
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _passes(results: dict) -> bool:
    ok = (
        results["equivalence_ok"]
        and results["int_beats_string_wall"]
        and results["int_beats_string_shuffle"]
        and not results["leaked_shm_segments"]
    )
    if results["speedup_gated"]:
        ok = (
            ok
            and results["sweep_4w_beats_1w"]
            and results["shuffle_bytes_per_worker_decreasing"]
        )
        if results["cpu_count"] >= 4:
            ok = ok and results["measured_speedup_4w"] >= SPEEDUP_BAR
    return ok


def test_perf_mapreduce():
    """Pytest entry point: run, assert the gates, write the artifact."""
    from conftest import report

    results = run_benchmark()
    report("perf_mapreduce", format_report(results))
    write_artifact(results)
    assert results["equivalence_ok"]
    assert results["int_beats_string_wall"]
    assert results["int_beats_string_shuffle"]
    assert results["leaked_shm_segments"] == []
    if results["speedup_gated"]:
        assert results["sweep_4w_beats_1w"], (
            "multi-worker regression: 4-worker wall must beat 1-worker "
            f"({results['worker_sweep']})"
        )
        assert results["shuffle_bytes_per_worker_decreasing"], (
            "per-worker shuffle bytes must strictly shrink with workers "
            f"({results['worker_sweep']})"
        )
        if results["cpu_count"] >= 4:
            assert results["measured_speedup_4w"] >= SPEEDUP_BAR


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    return 0 if _passes(results) else 1


if __name__ == "__main__":
    sys.exit(main())
