"""E6 — Benefit-model figure: benefit@budget per quality dimension.

MinoanER's departure from [1]: scheduling can target attribute
completeness, entity coverage or relationship completeness instead of raw
pair quantity.  The workload is the **dirty** one — entities carry up to
three duplicate descriptions, so the dimensions genuinely diverge: a
cluster of three descriptions offers three resolvable pairs (good for
quantity) but covers only one real-world entity (bad for coverage).

For each scheduler (one per benefit model) the experiment measures, at a
tight budget, all four quality dimensions of the produced resolution.
Shape to check: each quality-aware scheduler is the best (or tied-best)
strategy on its own targeted dimension; the quantity scheduler matches
[1]'s behaviour of milking dense duplicate clusters.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.api import registry
from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER, ResolutionContext
from repro.core.pipeline import MinoanER
from repro.core.updater import NeighborEvidencePropagator
from repro.evaluation.reporting import format_table
from repro.matching.matcher import OracleMatcher

BUDGET = 120


@pytest.fixture(scope="module")
def setup(dirty):
    collection, gold = dirty
    platform = MinoanER()
    _, processed = platform.block(collection)
    edges = platform.meta_block(processed)
    matcher = OracleMatcher(gold.matches)
    return collection, gold, edges, matcher


def measure_dimensions(result, collection, gold) -> dict[str, float]:
    """The four quality dimensions of one resolution outcome."""
    matched = result.matched_pairs()
    cluster_index = gold.cluster_index()

    quantity = float(len(matched))

    covered_clusters = set()
    for left, right in matched:
        cluster = cluster_index.get(left)
        if cluster is not None and cluster == cluster_index.get(right):
            covered_clusters.add(cluster)

    context = ResolutionContext([collection])
    new_evidence = 0
    for left, right in matched:
        da, db = context.description(left), context.description(right)
        if da is None or db is None:
            continue
        new_evidence += len(set(da.pairs()) ^ set(db.pairs()))

    graphs_done = sum(
        1 for graph_ids in gold.entity_graphs if graph_ids <= covered_clusters
    )
    return {
        "quantity": quantity,
        "entity-coverage": float(len(covered_clusters)),
        "attribute-completeness": float(new_evidence),
        "relationship-completeness": float(graphs_done),
    }


def run_all(setup):
    collection, gold, edges, matcher = setup
    outcomes = {}
    for name in registry.names("benefit"):
        engine = ProgressiveER(
            matcher=matcher,
            budget=CostBudget(BUDGET),
            benefit=registry.create("benefit", name),
            updater=NeighborEvidencePropagator(),
        )
        result = engine.run(edges, [collection], gold=gold)
        outcomes[name] = measure_dimensions(result, collection, gold)
    return outcomes


def test_e6_benefit_models(benchmark, setup):
    collection, gold, edges, matcher = setup
    outcomes = run_all(setup)

    benchmark(
        lambda: ProgressiveER(
            matcher=matcher,
            budget=CostBudget(BUDGET),
            benefit=registry.create("benefit", "entity-coverage"),
        ).run(edges, [collection])
    )

    rows = []
    for scheduler, dims in outcomes.items():
        row = {"scheduler benefit": scheduler}
        row.update({k: f"{v:.0f}" for k, v in dims.items()})
        rows.append(row)
    report(
        "e6_benefit",
        format_table(
            rows,
            title=f"E6  Measured quality dimensions at budget={BUDGET} (dirty ER)",
            first_column="scheduler benefit",
        ),
    )

    # The poster's claim versus [1]: each quality-aware scheduler beats the
    # quantity-benefit baseline on the dimension it targets.
    quantity = outcomes["quantity"]
    # Coverage and relationship targeting must beat the baseline outright;
    # the attribute tie-breaker is deliberately gentle (see its docstring),
    # so parity within noise is the expected outcome there.
    for target in ("entity-coverage", "relationship-completeness"):
        assert outcomes[target][target] >= quantity[target]
    assert (
        outcomes["attribute-completeness"]["attribute-completeness"]
        >= quantity["attribute-completeness"] * 0.97
    )
    # And entity coverage diverges strictly once budgets force choices.
    assert (
        outcomes["entity-coverage"]["entity-coverage"]
        > quantity["entity-coverage"] * 1.05
    )
