"""E11 — Evidence-weight ablation for neighbour-aware matching.

DESIGN.md decision: discovered (unblocked) pairs can only match if
neighbour evidence contributes to the match decision
(:class:`~repro.core.evidence_matcher.NeighborAwareMatcher`).  This
experiment sweeps the evidence weight on the periphery workload and
reports the precision/recall trade-off: weight 0 reduces to pure value
matching (no discovered matches); small weights recover blocking-missed
matches with modest precision cost; large weights accept increasingly
speculative pairs.  The value-support floor (``min_value_similarity``) is
also toggled to show it is what keeps wrong hub-spoke pairs out.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER
from repro.core.evidence_matcher import NeighborAwareMatcher
from repro.core.pipeline import MinoanER
from repro.core.updater import NeighborEvidencePropagator
from repro.evaluation.metrics import evaluate_matches
from repro.evaluation.reporting import format_table
from repro.matching.matcher import ThresholdMatcher
from repro.matching.similarity import SimilarityIndex

WEIGHTS = (0.0, 0.15, 0.3, 0.6)
BUDGET = 1200


@pytest.fixture(scope="module")
def setup(periphery):
    platform = MinoanER()
    _, processed = platform.block(periphery.kb1, periphery.kb2)
    edges = platform.meta_block(processed)
    index = SimilarityIndex([periphery.kb1, periphery.kb2])
    return edges, index


def run_configuration(periphery, edges, index, weight, floor):
    matcher = NeighborAwareMatcher(
        ThresholdMatcher(index, threshold=0.12),
        evidence_weight=weight,
        min_value_similarity=floor,
    )
    engine = ProgressiveER(
        matcher=matcher,
        budget=CostBudget(BUDGET),
        updater=NeighborEvidencePropagator(discovery_weight=0.5),
    )
    return engine.run(
        edges, [periphery.kb1, periphery.kb2], gold=periphery.gold
    )


def run_experiment(periphery, setup):
    edges, index = setup
    rows = []
    results = {}
    for weight in WEIGHTS:
        result = run_configuration(periphery, edges, index, weight, 1e-9)
        results[weight] = result
        quality = evaluate_matches(result.matched_pairs(), periphery.gold)
        rows.append(
            {
                "evidence weight": str(weight),
                "value floor": "on",
                "recall": f"{quality.recall:.3f}",
                "precision": f"{quality.precision:.3f}",
                "F1": f"{quality.f1:.3f}",
                "discovered matches": str(result.discovered_matches),
            }
        )
    # The floor ablation: evidence allowed to match with zero value support.
    no_floor = run_configuration(periphery, edges, index, 0.3, 0.0)
    quality = evaluate_matches(no_floor.matched_pairs(), periphery.gold)
    rows.append(
        {
            "evidence weight": "0.3",
            "value floor": "OFF",
            "recall": f"{quality.recall:.3f}",
            "precision": f"{quality.precision:.3f}",
            "F1": f"{quality.f1:.3f}",
            "discovered matches": str(no_floor.discovered_matches),
        }
    )
    results["no-floor"] = no_floor
    return rows, results


def test_e11_evidence_weight(benchmark, periphery, setup):
    edges, index = setup
    rows, results = run_experiment(periphery, setup)

    benchmark(lambda: run_configuration(periphery, edges, index, 0.3, 1e-9))

    report(
        "e11_evidence",
        format_table(
            rows,
            title=f"E11  Neighbour-evidence weight ablation (periphery, budget={BUDGET})",
            first_column="evidence weight",
        ),
    )

    def quality_of(key):
        return evaluate_matches(results[key].matched_pairs(), periphery.gold)

    # Weight 0 = pure value matching: discovery can only resurrect pairs
    # post-processing dropped (value-matchable), not token-free ones.
    assert results[0.0].discovered_matches <= 5
    # Positive weights recover many more blocking-missed matches.
    assert results[0.3].discovered_matches > results[0.0].discovered_matches * 5
    assert quality_of(0.3).recall > quality_of(0.0).recall
    # Recall is monotone in the weight...
    recalls = [quality_of(w).recall for w in WEIGHTS]
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
    # ...while precision is monotone the other way.
    precisions = [quality_of(w).precision for w in WEIGHTS]
    assert all(b <= a + 1e-9 for a, b in zip(precisions, precisions[1:]))
    # Dropping the value floor floods in hub-spoke false positives.
    assert quality_of("no-floor").precision < quality_of(0.3).precision
