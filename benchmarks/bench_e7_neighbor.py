"""E7 — Neighbour-evidence figure: the update phase at the LOD periphery.

The poster's key mechanism: "exploiting the partial matching results as a
similarity evidence for their neighbor descriptions" to recover matches
that blocking missed.  On the periphery workload (somehow-similar
descriptions, sparse evidence), this experiment compares the static
schedule (update OFF) with dynamic schedules (update ON) across the
propagation boost factor, and with discovery disabled — the DESIGN.md
ablation #2.  Shape to check: update ON finds every match static finds
plus discovered ones; discovery is what recovers unblocked pairs; the
boost factor mainly changes *when* those matches surface.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER
from repro.core.pipeline import MinoanER
from repro.core.evidence_matcher import NeighborAwareMatcher
from repro.core.updater import NeighborEvidencePropagator
from repro.evaluation.metrics import evaluate_matches
from repro.evaluation.reporting import format_table
from repro.matching.matcher import ThresholdMatcher
from repro.matching.similarity import SimilarityIndex


@pytest.fixture(scope="module")
def setup(periphery):
    platform = MinoanER()
    _, processed = platform.block(periphery.kb1, periphery.kb2)
    edges = platform.meta_block(processed)
    index = SimilarityIndex([periphery.kb1, periphery.kb2])
    return edges, index


def make_matcher(index):
    # Periphery pairs share few tokens: a low value threshold is required,
    # and matched-neighbour evidence contributes to the decision (the
    # poster's "similarity evidence" for neighbours).
    return NeighborAwareMatcher(
        ThresholdMatcher(index, threshold=0.12), evidence_weight=0.3
    )


def run_variants(periphery, setup):
    edges, index = setup
    collections = [periphery.kb1, periphery.kb2]
    budget = CostBudget(1200)
    variants = {"update OFF": None}
    for boost in (0.5, 1.0, 2.0):
        variants[f"update ON (boost={boost})"] = NeighborEvidencePropagator(
            boost_factor=boost, discovery_weight=0.5
        )
    variants["update ON (no discovery)"] = NeighborEvidencePropagator(
        boost_factor=1.0, discovery_weight=0.0
    )
    results = {}
    for label, updater in variants.items():
        engine = ProgressiveER(
            matcher=make_matcher(index), budget=budget, updater=updater
        )
        results[label] = engine.run(edges, collections, gold=periphery.gold, label=label)
    return results


def test_e7_neighbor_evidence(benchmark, periphery, setup):
    edges, index = setup
    results = run_variants(periphery, setup)

    benchmark(
        lambda: ProgressiveER(
            matcher=make_matcher(index),
            budget=CostBudget(1200),
            updater=NeighborEvidencePropagator(),
        ).run(edges, [periphery.kb1, periphery.kb2])
    )

    rows = []
    for label, result in results.items():
        quality = evaluate_matches(result.matched_pairs(), periphery.gold)
        rows.append(
            {
                "variant": label,
                "recall": f"{result.curve.final('recall'):.3f}",
                "precision": f"{quality.precision:.3f}",
                "AUC": f"{result.curve.auc('recall', 1200):.3f}",
                "matches": str(result.match_graph.match_count),
                "discovered pairs": str(result.discovered_pairs),
                "discovered matches": str(result.discovered_matches),
            }
        )
    report(
        "e7_neighbor",
        format_table(
            rows,
            title="E7  Update phase at the periphery (recall within budget 1200)",
            first_column="variant",
        ),
    )

    static = results["update OFF"]
    dynamic = results["update ON (boost=1.0)"]
    no_discovery = results["update ON (no discovery)"]
    # The update phase recovers matches blocking missed.
    assert dynamic.match_graph.match_count >= static.match_graph.match_count
    assert dynamic.discovered_matches > 0
    # Discovery is the mechanism: without it no unblocked pair can match.
    assert no_discovery.discovered_matches == 0
    # Every boost setting finds at least the static matches.
    for boost in (0.5, 1.0, 2.0):
        assert (
            results[f"update ON (boost={boost})"].match_graph.match_count
            >= static.match_graph.match_count
        )
