"""Perf — int-id backbone vs string-tuple reference graph construction.

Times ``BlockingGraph.materialize()`` (and a pruning pass) through the
int-id fast path against the retained string-tuple reference path on the
``center`` and ``periphery`` synthetic workloads (300 entities, overlap
0.7 — the experiment-scale fixtures of this harness).  Results are
printed, persisted under ``benchmarks/output/`` and written as a
``BENCH_graph.json`` perf artifact at the repository root so the speedup
trajectory is tracked across commits.

Run either way::

    pytest benchmarks/bench_perf_graph.py -s
    PYTHONPATH=src python benchmarks/bench_perf_graph.py

The committed acceptance bar is a ≥ 3× materialize speedup on ``center``.
"""

from __future__ import annotations

import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_graph.json")

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.datasets import PERIPHERY_PROFILE, SyntheticConfig, synthesize_pair
from repro.api import registry
from repro.metablocking import BlockingGraph

#: weighting schemes timed per workload (ARCS is the pipeline default)
SCHEMES = ("ARCS", "ECBS", "EJS")
#: repetitions per timing (best-of to suppress scheduler noise)
REPEATS = 5


def _build_blocks(dataset):
    blocks = TokenBlocking().build(dataset.kb1, dataset.kb2)
    return BlockFiltering().process(BlockPurging().process(blocks))


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_materialize(blocks, scheme_name: str, fast: bool, cold: bool = False) -> float:
    def build():
        if cold:
            # Drop every lazy view (entity index, interner, CSR arrays,
            # pair table) so the timing includes their reconstruction.
            blocks._invalidate_views()
        BlockingGraph(blocks, registry.create("weighting", scheme_name), fast_path=fast).materialize()

    return _best_of(build)


def _time_prune(blocks, scheme_name: str, pruner_name: str, fast: bool) -> float:
    def run():
        graph = BlockingGraph(blocks, registry.create("weighting", scheme_name), fast_path=fast)
        registry.create("pruner", pruner_name).prune(graph)

    return _best_of(run)


def run_benchmark() -> dict:
    results: dict = {"unit": "seconds (best of %d)" % REPEATS, "workloads": {}}
    configs = {
        "center": SyntheticConfig(entities=300, overlap=0.7, seed=42),
        "periphery": SyntheticConfig(
            entities=300, overlap=0.7, seed=42, profile=PERIPHERY_PROFILE
        ),
    }
    for workload, config in configs.items():
        dataset = synthesize_pair(config)
        blocks = _build_blocks(dataset)
        graph = BlockingGraph(blocks, registry.create("weighting", "ARCS"))
        entry: dict = {
            "entities": len(dataset.kb1) + len(dataset.kb2),
            "blocks": len(blocks),
            "comparisons_with_repetitions": blocks.total_comparisons(),
            "distinct_edges": len(graph),
            "materialize": {},
            "prune_cnp_arcs": {},
        }
        for scheme_name in SCHEMES:
            slow = _time_materialize(blocks, scheme_name, fast=False)
            fast = _time_materialize(blocks, scheme_name, fast=True)
            cold_slow = _time_materialize(blocks, scheme_name, fast=False, cold=True)
            cold_fast = _time_materialize(blocks, scheme_name, fast=True, cold=True)
            entry["materialize"][scheme_name] = {
                "reference_s": round(slow, 6),
                "int_id_s": round(fast, 6),
                "speedup": round(slow / fast, 2) if fast > 0 else float("inf"),
                "cold_reference_s": round(cold_slow, 6),
                "cold_int_id_s": round(cold_fast, 6),
                "cold_speedup": (
                    round(cold_slow / cold_fast, 2) if cold_fast > 0 else float("inf")
                ),
            }
        slow = _time_prune(blocks, "ARCS", "CNP", fast=False)
        fast = _time_prune(blocks, "ARCS", "CNP", fast=True)
        entry["prune_cnp_arcs"] = {
            "reference_s": round(slow, 6),
            "int_id_s": round(fast, 6),
            "speedup": round(slow / fast, 2) if fast > 0 else float("inf"),
        }
        results["workloads"][workload] = entry
    results["center_materialize_speedup"] = results["workloads"]["center"][
        "materialize"
    ]["ARCS"]["speedup"]
    return results


def format_report(results: dict) -> str:
    lines = ["graph construction: int-id fast path vs string reference", ""]
    for workload, entry in results["workloads"].items():
        lines.append(
            f"[{workload}] {entry['blocks']} blocks, "
            f"{entry['comparisons_with_repetitions']} comparisons w/ repetitions, "
            f"{entry['distinct_edges']} distinct edges"
        )
        for scheme_name, timing in entry["materialize"].items():
            lines.append(
                f"  materialize {scheme_name:5} "
                f"ref {timing['reference_s'] * 1000:8.2f} ms   "
                f"int-id {timing['int_id_s'] * 1000:8.2f} ms   "
                f"{timing['speedup']:.2f}x   "
                f"(cold: {timing['cold_speedup']:.2f}x)"
            )
        timing = entry["prune_cnp_arcs"]
        lines.append(
            f"  CNP(ARCS) prune   "
            f"ref {timing['reference_s'] * 1000:8.2f} ms   "
            f"int-id {timing['int_id_s'] * 1000:8.2f} ms   "
            f"{timing['speedup']:.2f}x"
        )
        lines.append("")
    lines.append(
        f"center materialize speedup (acceptance bar >= 3x): "
        f"{results['center_materialize_speedup']:.2f}x"
    )
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_perf_graph():
    """Pytest entry point: runs the benchmark and asserts the 3x bar."""
    from conftest import report

    results = run_benchmark()
    report("perf_graph", format_report(results))
    write_artifact(results)
    assert results["center_materialize_speedup"] >= 3.0


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    return 0 if results["center_materialize_speedup"] >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
