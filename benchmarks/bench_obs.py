"""Perf — observability overhead, span-count exactness, stage coverage.

The observability layer (:mod:`repro.obs`) promises to be effectively
free: span tracing and metric histograms ride along with the streaming
replay, the batch pipeline and the mapreduce sweep without changing
results or meaningfully changing wall time.  Four properties are gated:

* **overhead** — the tracing-on streaming replay wall time (spans into
  an in-memory sink + full metric histograms) stays within
  ``OVERHEAD_BAR``× the observability-off replay (best of
  ``ATTEMPTS`` each, same events, fresh resolvers);
* **exactness** — span counts equal the oracle event counts exactly:
  one span per insert/delete, five per query (the query span + four
  phase spans) plus one per reconcile, and one drain span per
  pending-buffer drain (cross-checked against the view's always-on
  ``drain_count``) — no sampling, no loss;
* **coverage** — every backend (sequential, mapreduce, stream bridge)
  emits a span for every pipeline stage;
* **bit-identity** — pruned edges, match decisions and the streamed
  state are bit-identical with observability on vs off.

Results are printed and written as a ``BENCH_obs.json`` artifact at the
repository root (CI uploads it per run).  Run either way::

    pytest benchmarks/bench_obs.py -s
    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_obs.json")

from repro.api import Pipeline, PipelineSpec
from repro.datasets import SyntheticConfig, synthesize_pair
from repro.obs import InMemorySink, Observability
from repro.stream import StreamResolver, WorkloadDriver
from repro.stream.durability import capture_state
from repro.stream.workload import SCENARIOS

#: tracing-on replay wall may exceed tracing-off by at most this factor
OVERHEAD_BAR = 1.10
#: best-of-N timing attempts per mode (min filters scheduler noise)
ATTEMPTS = 3
CENTER = SyntheticConfig(entities=300, overlap=0.7, seed=42)

SPEC = PipelineSpec.from_dict(
    {
        "weighting": "ARCS",
        "pruning": "CNP",
        "matching": {
            "matcher": {"name": "threshold", "params": {"threshold": 0.35}},
        },
    }
)

PIPELINE_STAGES = (
    "pipeline.blocking",
    "pipeline.purging",
    "pipeline.filtering",
    "pipeline.weighting",
    "pipeline.pruning",
    "pipeline.matching",
    "pipeline.evaluation",
)


def _replay(events, obs=None):
    """One fresh replay; returns (wall_s, stats, resolver, sink)."""
    sink = InMemorySink() if obs == "traced" else None
    handle = Observability(sink=sink) if sink is not None else None
    resolver = StreamResolver(clean_clean=True, processed_view=True, obs=handle)
    t0 = time.perf_counter()
    stats = WorkloadDriver(resolver).run(events, scenario="uniform")
    wall = time.perf_counter() - t0
    return wall, stats, resolver, sink


def run_overhead_benchmark(dataset) -> dict:
    """Best-of-N tracing-on vs tracing-off streaming replay walls."""
    events = SCENARIOS["uniform"](dataset.kb1, dataset.kb2)
    disabled_walls = [_replay(events)[0] for _ in range(ATTEMPTS)]
    traced_walls = [_replay(events, obs="traced")[0] for _ in range(ATTEMPTS)]
    disabled, traced = min(disabled_walls), min(traced_walls)
    return {
        "events": len(events),
        "attempts": ATTEMPTS,
        "disabled_wall_ms": round(disabled * 1e3, 3),
        "traced_wall_ms": round(traced * 1e3, 3),
        "overhead_ratio": round(traced / disabled, 4) if disabled > 0 else 0.0,
        "overhead_bar": OVERHEAD_BAR,
    }


def run_span_oracle(dataset) -> dict:
    """Traced replay span counts vs oracle event counts — exact, for
    every registered scenario (the deletion-bearing ones exercise the
    ``stream.delete`` spans)."""
    out: dict = {}
    for scenario_name, make_events in sorted(SCENARIOS.items()):
        events = make_events(dataset.kb1, dataset.kb2)
        _, stats, resolver, sink = _replay(events, obs="traced")
        counts = sink.by_name()
        reconciles = counts.get("stream.query.reconcile", 0)
        drains = counts.get("stream.view.drain", 0)
        expected_total = (
            stats.inserts
            + stats.deletes
            + 5 * stats.queries
            + reconciles
            + drains
        )
        checks = {
            "insert_spans_match": (
                counts.get("stream.insert", 0) == stats.inserts
            ),
            "delete_spans_match": (
                counts.get("stream.delete", 0) == stats.deletes
            ),
            "query_spans_match": counts.get("stream.query", 0) == stats.queries,
            "phase_spans_match": all(
                counts.get(f"stream.query.{phase}", 0) == stats.queries
                for phase in ("ingest", "candidates", "weigh", "match")
            ),
            "reconcile_spans_match": reconciles == stats.reconciles,
            "drain_spans_match": drains == resolver.view.drain_count,
            "total_spans_match": len(sink) == expected_total,
        }
        out[scenario_name] = {
            "inserts": stats.inserts,
            "queries": stats.queries,
            "deletes": stats.deletes,
            "reconciles": stats.reconciles,
            "drains": resolver.view.drain_count,
            "spans_emitted": len(sink),
            "spans_expected": expected_total,
            "checks": checks,
            "exact": all(checks.values()),
        }
    out["exact"] = all(
        entry["exact"] for entry in out.values() if isinstance(entry, dict)
    )
    return out


def run_stage_coverage(dataset) -> dict:
    """Every backend emits a span for every pipeline stage."""
    backends = {
        "sequential": SPEC,
        "mapreduce": SPEC.with_backend(kind="mapreduce", workers=2),
        "stream": SPEC.with_backend(kind="stream", scenario="uniform"),
    }
    out: dict = {}
    for name, spec in backends.items():
        sink = InMemorySink()
        obs = Observability(sink=sink)
        Pipeline(spec, obs=obs).execute(
            dataset.kb1, dataset.kb2, gold=dataset.gold
        )
        emitted = sink.by_name()
        missing = [stage for stage in PIPELINE_STAGES if not emitted.get(stage)]
        out[name] = {
            "spans": len(sink),
            "missing_stages": missing,
            "complete": not missing and emitted.get("pipeline.run", 0) == 1,
        }
    out["all_complete"] = all(
        entry["complete"] for entry in out.values() if isinstance(entry, dict)
    )
    return out


def run_bit_identity(dataset) -> dict:
    """Observability on vs off: identical outputs, identical state."""
    kb1, kb2, gold = dataset.kb1, dataset.kb2, dataset.gold

    plain = Pipeline(SPEC).execute(kb1, kb2, gold=gold)
    traced = Pipeline(
        SPEC, obs=Observability(sink=InMemorySink())
    ).execute(kb1, kb2, gold=gold)
    batch_identical = (
        [(e.left, e.right, e.weight) for e in plain.edges]
        == [(e.left, e.right, e.weight) for e in traced.edges]
        and plain.matched_pairs() == traced.matched_pairs()
    )

    events = SCENARIOS["uniform"](kb1, kb2)
    _, _, plain_resolver, _ = _replay(events)
    _, _, traced_resolver, _ = _replay(events, obs="traced")

    def state(resolver):
        return capture_state(
            resolver.store, resolver.index, resolver.pairs,
            resolver.view, resolver.view_pairs,
        )

    stream_identical = state(plain_resolver) == state(traced_resolver)
    return {
        "batch_identical": batch_identical,
        "stream_identical": stream_identical,
        "identical": batch_identical and stream_identical,
    }


def run_benchmark() -> dict:
    dataset = synthesize_pair(CENTER)
    return {
        "workload": {
            "profile": "center",
            "entities": len(dataset.kb1) + len(dataset.kb2),
        },
        "overhead": run_overhead_benchmark(dataset),
        "span_oracle": run_span_oracle(dataset),
        "stage_coverage": run_stage_coverage(dataset),
        "bit_identity": run_bit_identity(dataset),
    }


def gates_ok(results: dict) -> bool:
    return (
        results["overhead"]["overhead_ratio"] <= OVERHEAD_BAR
        and results["span_oracle"]["exact"]
        and results["stage_coverage"]["all_complete"]
        and results["bit_identity"]["identical"]
    )


def format_report(results: dict) -> str:
    overhead = results["overhead"]
    oracle = results["span_oracle"]
    lines = [
        "observability: tracing overhead + exactness (center workload)",
        "",
        f"[overhead] {overhead['events']} events, best of "
        f"{overhead['attempts']}: disabled {overhead['disabled_wall_ms']:.2f} ms, "
        f"traced {overhead['traced_wall_ms']:.2f} ms  →  "
        f"{overhead['overhead_ratio']:.3f}x (bar <= {overhead['overhead_bar']:.2f}x)",
        "",
    ]
    for scenario, entry in sorted(oracle.items()):
        if not isinstance(entry, dict):
            continue
        status = "exact" if entry["exact"] else (
            "MISMATCH "
            + str([k for k, ok in entry["checks"].items() if not ok])
        )
        lines.append(
            f"[oracle:{scenario}] {entry['inserts']} ins + "
            f"{entry['queries']} qry + {entry['deletes']} del, "
            f"{entry['reconciles']} reconciles, {entry['drains']} drains "
            f"→ {entry['spans_emitted']} spans "
            f"(expected {entry['spans_expected']}): {status}"
        )
    lines.append("")
    for backend in ("sequential", "mapreduce", "stream"):
        entry = results["stage_coverage"][backend]
        status = "complete" if entry["complete"] else (
            f"MISSING {entry['missing_stages']}"
        )
        lines.append(f"[stages:{backend}] {entry['spans']} spans, {status}")
    identity = results["bit_identity"]
    lines.append("")
    lines.append(
        f"[bit-identity] batch {identity['batch_identical']}, "
        f"stream {identity['stream_identical']}"
    )
    return "\n".join(lines)


def write_artifact(results: dict, path: str = ARTIFACT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_perf_obs():
    """Pytest entry point: assert all four observability gates."""
    from conftest import report

    results = run_benchmark()
    report("perf_obs", format_report(results))
    write_artifact(results)
    assert results["span_oracle"]["exact"], results["span_oracle"]
    assert results["stage_coverage"]["all_complete"], results["stage_coverage"]
    assert results["bit_identity"]["identical"], results["bit_identity"]
    assert results["overhead"]["overhead_ratio"] <= OVERHEAD_BAR, (
        results["overhead"]
    )


def main() -> int:
    results = run_benchmark()
    print(format_report(results))
    path = write_artifact(results)
    print(f"\n[artifact written to {path}]")
    return 0 if gates_ok(results) else 1


if __name__ == "__main__":
    sys.exit(main())
