"""Shared fixtures and reporting helpers for the experiment harness.

Every ``bench_e*.py`` module regenerates one of the tables/figures listed
in DESIGN.md.  Each prints its rows/series and also writes them under
``benchmarks/output/`` so EXPERIMENTS.md can quote exact numbers.  Run::

    pytest benchmarks/ --benchmark-only

(add ``-s`` to watch the tables stream by; the files are written either
way).

``bench_perf_graph.py`` is the perf-tracking benchmark for the int-id /
array backbone behind ``BlockingGraph``: it times ``materialize()`` and a
CNP pruning pass through the fast path against the retained string-tuple
reference on the center/periphery workloads, asserts the committed ≥ 3×
center speedup, and writes a ``BENCH_graph.json`` artifact at the repo
root (CI uploads it per run for trajectory tracking).  Run it standalone
with ``PYTHONPATH=src python benchmarks/bench_perf_graph.py`` or through
pytest as ``pytest benchmarks/bench_perf_graph.py -s``.

``bench_stream.py`` is the streaming counterpart: it replays the
uniform/bursty/skewed arrival+query scenarios against the streaming
resolver on the center workload, gates per-insert latency flatness
(amortized O(delta)) and stream==batch equivalence, and writes the
``BENCH_stream.json`` artifact at the repo root.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import (
    PERIPHERY_PROFILE,
    SyntheticConfig,
    load_movies,
    load_restaurants,
    synthesize_dirty,
    synthesize_pair,
)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

#: experiment-scale workloads (larger than the unit-test fixtures)
CENTER_CONFIG = SyntheticConfig(entities=300, overlap=0.7, seed=42)
PERIPHERY_CONFIG = SyntheticConfig(
    entities=300, overlap=0.7, seed=42, profile=PERIPHERY_PROFILE
)


def report(name: str, text: str) -> None:
    """Print an experiment artifact and persist it under benchmarks/output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def movies():
    return load_movies()


@pytest.fixture(scope="session")
def restaurants():
    return load_restaurants()


@pytest.fixture(scope="session")
def center():
    return synthesize_pair(CENTER_CONFIG)


@pytest.fixture(scope="session")
def periphery():
    return synthesize_pair(PERIPHERY_CONFIG)


@pytest.fixture(scope="session")
def dirty():
    return synthesize_dirty(SyntheticConfig(entities=200, seed=42), max_duplicates=3)
