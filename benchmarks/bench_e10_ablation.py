"""E10 — Scheduling-overhead ablation: is the iterative process worth it?

The poster concedes that exploiting intermediate results "inherently
entails an additional overhead", which is why benefit must be maximized
per unit of cost.  This experiment makes that overhead explicit: the cost
budget charges scheduling/update operations at increasing weights (0 =
free bookkeeping, the usual assumption; 0.01 and 0.05 = bookkeeping eats
real budget), with the update phase on and off.  Shape to check: with
free scheduling the dynamic strategy dominates; as bookkeeping gets more
expensive its advantage shrinks — but at realistic weights (a scheduling
operation is orders of magnitude cheaper than a comparison) it keeps a
clear margin over the static schedule.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.core.budget import CostBudget
from repro.core.engine import ProgressiveER
from repro.core.pipeline import MinoanER
from repro.core.updater import NeighborEvidencePropagator
from repro.evaluation.reporting import format_table
from repro.matching.matcher import ThresholdMatcher
from repro.matching.similarity import SimilarityIndex

BUDGET = 800
WEIGHTS = (0.0, 0.01, 0.05)


@pytest.fixture(scope="module")
def setup(periphery):
    platform = MinoanER()
    _, processed = platform.block(periphery.kb1, periphery.kb2)
    edges = platform.meta_block(processed)
    index = SimilarityIndex([periphery.kb1, periphery.kb2])
    matcher = ThresholdMatcher(index, threshold=0.12)
    return edges, matcher


def run_experiment(periphery, setup):
    edges, matcher = setup
    collections = [periphery.kb1, periphery.kb2]
    rows = []
    results = {}
    for weight in WEIGHTS:
        for update in (False, True):
            label = f"update={'ON' if update else 'OFF'} w={weight}"
            engine = ProgressiveER(
                matcher=matcher,
                budget=CostBudget(BUDGET, scheduling_cost_weight=weight),
                updater=NeighborEvidencePropagator() if update else None,
            )
            result = engine.run(edges, collections, gold=periphery.gold, label=label)
            results[(update, weight)] = result
            rows.append(
                {
                    "configuration": label,
                    "recall": f"{result.curve.final('recall'):.3f}",
                    "comparisons": str(result.comparisons_executed),
                    "scheduling ops": str(result.budget.scheduling_operations),
                    "budget on bookkeeping": f"{result.budget.scheduling_operations * weight:.0f}",
                }
            )
    return rows, results


def test_e10_scheduling_overhead(benchmark, periphery, setup):
    edges, matcher = setup
    rows, results = run_experiment(periphery, setup)

    benchmark(
        lambda: ProgressiveER(
            matcher=matcher,
            budget=CostBudget(BUDGET, scheduling_cost_weight=0.01),
            updater=NeighborEvidencePropagator(),
        ).run(edges, [periphery.kb1, periphery.kb2])
    )

    report(
        "e10_ablation",
        format_table(
            rows,
            title=f"E10  Scheduling-overhead ablation (budget={BUDGET})",
            first_column="configuration",
        ),
    )

    # Charging bookkeeping reduces the comparisons the budget affords.
    assert (
        results[(True, 0.05)].comparisons_executed
        <= results[(True, 0.0)].comparisons_executed
    )
    # At realistic overhead the update phase still pays for itself.
    assert (
        results[(True, 0.01)].curve.final("recall")
        >= results[(False, 0.01)].curve.final("recall") - 0.02
    )
    # The static schedule performs no scheduling/update bookkeeping beyond
    # estimate refreshes; dynamic performs strictly more.
    assert (
        results[(True, 0.0)].budget.scheduling_operations
        > results[(False, 0.0)].budget.scheduling_operations
    )
