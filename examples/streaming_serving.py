#!/usr/bin/env python3
"""Streaming ER: serve inserts and resolution queries from a live store.

Synthesizes a clean-clean workload, replays it as a bursty arrival +
query stream through :class:`repro.stream.StreamResolver`, prints the
serving statistics, and then demonstrates the equivalence contract: the
state built entity-by-entity yields exactly the batch pipeline's pruned
comparisons.

Run:  python examples/streaming_serving.py
"""

from repro import SyntheticConfig, format_table
from repro.datasets import synthesize_pair
from repro.metablocking import BlockingGraph, make_pruner, make_scheme
from repro.stream import StreamResolver, WorkloadDriver, bursty_workload


def main() -> None:
    from repro import EntityCollection

    dataset = synthesize_pair(SyntheticConfig(entities=150, overlap=0.7, seed=9))
    resolver = StreamResolver(clean_clean=True, threshold=0.4)
    resolver.store.collections[0].name = dataset.kb1.name
    resolver.store.collections[1].name = dataset.kb2.name

    # Hold one known match back: it will arrive *after* the replay.
    left, right = sorted(dataset.gold.matches)[0]
    holdout = right if right in dataset.kb2 else left
    kb2_rest = EntityCollection(
        [d.copy() for d in dataset.kb2 if d.uri != holdout], name=dataset.kb2.name
    )

    events = bursty_workload(dataset.kb1, kb2_rest, burst_size=30)
    stats = WorkloadDriver(resolver).run(events, scenario="bursty")
    print(format_table(stats.summary_rows(), title="Bursty replay", first_column="metric"))

    # The held-out description arrives now and resolves at query time.
    arrival = dataset.kb2[holdout].copy()
    result = resolver.resolve(arrival, source=1, scheme="ARCS", pruner="CNP")
    print(
        f"\nresolve({arrival.uri}) -> {result.matched_uris() or 'no match'} "
        f"in {result.latency['total_s'] * 1e3:.2f} ms "
        f"({result.candidates} candidates, {result.comparisons} comparisons)"
    )

    # The equivalence contract, demonstrated end to end.
    from repro import BlockFiltering, BlockPurging, TokenBlocking

    batch_blocks = BlockFiltering().process(
        BlockPurging().process(TokenBlocking().build(dataset.kb1, dataset.kb2))
    )
    batch_edges = make_pruner("CNP").prune(
        BlockingGraph(batch_blocks, make_scheme("ARCS"))
    )
    streamed_edges = resolver.pruned_edges("ARCS", "CNP")
    assert streamed_edges == batch_edges
    print(
        f"\nstream == batch: {len(streamed_edges)} pruned comparisons, bit-identical"
    )

    # The incremental processed view: serve purge/filter survivors
    # without recomputing global thresholds per query.  Approximate
    # between reconciliations, exact at reconcile points.
    view_resolver = StreamResolver(clean_clean=True, processed_view=True)
    view_resolver.store.collections[0].name = dataset.kb1.name
    view_resolver.store.collections[1].name = dataset.kb2.name
    view_stats = WorkloadDriver(view_resolver).run(
        bursty_workload(dataset.kb1, dataset.kb2, burst_size=30),
        scenario="bursty",
    )
    report = view_resolver.view.reconcile()
    exact = view_resolver.index.snapshot_processed()
    view = view_resolver.view.materialize()
    assert view.keys() == exact.keys()
    assert view.id_blocks() == exact.id_blocks()
    print(
        f"\nprocessed view: {view_stats.reconciles} auto-reconciles during replay "
        f"({view_stats.reconcile_s * 1e3:.2f} ms repair vs "
        f"{view_stats.serve_s * 1e3:.2f} ms serve); final {report.mode} "
        f"reconcile repaired {report.drift} drifted placements/blocks over "
        f"{report.entities_repaired} entities -> bit-identical to "
        f"snapshot_processed() ({report.exact_blocks} surviving blocks)"
    )


if __name__ == "__main__":
    main()
