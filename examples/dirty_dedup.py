#!/usr/bin/env python3
"""Dirty ER: deduplicating one knowledge base.

Synthesizes a single collection in which each real-world entity appears
as one to three perturbed duplicate descriptions, resolves it with the
MinoanER pipeline, clusters the pairwise matches, and scores the result
both pairwise (precision/recall/F1) and cluster-wise (B-cubed) — the
evaluation style dirty-ER studies use.

Run:  python examples/dirty_dedup.py
"""

from repro import MinoanER, CostBudget, SyntheticConfig, format_table, synthesize_dirty
from repro.evaluation import bcubed, evaluate_matches
from repro.matching import connected_components


def main() -> None:
    collection, gold = synthesize_dirty(
        SyntheticConfig(entities=250, seed=21), max_duplicates=3
    )
    duplicates = sum(len(c) for c in gold.clusters)
    print(
        f"Collection: {len(collection)} descriptions; "
        f"{len(gold.clusters)} entities have duplicates ({duplicates} descriptions)\n"
    )

    platform = MinoanER(
        budget=CostBudget(2500),
        match_threshold=0.45,
        benefit="entity-coverage",
    )
    result = platform.resolve(collection, gold=gold)
    print(format_table(
        [dict(stage=k, value=v) for k, v in result.summary().items()],
        title="Pipeline stages",
    ))

    pairwise = evaluate_matches(result.matched_pairs(), gold)
    predicted_clusters = connected_components(result.matched_pairs())
    cluster_score = bcubed(
        predicted_clusters, gold.clusters, universe=collection.uris()
    )
    print()
    print(format_table(
        [{**pairwise.as_row(), **cluster_score.as_row()}],
        title="Pairwise + B-cubed quality",
    ))

    sizes = {}
    for cluster in predicted_clusters:
        sizes[len(cluster)] = sizes.get(len(cluster), 0) + 1
    print()
    print(format_table(
        [
            {"cluster size": str(size), "count": str(count)}
            for size, count in sorted(sizes.items())
        ],
        title="Predicted duplicate-cluster sizes",
        first_column="cluster size",
    ))


if __name__ == "__main__":
    main()
