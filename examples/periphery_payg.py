#!/usr/bin/env python3
"""Pay-as-you-go resolution at the periphery of the LOD cloud.

Synthesizes a periphery workload — sparsely described, "somehow similar"
entity descriptions with proprietary vocabularies and partly opaque URIs —
and resolves it under a sweep of comparison budgets, reporting how recall
accumulates for each scheduling strategy and how the choice of benefit
model changes what gets resolved first.

Run:  python examples/periphery_payg.py
"""

from repro import (
    CostBudget,
    MinoanER,
    PERIPHERY_PROFILE,
    SyntheticConfig,
    format_series,
    format_table,
    synthesize_pair,
)
from repro.baselines import random_order_baseline
from repro.core import NeighborAwareMatcher, dynamic_strategy, static_strategy
from repro.matching import SimilarityIndex, ThresholdMatcher


def main() -> None:
    dataset = synthesize_pair(
        SyntheticConfig(entities=250, overlap=0.7, seed=7, profile=PERIPHERY_PROFILE)
    )
    print(
        f"Periphery workload: {len(dataset.kb1)} + {len(dataset.kb2)} descriptions, "
        f"{len(dataset.gold.matches)} gold matches"
    )
    stats = dataset.kb1.statistics()
    print(f"KB1 shape: {stats.property_count} properties, "
          f"avg {stats.avg_values_per_description:.1f} values/description, "
          f"avg out-degree {stats.avg_out_degree:.2f}\n")

    platform = MinoanER()
    _, processed = platform.block(dataset.kb1, dataset.kb2)
    edges = platform.meta_block(processed)
    print(f"Blocking produced {len(processed)} blocks; meta-blocking retained {len(edges)} comparisons\n")

    index = SimilarityIndex([dataset.kb1, dataset.kb2])

    def matcher():
        return NeighborAwareMatcher(ThresholdMatcher(index, threshold=0.12), 0.3)

    budget = CostBudget(1000)
    collections = [dataset.kb1, dataset.kb2]
    curves = []
    dynamic = dynamic_strategy(matcher(), budget=budget).run(
        edges, collections, gold=dataset.gold, label="minoan-dynamic"
    )
    curves.append(dynamic.curve)
    static = static_strategy(matcher(), budget=budget).run(
        edges, collections, gold=dataset.gold, label="minoan-static"
    )
    curves.append(static.curve)
    random_ = random_order_baseline(edges, matcher(), collections, budget, dataset.gold)
    curves.append(random_.curve)

    print(format_series(curves, series="recall", points=10,
                        title="Recall vs consumed comparisons"))

    from repro.evaluation import format_progress_chart
    print()
    print(format_progress_chart(curves, title="Progressive recall"))

    rows = [
        {
            "strategy": r.curve.label,
            "AUC": f"{r.curve.auc('recall', 1000):.3f}",
            "final recall": f"{r.curve.final('recall'):.3f}",
            "discovered matches": str(getattr(r, "discovered_matches", 0)),
        }
        for r in (dynamic, static, random_)
    ]
    print()
    print(format_table(rows, title="Summary", first_column="strategy"))


if __name__ == "__main__":
    main()
