#!/usr/bin/env python3
"""Cross-KB movie resolution with neighbour evidence.

The movies corpus pairs a DBpedia-like KB (name-bearing URIs, rich
attributes) with a Freebase-like KB (opaque ``/m/…`` ids, sparse labels,
abbreviated titles).  Films reference their directors inside each KB, so
this is the scenario MinoanER's update phase was designed for: a director
match is similarity evidence for the films citing them — including films
like "Crimson Meridian", whose KB-B label is just "Meridian".

The script contrasts the static schedule (update phase off) with full
MinoanER (update phase on + neighbour-aware matching) and shows which
matches only the iterative strategy recovers.

Run:  python examples/movies_crosskb.py
"""

from repro import CostBudget, MinoanER, evaluate_matches, format_table, load_movies


def run(update_phase: bool):
    kb_a, kb_b, gold = load_movies()
    platform = MinoanER(
        budget=CostBudget(400),
        match_threshold=0.4,
        update_phase=update_phase,
        benefit="relationship-completeness" if update_phase else "quantity",
    )
    return platform.resolve(kb_a, kb_b, gold=gold), gold


def main() -> None:
    kb_a, kb_b, gold = load_movies()
    print(f"Movies corpus: {len(kb_a)} + {len(kb_b)} descriptions, {len(gold)} gold matches\n")

    static_result, _ = run(update_phase=False)
    dynamic_result, _ = run(update_phase=True)

    rows = []
    for label, result in (("static", static_result), ("dynamic", dynamic_result)):
        quality = evaluate_matches(result.matched_pairs(), gold)
        rows.append(
            {
                "strategy": label,
                "comparisons": str(result.progressive.comparisons_executed),
                "matches": str(result.progressive.match_graph.match_count),
                "discovered": str(result.progressive.discovered_matches),
                **quality.as_row(),
            }
        )
    print(format_table(rows, title="Static vs dynamic scheduling", first_column="strategy"))

    recovered = dynamic_result.matched_pairs() - static_result.matched_pairs()
    if recovered:
        print("\nMatches only the update phase recovered:")
        for left, right in sorted(recovered):
            label_a = kb_a[left].first("http://kba.example.org/ontology/title") or kb_a[
                left
            ].first("http://kba.example.org/ontology/name")
            label_b = kb_b[right].first("http://kbb.example.org/schema/label")
            marker = "GOLD" if gold.is_match(left, right) else "    "
            print(f"  [{marker}] {label_a!r} <-> {label_b!r}")
    else:
        print("\n(no additional matches this run)")


if __name__ == "__main__":
    main()
