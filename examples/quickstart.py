#!/usr/bin/env python3
"""Quickstart: resolve two restaurant directories with MinoanER.

Loads the embedded restaurants corpus (two KBs with different schemas and
abbreviation conventions), runs the full pipeline — token blocking,
purging + filtering, ARCS/CNP meta-blocking, progressive matching — and
evaluates against the gold standard.

Run:  python examples/quickstart.py
"""

from repro import CostBudget, MinoanER, evaluate_matches, format_table, load_restaurants


def main() -> None:
    kb_a, kb_b, gold = load_restaurants()
    print(f"KB A: {len(kb_a)} descriptions   KB B: {len(kb_b)} descriptions")
    print(f"Gold matches: {len(gold)}\n")

    platform = MinoanER(
        budget=CostBudget(300),     # pay-as-you-go: at most 300 comparisons
        match_threshold=0.35,
        benefit="quantity",
    )
    result = platform.resolve(kb_a, kb_b, gold=gold)

    print(format_table(
        [dict(stage=k, value=v) for k, v in result.summary().items()],
        title="Pipeline stages",
    ))

    quality = evaluate_matches(result.matched_pairs(), gold)
    print()
    print(format_table([quality.as_row()], title="Matching quality"))

    print("\nResolved pairs:")
    for left, right in sorted(result.matched_pairs()):
        name_a = kb_a[left].first("http://kba.example.org/ontology/name")
        name_b = kb_b[right].first("http://kbb.example.org/schema/title")
        print(f"  {name_a!r:40} <-> {name_b!r}")


if __name__ == "__main__":
    main()
