"""The declarative facade: one spec, three execution backends.

Everything the platform can do — blocking method, weighting scheme,
pruning algorithm, matcher, budget policy, backend — is one serializable
:class:`~repro.api.spec.PipelineSpec`.  This example builds a spec,
round-trips it through JSON (what you would commit to a config repo),
runs it on the sequential, MapReduce and streaming backends, and checks
the facade's contract: **bit-identical pruned candidates and match
decisions on every backend**.
"""

from repro import Pipeline, PipelineSpec, format_table, load_movies, registry

kb_a, kb_b, gold = load_movies()

# -- 1. declare the pipeline as data ----------------------------------------
spec = PipelineSpec.from_dict(
    {
        "blocking": {"blocker": "token"},
        "weighting": "ARCS",
        "pruning": "CNP",
        "matching": {
            "matcher": {"name": "threshold", "params": {"threshold": 0.35}},
            "benefit": "entity-coverage",
        },
    }
)

# The spec serializes to JSON and back without loss; its hash is a
# stable cache key for sweeps and result stores.
assert PipelineSpec.from_json(spec.to_json()) == spec
print(f"spec cache key: {spec.cache_key()[:16]}…\n")

# -- 2. the same spec on every backend --------------------------------------
reports = {
    "sequential": Pipeline.run(spec, kb_a, kb_b, gold=gold),
    "mapreduce": Pipeline.run(
        spec.with_backend(kind="mapreduce", workers=2), kb_a, kb_b, gold=gold
    ),
    "stream": Pipeline.run(
        spec.with_backend(kind="stream", scenario="bursty"), kb_a, kb_b, gold=gold
    ),
}

rows = []
for name, report in reports.items():
    row = {
        "backend": name,
        "edges": str(len(report.edges)),
        "matches": str(len(report.matched_pairs())),
    }
    row.update(report.match_quality.as_row())
    rows.append(row)
print(format_table(rows, title="One spec, three backends", first_column="backend"))

reference = [(e.left, e.right, e.weight) for e in reports["sequential"].edges]
for name, report in reports.items():
    assert [(e.left, e.right, e.weight) for e in report.edges] == reference
    assert report.matched_pairs() == reports["sequential"].matched_pairs()
print("\nbackends verified identical: pruned edges and match decisions")

# -- 3. the registry is the component catalogue ------------------------------
print(
    "\nregistered components: "
    + ", ".join(
        f"{kind}×{len(registry.names(kind))}" for kind in registry.kinds()
    )
)
print("weighting schemes:", ", ".join(registry.names("weighting")))
