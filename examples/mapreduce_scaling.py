#!/usr/bin/env python3
"""Parallel blocking and meta-blocking on the simulated MapReduce cluster.

Runs the MapReduce formulations of token blocking [5] and meta-blocking
[4] at increasing worker counts, verifying output equivalence with the
sequential implementations and reporting the simulated speedup, shuffle
volume and reduce-side skew — the trade-offs the companion papers measure
on a real Hadoop cluster.

Run:  python examples/mapreduce_scaling.py
"""

from repro import MapReduceEngine, SyntheticConfig, format_table, synthesize_pair
from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.mapreduce import parallel_metablocking, parallel_token_blocking
from repro.metablocking import BlockingGraph, make_pruner, make_scheme


def main() -> None:
    dataset = synthesize_pair(SyntheticConfig(entities=400, overlap=0.7, seed=13))
    kb1, kb2 = dataset.kb1, dataset.kb2
    print(f"Workload: {len(kb1)} + {len(kb2)} descriptions\n")

    # Sequential reference.
    sequential_blocks = TokenBlocking().build(kb1, kb2)
    processed = BlockFiltering().process(BlockPurging().process(sequential_blocks))
    sequential_edges = make_pruner("CNP").prune(
        BlockingGraph(processed, make_scheme("ARCS"))
    )

    rows = []
    base_cost = None
    for workers in (1, 2, 4, 8):
        engine = MapReduceEngine(workers=workers)
        blocks, blocking_metrics = parallel_token_blocking(engine, kb1, kb2)
        assert blocks.keys() == sequential_blocks.keys(), "parallel != sequential!"

        edges, meta_metrics = parallel_metablocking(
            engine,
            BlockFiltering().process(BlockPurging().process(blocks)),
            make_scheme("ARCS"),
            make_pruner("CNP"),
        )
        assert {e.pair for e in edges} == {e.pair for e in sequential_edges}

        cost = blocking_metrics.critical_path_cost + sum(
            m.critical_path_cost for m in meta_metrics
        )
        if base_cost is None:
            base_cost = cost
        rows.append(
            {
                "workers": str(workers),
                "critical path": str(cost),
                "speedup": f"{base_cost / cost:.2f}x",
                "shuffle records": str(
                    blocking_metrics.shuffle_records
                    + sum(m.shuffle_records for m in meta_metrics)
                ),
                "max reduce skew": f"{max(m.skew for m in meta_metrics):.2f}",
            }
        )

    print(format_table(rows, title="Simulated cluster scaling (blocking + meta-blocking)",
                       first_column="workers"))
    print("\nParallel output verified identical to the sequential pipeline "
          "at every worker count.")


if __name__ == "__main__":
    main()
