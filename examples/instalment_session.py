#!/usr/bin/env python3
"""Literal pay-as-you-go: resolving in budget instalments.

MinoanER's contract is that resolution quality grows with invested budget
and the consumer decides when to stop.  This script makes that concrete
with a :class:`repro.core.session.ProgressiveSession`: the center workload
is resolved in 100-comparison instalments, printing the quality reached
after each one, and stopping early once recall stops improving — the
decision loop a budget-conscious consumer would actually run.

Run:  python examples/instalment_session.py
"""

from repro import MinoanER, SyntheticConfig, format_table, synthesize_pair
from repro.core import ProgressiveSession
from repro.matching import SimilarityIndex, ThresholdMatcher


def main() -> None:
    dataset = synthesize_pair(SyntheticConfig(entities=300, overlap=0.7, seed=17))
    platform = MinoanER()
    _, processed = platform.block(dataset.kb1, dataset.kb2)
    edges = platform.meta_block(processed)
    index = SimilarityIndex([dataset.kb1, dataset.kb2])

    session = ProgressiveSession(
        matcher=ThresholdMatcher(index, threshold=0.35),
        edges=edges,
        collections=[dataset.kb1, dataset.kb2],
        gold=dataset.gold,
    )
    print(
        f"Frontier: {session.pending_comparisons} candidate comparisons "
        f"for {len(dataset.gold.matches)} gold matches\n"
    )

    rows = []
    instalment = 100
    paid = 0
    stall = 0
    while not session.finished and stall < 2:
        before = session.recall
        session.advance(instalment)
        paid += instalment
        rows.append(
            {
                "instalment": str(len(rows) + 1),
                "budget paid": str(paid),
                "executed": str(session.result.comparisons_executed),
                "matches": str(session.result.match_graph.match_count),
                "recall": f"{session.recall:.3f}",
            }
        )
        stall = stall + 1 if session.recall - before < 0.005 else 0

    print(format_table(rows, title="Instalment-by-instalment progress",
                       first_column="instalment"))
    if stall >= 2:
        print(
            f"\nStopped paying after {paid} comparisons: two instalments "
            f"in a row improved recall by < 0.5%."
        )
    print(
        f"Remaining frontier left unexecuted: {session.pending_comparisons} "
        f"comparisons — the budget they would cost was saved."
    )


if __name__ == "__main__":
    main()
